//! Statistical soundness of the whole pipeline, Monte-Carlo style — a
//! fast, seeded version of the `repro_guarantees` harness.

use easeml_ci::core::{EstimatorConfig, Mode};
use easeml_ci::sim::developer::{OverfitterDeveloper, RandomWalkDeveloper};
use easeml_ci::sim::montecarlo::{empirical_epsilon, violation_report, ProcessConfig};
use easeml_ci::{Adaptivity, CiScript};

fn config(
    condition: &str,
    mode: Mode,
    adaptivity: Adaptivity,
    delta: f64,
    steps: u32,
) -> ProcessConfig {
    ProcessConfig {
        script: CiScript::builder()
            .condition_str(condition)
            .unwrap()
            .reliability(1.0 - delta)
            .mode(mode)
            .adaptivity(adaptivity)
            .steps(steps)
            .build()
            .unwrap(),
        estimator: EstimatorConfig::default(),
        commits: steps,
        initial_accuracy: 0.75,
        num_classes: 4,
        churn: 0.5,
    }
}

/// fp-free guarantee vs an adversarial developer under full adaptivity:
/// the hardest case the δ/2^H budget is built for.
#[test]
fn fp_free_resists_the_overfitter() {
    let cfg = config(
        "n - o > 0.02 +/- 0.03",
        Mode::FpFree,
        Adaptivity::Full,
        0.1,
        5,
    );
    let report = violation_report(
        &cfg,
        |seed| Box::new(OverfitterDeveloper::new(0.75, 0.003, 0.05, seed)),
        60,
        7,
    )
    .unwrap();
    // δ = 0.1 plus binomial slack over 60 trials.
    assert!(
        report.false_positive_rate() <= 0.1 + 0.12,
        "fp rate = {}",
        report.false_positive_rate()
    );
    // The overfitter never truly improves by 2 points, so essentially
    // nothing should pass at all.
    assert!(
        report.mean_passes < 1.0,
        "mean passes = {}",
        report.mean_passes
    );
}

/// fn-free guarantee under a non-adaptive random walk.
#[test]
fn fn_free_rarely_rejects_truly_good_commits() {
    let cfg = config("n > 0.7 +/- 0.04", Mode::FnFree, Adaptivity::None, 0.1, 6);
    let report = violation_report(
        &cfg,
        |seed| Box::new(RandomWalkDeveloper::new(0.76, 0.015, 0.05, seed)),
        60,
        11,
    )
    .unwrap();
    assert!(
        report.false_negative_rate() <= 0.1 + 0.12,
        "fn rate = {}",
        report.false_negative_rate()
    );
}

/// The d-only condition consumes no labels across the whole process.
#[test]
fn difference_conditions_are_label_free() {
    let cfg = config("d < 0.2 +/- 0.05", Mode::FpFree, Adaptivity::None, 0.05, 4);
    let report = violation_report(
        &cfg,
        |seed| Box::new(RandomWalkDeveloper::new(0.75, 0.01, 0.05, seed)),
        10,
        13,
    )
    .unwrap();
    assert_eq!(report.mean_labels, 0.0);
}

/// Figure-4 methodology at test scale: the empirical quantile gap sits
/// below the analytic Hoeffding tolerance at multiple sizes.
#[test]
fn empirical_error_is_dominated() {
    for n in [300u64, 1_200] {
        let emp = empirical_epsilon(n, 0.9, 0.05, 300, 99);
        let analytic =
            easeml_ci::bounds::hoeffding_epsilon(1.0, n, 0.05, easeml_ci::Tail::TwoSided).unwrap();
        assert!(
            emp <= analytic,
            "n={n}: empirical {emp} > analytic {analytic}"
        );
    }
}

//! Cross-crate integration: script text → estimator → engine →
//! decisions, using the simulation substrate for ground truth.

use easeml_ci::core::EstimateProvenance;
use easeml_ci::sim::joint::{evolve_predictions, exact_pair, PairSpec};
use easeml_ci::sim::oracle::CountingOracle;
use easeml_ci::{
    Adaptivity, CiEngine, CiScript, Mode, ModelCommit, SampleSizeEstimator, Testset, Tribool,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SCRIPT: &str = "\
language: python
ml:
  - script     : ./test_model.py
  - condition  : n - o > 0.02 +/- 0.05
  - reliability: 0.99
  - mode       : fp-free
  - adaptivity : full
  - steps      : 6
";

#[test]
fn script_to_decisions() {
    let script = CiScript::parse(SCRIPT).unwrap();
    assert_eq!(script.adaptivity(), Adaptivity::Full);
    let estimator = SampleSizeEstimator::new();
    let estimate = estimator.estimate(&script).unwrap();
    // The improvement condition matches Pattern 2.
    assert!(matches!(
        estimate.provenance,
        EstimateProvenance::Optimized(_)
    ));

    let mut rng = StdRng::seed_from_u64(5);
    // Provision 30% headroom over the estimate: the Pattern-2 probe
    // sizes the labelled prefix from the *observed* difference, and
    // sampling noise can push it past the a-priori cap.
    let pool = (estimate.total_samples() as usize) * 13 / 10;
    let base = exact_pair(
        pool,
        &PairSpec {
            acc_old: 0.7,
            acc_new: 0.7,
            diff: 0.0,
            churn: 0.5,
            num_classes: 4,
        },
        &mut rng,
    )
    .unwrap();
    let oracle = CountingOracle::new(base.labels.clone());
    let mut engine = CiEngine::new(script, Testset::unlabeled(pool), base.old.clone())
        .unwrap()
        .with_oracle(Box::new(oracle));

    // Clear improvement (+9 points): must pass.
    let better =
        evolve_predictions(&base.labels, &base.old, 0.79, 0.095, 0.5, 4, &mut rng).unwrap();
    let receipt = engine
        .submit(&ModelCommit::new("good", better.clone()))
        .unwrap();
    assert_eq!(receipt.outcome, Tribool::True);
    assert_eq!(receipt.signal, Some(true));
    assert!(receipt.estimates.labels_requested > 0);

    // Clear regression (−9 points): must fail.
    let worse = evolve_predictions(&base.labels, &better, 0.70, 0.095, 0.5, 4, &mut rng).unwrap();
    let receipt = engine.submit(&ModelCommit::new("bad", worse)).unwrap();
    assert_eq!(receipt.outcome, Tribool::False);
    assert!(!receipt.passed);

    // The engine's baseline stayed on the passing commit.
    assert_eq!(engine.history().last_passed().unwrap().commit_id, "good");
    assert_eq!(engine.steps_used(), 2);
}

#[test]
fn estimator_facade_matches_direct_bounds() {
    // The full stack (script text → facade → bounds) agrees with calling
    // the bound directly.
    let script = CiScript::parse(
        "ml:\n  - condition  : n > 0.8 +/- 0.05\n  - reliability: 0.9999\n\
         \x20 - adaptivity : full\n  - steps      : 32\n",
    )
    .unwrap();
    let estimate = SampleSizeEstimator::new().estimate(&script).unwrap();
    let direct = easeml_ci::bounds::hoeffding_sample_size_from_ln_delta(
        1.0,
        0.05,
        Adaptivity::Full
            .ln_effective_delta(script.delta(), 32)
            .unwrap(),
        easeml_ci::Tail::OneSided,
    )
    .unwrap();
    assert_eq!(estimate.labeled_samples, direct);
}

#[test]
fn testset_era_rollover_end_to_end() {
    let script = CiScript::builder()
        .condition_str("n > 0.5 +/- 0.2")
        .unwrap()
        .reliability(0.95)
        .mode(Mode::FnFree)
        .adaptivity(Adaptivity::FirstChange)
        .steps(5)
        .build()
        .unwrap();
    let estimate = SampleSizeEstimator::new().estimate(&script).unwrap();
    let pool = estimate.total_samples() as usize;
    let labels = vec![1u32; pool];
    let mut engine = CiEngine::new(
        script,
        Testset::fully_labeled(labels.clone()),
        vec![0u32; pool],
    )
    .unwrap();
    // A passing commit retires the testset under firstChange.
    let receipt = engine
        .submit(&ModelCommit::new("winner", vec![1u32; pool]))
        .unwrap();
    assert!(receipt.passed);
    assert!(engine.is_retired());
    // Fresh testset: the developer got the old one back.
    let released = engine
        .install_testset(Testset::fully_labeled(labels), vec![1u32; pool])
        .unwrap();
    assert_eq!(released.len(), pool);
    assert_eq!(engine.era(), 1);
    assert!(engine
        .submit(&ModelCommit::new("next", vec![1u32; pool]))
        .is_ok());
}

#[test]
fn mailbox_collects_withheld_results() {
    use easeml_ci::core::{MailboxSink, NotificationSink};
    use std::cell::RefCell;
    use std::rc::Rc;
    let script = CiScript::builder()
        .condition_str("d < 0.3 +/- 0.1")
        .unwrap()
        .reliability(0.95)
        .adaptivity(Adaptivity::None)
        .notify("integration@example.com")
        .steps(3)
        .build()
        .unwrap();
    let pool = SampleSizeEstimator::new()
        .estimate(&script)
        .unwrap()
        .total_samples() as usize;
    let mailbox = Rc::new(RefCell::new(MailboxSink::new("integration@example.com")));
    struct Shared(Rc<RefCell<MailboxSink>>);
    impl NotificationSink for Shared {
        fn notify(&mut self, event: &easeml_ci::core::CiEvent) {
            self.0.borrow_mut().notify(event);
        }
    }
    let mut engine = CiEngine::new(script, Testset::unlabeled(pool), vec![0u32; pool])
        .unwrap()
        .with_sink(Box::new(Shared(Rc::clone(&mailbox))));
    let receipt = engine
        .submit(&ModelCommit::new("quiet", vec![0u32; pool]))
        .unwrap();
    assert_eq!(
        receipt.signal, None,
        "adaptivity none must withhold the signal"
    );
    let messages = mailbox.borrow().messages().to_vec();
    assert_eq!(messages.len(), 1);
    assert!(messages[0].contains("integration@example.com"));
    assert!(
        messages[0].contains("PASS"),
        "d = 0 certainly satisfies d < 0.3: {messages:?}"
    );
}

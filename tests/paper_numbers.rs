//! Every headline number the paper prints, verified through the public
//! facade — the compact machine-checkable version of EXPERIMENTS.md.

use easeml_ci::core::estimator::{
    hierarchical_plan, implicit_variance_plan, Pattern1Options, Pattern2Options,
};
use easeml_ci::{Adaptivity, CiScript, SampleSizeEstimator, Tail};

fn script(condition: &str, reliability: f64, adaptivity: Adaptivity, steps: u32) -> CiScript {
    CiScript::builder()
        .condition_str(condition)
        .unwrap()
        .reliability(reliability)
        .adaptivity(adaptivity)
        .steps(steps)
        .build()
        .unwrap()
}

/// Figure 2, all four corner cells of each block.
#[test]
fn figure2_corners() {
    let est = SampleSizeEstimator::new();
    let cases = [
        ("n > 0.9 +/- 0.1", 0.99, Adaptivity::None, 404),
        ("n > 0.9 +/- 0.01", 0.99, Adaptivity::None, 40_355),
        ("n > 0.9 +/- 0.1", 0.99999, Adaptivity::None, 749),
        ("n > 0.9 +/- 0.01", 0.99999, Adaptivity::Full, 168_469),
        ("n - o > 0.02 +/- 0.1", 0.99, Adaptivity::None, 1_753),
        ("n - o > 0.02 +/- 0.01", 0.99999, Adaptivity::Full, 687_736),
    ];
    for (condition, reliability, adaptivity, want) in cases {
        let s = script(condition, reliability, adaptivity, 32);
        let got = est.estimate_baseline(&s).unwrap().labeled_samples;
        assert_eq!(got, want, "{condition} at {reliability} {adaptivity:?}");
    }
}

/// §3.3's fully-adaptive worked example and its ε = 0.01 blow-up.
#[test]
fn section33_worked_example() {
    let est = SampleSizeEstimator::new();
    let loose = script("n > 0.8 +/- 0.05", 0.9999, Adaptivity::Full, 32);
    assert_eq!(est.estimate(&loose).unwrap().labeled_samples, 6_279);
    let tight = script("n > 0.8 +/- 0.01", 0.9999, Adaptivity::Full, 32);
    // Paper prose says 156,955; ceil rounding gives 156,956 (the paper's
    // own Figure 2 prints 156,956 for the same quantity).
    assert_eq!(
        est.estimate_baseline(&tight).unwrap().labeled_samples,
        156_956
    );
}

/// §4.1.1's 29K/67K and §4.1.2's 2,188 labels per commit.
#[test]
fn section41_numbers() {
    let p1 = Pattern1Options::default();
    let non_adaptive =
        hierarchical_plan(0.1, 0.01, 0.01, 0.0001, 32, Adaptivity::None, p1).unwrap();
    assert_eq!(non_adaptive.test.samples, 29_048);
    let fully = hierarchical_plan(0.1, 0.01, 0.01, 0.0001, 32, Adaptivity::Full, p1).unwrap();
    assert_eq!(fully.test.samples, 67_706);
    assert!((fully.active.labels_per_commit as i64 - 2_188).abs() <= 1);
}

/// Figure 5's 4,713 / 5,204 sample sizes and the 6,260 > 5,509 refusal.
#[test]
fn figure5_sample_sizes() {
    let known = Pattern2Options {
        known_variance_bound: Some(0.1),
        ..Default::default()
    };
    let q1 = implicit_variance_plan(0.02, 0.002, 7, Adaptivity::None, known).unwrap();
    assert_eq!(q1.test_upper_bound.samples, 4_713);
    let q3 = implicit_variance_plan(0.022, 0.002, 7, Adaptivity::Full, known).unwrap();
    assert_eq!(q3.test_upper_bound.samples, 5_204);
    let refused = implicit_variance_plan(0.02, 0.002, 7, Adaptivity::Full, known).unwrap();
    assert_eq!(refused.test_upper_bound.samples, 6_260);
    assert!(refused.test_upper_bound.samples > 5_509);
}

/// §5.2's Hoeffding baselines: 44,268 non-adaptive, ≈58K fully adaptive.
#[test]
fn section52_hoeffding_baselines() {
    let non_adaptive = easeml_ci::bounds::hoeffding_sample_size_from_ln_delta(
        2.0,
        0.02,
        Adaptivity::None.ln_effective_delta(0.001, 7).unwrap(),
        Tail::OneSided,
    )
    .unwrap();
    assert_eq!(non_adaptive, 44_269); // paper prints 44,268 via strict >
    let fully = easeml_ci::bounds::hoeffding_sample_size_from_ln_delta(
        2.0,
        0.02,
        Adaptivity::Full.ln_effective_delta(0.001, 7).unwrap(),
        Tail::OneSided,
    )
    .unwrap();
    assert!((58_000..59_000).contains(&fully), "got {fully}");
}

/// The intro's label-complexity narrative: 46K single / 63K non-adaptive
/// / 156K fully adaptive, and the two-orders-of-magnitude saving claim.
#[test]
fn introduction_numbers() {
    use easeml_ci::bounds::{hoeffding_sample_size, Tail};
    assert_eq!(
        hoeffding_sample_size(1.0, 0.01, 0.0001, Tail::OneSided).unwrap(),
        46_052
    );
    let est = SampleSizeEstimator::new();
    // F5-style compound condition: optimized labels per commit vs the
    // baseline testset — the "up to two orders of magnitude" claim
    // combines the ~9x Bennett saving with the ~10x active-labelling
    // amortisation.
    let s = script(
        "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
        0.9999,
        Adaptivity::None,
        32,
    );
    let optimized = est.estimate(&s).unwrap();
    let baseline = est.estimate_baseline(&s).unwrap();
    let plan = match optimized.provenance {
        easeml_ci::core::EstimateProvenance::Optimized(
            easeml_ci::core::estimator::OptimizedPlan::Hierarchical(p),
        ) => p,
        other => panic!("expected a hierarchical plan, got {other:?}"),
    };
    let amortized_saving = baseline.labeled_samples as f64 / plan.active.labels_per_commit as f64;
    assert!(
        amortized_saving > 100.0,
        "two-orders-of-magnitude claim: got {amortized_saving:.0}x"
    );
}

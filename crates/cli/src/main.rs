//! `easeml-ci` — command-line front end of the ease.ml/ci reproduction.
//!
//! ```text
//! easeml-ci validate <script.yml>            check a CI script
//! easeml-ci estimate <script.yml>            testset size + labelling effort
//! easeml-ci table                            print the Figure 2 sample-size table
//! easeml-ci simulate <script.yml> [options]  drive a simulated commit history
//! easeml-ci serve [options]                  run the persistent HTTP CI service
//! ```
//!
//! Every command accepts a global `--threads N` option sizing the
//! parallel execution layer (default: auto via `EASEML_THREADS` or the
//! hardware).

use easeml_bounds::{Adaptivity, Tail};
use easeml_ci_core::dsl::parse_clause;
use easeml_ci_core::estimator::{clause_sample_size, Allocation, LeafBound};
use easeml_ci_core::{
    effort, CiScript, CostModel, EstimateProvenance, Practicality, SampleSizeEstimator,
};
use easeml_sim::developer::RandomWalkDeveloper;
use easeml_sim::montecarlo::{run_process, ProcessConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match extract_threads(std::env::args().skip(1).collect()) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("validate") => cmd_validate(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("table") => cmd_table(),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help" | "--help" | "-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `easeml-ci help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Strip the global `--threads N` / `--threads=N` option from the argv
/// (shared grammar: [`easeml_par::extract_threads_flag`]) and size the
/// process-wide pool (`0` or absent means auto, i.e. `EASEML_THREADS`
/// or the hardware).
fn extract_threads(args: Vec<String>) -> Result<Vec<String>, String> {
    let (rest, requested) = easeml_par::extract_threads_flag(args)?;
    if let Some(requested) = requested {
        if requested > 0 {
            easeml_par::set_global_threads(requested);
        }
    }
    Ok(rest)
}

fn print_usage() {
    println!(
        "easeml-ci — continuous integration for ML models with (epsilon, delta) guarantees\n\
         \n\
         USAGE:\n\
         \x20 easeml-ci [--threads N] validate <script.yml>\n\
         \x20 easeml-ci [--threads N] estimate <script.yml>\n\
         \x20 easeml-ci [--threads N] table\n\
         \x20 easeml-ci [--threads N] simulate <script.yml> [--commits N] [--seed S] [--accuracy A]\n\
         \x20 easeml-ci [--threads N] serve [--addr HOST:PORT] [--data-dir DIR]\n\
         \x20                                [--event-threads N] [--idle-timeout-ms MS]\n\
         \x20                                [--request-timeout-ms MS] [--max-inflight N]\n\
         \x20                                [--degraded-after N] [--slow-request-ms MS]\n\
         \x20                                [--durability strict|group|relaxed]\n\
         \n\
         OPTIONS:\n\
         \x20 --threads N   worker threads for the parallel execution layer\n\
         \x20               (default: auto via EASEML_THREADS or the hardware)\n\
         \n\
         SERVE OPTIONS:\n\
         \x20 --addr HOST:PORT        bind address (default 127.0.0.1:8642; port 0 is ephemeral)\n\
         \x20 --data-dir DIR          durable state directory (default ./easeml-serve-data):\n\
         \x20                         project registry, per-project journals + snapshots,\n\
         \x20                         and the persisted bounds cache\n\
         \x20 --event-threads N       event loops multiplexing connections (default 1;\n\
         \x20                         one loop handles thousands of keep-alive clients)\n\
         \x20 --idle-timeout-ms MS    close a keep-alive connection after this long\n\
         \x20                         without a request (default 30000)\n\
         \x20 --request-timeout-ms MS budget for reading one request and for write\n\
         \x20                         progress on one response (default 2000)\n\
         \x20 --max-inflight N        pool-bound requests (registrations, persists)\n\
         \x20                         admitted concurrently before shedding with\n\
         \x20                         503 + Retry-After (default: 2x worker threads)\n\
         \x20 --degraded-after N      consecutive durable-write failures before the\n\
         \x20                         server degrades to read-only; 0 disables\n\
         \x20                         (default 3)\n\
         \x20 --slow-request-ms MS    slow-log a request (stderr line + GET /admin/trace\n\
         \x20                         ring entry) when its traced end-to-end time\n\
         \x20                         exceeds MS; 0 traces everything (default 250)\n\
         \x20 --durability MODE       when acknowledgements become durable (default group):\n\
         \x20                         strict  = fsync inside every mutating handler\n\
         \x20                         group   = one batched fsync per flusher round;\n\
         \x20                                   responses released when their round lands\n\
         \x20                         relaxed = acknowledge before the fsync (crash may\n\
         \x20                                   lose the tail of acked work)\n\
         \n\
         Stop the service gracefully with `POST /admin/shutdown` (flushes\n\
         snapshots + the bounds cache). A hard kill loses only cache\n\
         warmth: gate state is journaled before every response.\n\
         \n\
         The script is a .travis.yml-style file with an `ml:` section, e.g.\n\
         \n\
         \x20 ml:\n\
         \x20   - script     : ./test_model.py\n\
         \x20   - condition  : n - o > 0.02 +/- 0.01\n\
         \x20   - reliability: 0.9999\n\
         \x20   - mode       : fp-free\n\
         \x20   - adaptivity : full\n\
         \x20   - steps      : 32"
    );
}

fn load_script(args: &[String]) -> Result<CiScript, String> {
    let path = args.first().ok_or("expected a script path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    CiScript::parse(&text).map_err(|e| e.to_string())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let script = load_script(args)?;
    println!("script OK:\n{script}");
    Ok(())
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let script = load_script(args)?;
    let estimator = SampleSizeEstimator::new();
    let estimate = estimator.estimate(&script).map_err(|e| e.to_string())?;
    println!("condition   : {}", script.condition());
    println!(
        "reliability : {} (delta = {})",
        script.reliability(),
        script.delta()
    );
    println!(
        "adaptivity  : {} over {} steps",
        script.adaptivity(),
        script.steps()
    );
    match &estimate.provenance {
        EstimateProvenance::Baseline => println!("strategy    : baseline (Hoeffding)"),
        EstimateProvenance::Optimized(_) => println!("strategy    : optimized (section-4 pattern)"),
    }
    println!("labelled    : {}", estimate.labeled_samples);
    println!("unlabeled   : {}", estimate.unlabeled_samples);
    let report = effort(estimate.labeled_samples, &CostModel::paper_default());
    println!(
        "effort      : {:.1} person-days at 2 s/label -> {}",
        report.person_days, report.verdict
    );
    let baseline = estimator
        .estimate_baseline(&script)
        .map_err(|e| e.to_string())?;
    if baseline.labeled_samples > estimate.labeled_samples {
        println!(
            "saving      : {:.1}x fewer labels than the baseline ({})",
            baseline.labeled_samples as f64 / estimate.labeled_samples.max(1) as f64,
            baseline.labeled_samples
        );
    }
    Ok(())
}

fn cmd_table() -> Result<(), String> {
    println!("Figure 2: samples required (H = 32 steps, one-sided)\n");
    println!(
        "{:>9} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "1-delta", "eps", "F1/F4 none", "F1/F4 full", "F2/F3 none", "F2/F3 full"
    );
    for reliability in [0.99, 0.999, 0.9999, 0.99999] {
        let delta = ((1.0f64 - reliability) * 1e9).round() / 1e9;
        for eps in [0.1, 0.05, 0.025, 0.01] {
            let cell = |cond: &str, adaptivity: Adaptivity| -> Result<u64, String> {
                let clause = parse_clause(cond).map_err(|e| e.to_string())?;
                let ln_delta = adaptivity
                    .ln_effective_delta(delta, 32)
                    .map_err(|e| e.to_string())?;
                Ok(clause_sample_size(
                    &clause,
                    ln_delta,
                    Allocation::EqualSplit,
                    LeafBound::Hoeffding,
                    Tail::OneSided,
                )
                .map_err(|e| e.to_string())?
                .samples)
            };
            let f1 = format!("n > 0.9 +/- {eps}");
            let f2 = format!("n - o > 0.02 +/- {eps}");
            println!(
                "{:>9} {:>7} {:>12} {:>12} {:>12} {:>12}",
                reliability,
                eps,
                cell(&f1, Adaptivity::None)?,
                cell(&f1, Adaptivity::Full)?,
                cell(&f2, Adaptivity::None)?,
                cell(&f2, Adaptivity::Full)?,
            );
        }
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let script = load_script(args)?;
    let mut commits = script.steps();
    let mut seed = 42u64;
    let mut accuracy = 0.75f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--commits" => {
                commits = next_value(args, &mut i)?
                    .parse()
                    .map_err(|_| "bad --commits")?;
            }
            "--seed" => {
                seed = next_value(args, &mut i)?
                    .parse()
                    .map_err(|_| "bad --seed")?;
            }
            "--accuracy" => {
                accuracy = next_value(args, &mut i)?
                    .parse()
                    .map_err(|_| "bad --accuracy")?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    let config = ProcessConfig {
        script,
        estimator: easeml_ci_core::EstimatorConfig::default(),
        commits,
        initial_accuracy: accuracy,
        num_classes: 4,
        churn: 0.5,
    };
    let mut developer = RandomWalkDeveloper::new(accuracy, 0.015, 0.06, seed);
    let outcome = run_process(&config, &mut developer, seed).map_err(|e| e.to_string())?;
    println!("commits evaluated  : {}", outcome.commits);
    println!("passes             : {}", outcome.passes);
    println!("labels requested   : {}", outcome.labels_requested);
    println!("stopped early      : {}", outcome.stopped_early);
    println!(
        "ground-truth errors: {} false positives, {} false negatives",
        outcome.false_positives, outcome.false_negatives
    );
    println!(
        "practicality       : {}",
        Practicality::of(outcome.labels_requested)
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:8642".to_owned();
    let mut data_dir = "./easeml-serve-data".to_owned();
    let mut config = easeml_serve::ServeConfig::new("", "");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = next_value(args, &mut i)?.to_owned(),
            "--data-dir" => data_dir = next_value(args, &mut i)?.to_owned(),
            "--event-threads" => {
                config.event_threads =
                    parse_positive(next_value(args, &mut i)?, "--event-threads")?;
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms =
                    parse_positive(next_value(args, &mut i)?, "--idle-timeout-ms")? as u64;
            }
            "--request-timeout-ms" => {
                config.request_timeout_ms =
                    parse_positive(next_value(args, &mut i)?, "--request-timeout-ms")? as u64;
            }
            "--max-inflight" => {
                config.max_inflight = parse_positive(next_value(args, &mut i)?, "--max-inflight")?;
            }
            "--degraded-after" => {
                let value = next_value(args, &mut i)?;
                config.degraded_after = value
                    .parse::<u32>()
                    .map_err(|_| format!("--degraded-after expects a number, got `{value}`"))?;
            }
            "--slow-request-ms" => {
                let value = next_value(args, &mut i)?;
                config.slow_request_ms = value
                    .parse::<u64>()
                    .map_err(|_| format!("--slow-request-ms expects a number, got `{value}`"))?;
            }
            "--durability" => {
                let value = next_value(args, &mut i)?;
                config.durability = easeml_serve::Durability::parse(value).ok_or_else(|| {
                    format!("--durability expects strict|group|relaxed, got `{value}`")
                })?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    config.addr = addr;
    config.data_dir = data_dir.clone().into();
    let server = easeml_serve::Server::bind(&config).map_err(|e| e.to_string())?;
    // The bound address goes out first and flushed: with port 0 it is the
    // only way for a supervisor (or test harness) to learn the port.
    println!(
        "listening on {} (data dir: {data_dir})",
        server.local_addr()
    );
    use std::io::Write as _;
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.run().map_err(|e| e.to_string())
}

fn next_value<'a>(args: &'a [String], i: &mut usize) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing value for {}", args[*i - 1]))
}

fn parse_positive(value: &str, flag: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("{flag} expects a positive integer, got `{value}`")),
    }
}

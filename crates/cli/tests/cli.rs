//! Integration tests that drive the compiled `easeml-ci` binary.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_easeml-ci"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_script(name: &str, condition: &str, adaptivity: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("easeml-ci-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(
        &path,
        format!(
            "ml:\n\
             \x20 - condition  : {condition}\n\
             \x20 - reliability: 0.999\n\
             \x20 - mode       : fp-free\n\
             \x20 - adaptivity : {adaptivity}\n\
             \x20 - steps      : 8\n"
        ),
    )
    .unwrap();
    path
}

#[test]
fn help_prints_usage() {
    for args in [&["help"][..], &[][..]] {
        let out = run(args);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("USAGE"));
        assert!(text.contains("estimate"));
    }
}

#[test]
fn unknown_command_fails() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_documents_threads_flag() {
    let out = run(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--threads"));
    assert!(text.contains("EASEML_THREADS"));
}

#[test]
fn threads_flag_is_accepted_anywhere_and_validated() {
    let out = run(&["--threads", "2", "table"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = run(&["table", "--threads=1"]);
    assert!(out.status.success());
    // Malformed values fail loudly.
    let out = run(&["--threads", "lots", "table"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
    let out = run(&["table", "--threads"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
}

#[test]
fn validate_accepts_good_script() {
    let path = write_script("good.yml", "n > 0.8 +/- 0.05", "full");
    let out = run(&["validate", path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("script OK"));
}

#[test]
fn validate_rejects_bad_script() {
    let dir = std::env::temp_dir().join("easeml-ci-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.yml");
    std::fs::write(&path, "ml:\n  - condition : n / o > 1 +/- 0.1\n").unwrap();
    let out = run(&["validate", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn estimate_reports_sections_and_savings() {
    let path = write_script(
        "pattern1.yml",
        "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
        "none",
    );
    let out = run(&["estimate", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("labelled"));
    assert!(text.contains("optimized"));
    assert!(text.contains("saving"));
}

#[test]
fn table_matches_known_cell() {
    let out = run(&["table"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // The famous top-left and bottom-right cells of Figure 2.
    assert!(text.contains("404"));
    assert!(text.contains("687736"));
}

#[test]
fn simulate_runs_a_process() {
    let path = write_script("sim.yml", "n - o > 0.02 +/- 0.08", "full");
    let out = run(&[
        "simulate",
        path.to_str().unwrap(),
        "--commits",
        "3",
        "--seed",
        "5",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("commits evaluated"));
    assert!(text.contains("labels requested"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = run(&["estimate", "/nonexistent/definitely-missing.yml"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

//! Integration tests that drive the compiled `easeml-ci` binary.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_easeml-ci"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_script(name: &str, condition: &str, adaptivity: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("easeml-ci-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(
        &path,
        format!(
            "ml:\n\
             \x20 - condition  : {condition}\n\
             \x20 - reliability: 0.999\n\
             \x20 - mode       : fp-free\n\
             \x20 - adaptivity : {adaptivity}\n\
             \x20 - steps      : 8\n"
        ),
    )
    .unwrap();
    path
}

#[test]
fn help_prints_usage() {
    for args in [&["help"][..], &[][..]] {
        let out = run(args);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("USAGE"));
        assert!(text.contains("estimate"));
    }
}

#[test]
fn unknown_command_fails() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_documents_threads_flag() {
    let out = run(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--threads"));
    assert!(text.contains("EASEML_THREADS"));
}

#[test]
fn threads_flag_is_accepted_anywhere_and_validated() {
    let out = run(&["--threads", "2", "table"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = run(&["table", "--threads=1"]);
    assert!(out.status.success());
    // Malformed values fail loudly.
    let out = run(&["--threads", "lots", "table"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
    let out = run(&["table", "--threads"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
}

#[test]
fn validate_accepts_good_script() {
    let path = write_script("good.yml", "n > 0.8 +/- 0.05", "full");
    let out = run(&["validate", path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("script OK"));
}

#[test]
fn validate_rejects_bad_script() {
    let dir = std::env::temp_dir().join("easeml-ci-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.yml");
    std::fs::write(&path, "ml:\n  - condition : n / o > 1 +/- 0.1\n").unwrap();
    let out = run(&["validate", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn estimate_reports_sections_and_savings() {
    let path = write_script(
        "pattern1.yml",
        "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
        "none",
    );
    let out = run(&["estimate", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("labelled"));
    assert!(text.contains("optimized"));
    assert!(text.contains("saving"));
}

#[test]
fn table_matches_known_cell() {
    let out = run(&["table"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // The famous top-left and bottom-right cells of Figure 2.
    assert!(text.contains("404"));
    assert!(text.contains("687736"));
}

#[test]
fn simulate_runs_a_process() {
    let path = write_script("sim.yml", "n - o > 0.02 +/- 0.08", "full");
    let out = run(&[
        "simulate",
        path.to_str().unwrap(),
        "--commits",
        "3",
        "--seed",
        "5",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("commits evaluated"));
    assert!(text.contains("labels requested"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = run(&["estimate", "/nonexistent/definitely-missing.yml"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_documents_serve() {
    let out = run(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("serve"));
    assert!(text.contains("--addr"));
    assert!(text.contains("--data-dir"));
}

#[test]
fn serve_rejects_bad_arguments() {
    // Missing values and unknown flags fail before binding anything.
    let out = run(&["serve", "--addr"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--addr"));
    let out = run(&["serve", "--data-dir"]);
    assert!(!out.status.success());
    let out = run(&["serve", "--bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
    // An unbindable address is a clean error, not a panic.
    let out = run(&["serve", "--addr", "definitely-not-an-address"]);
    assert!(!out.status.success());
}

#[test]
fn serve_binds_ephemeral_port_and_answers_http() {
    use std::io::{BufRead, BufReader, Read, Write};

    let data_dir = std::env::temp_dir()
        .join("easeml-ci-cli-tests")
        .join(format!("serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_easeml-ci"))
        .args([
            "serve",
            "--threads",
            "2",
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // First stdout line announces the bound address.
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read banner");
    let addr = line
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_owned();

    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"status\":\"ok\""), "{response}");

    child.kill().expect("kill serve");
    let _ = child.wait();
    // The service created its durable layout before serving.
    assert!(data_dir.join("projects").is_dir());
}

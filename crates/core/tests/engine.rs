//! Behavioural tests for the CI engine: adaptivity state machines, the
//! new-testset alarm, testset eras, and label accounting.

use easeml_bounds::Adaptivity;
use easeml_ci_core::{
    AlarmReason, CiEngine, CiEvent, CiScript, CollectingSink, EngineError, Mode, ModelCommit,
    SampleSizeEstimator, Testset, Tribool, VecOracle,
};
use std::cell::RefCell;
use std::rc::Rc;

/// A script whose tolerance is loose enough that small synthetic
/// testsets satisfy the estimator.
fn loose_script(adaptivity: Adaptivity, steps: u32, mode: Mode) -> CiScript {
    CiScript::builder()
        .condition_str("n > 0.6 +/- 0.25")
        .unwrap()
        .reliability(0.9)
        .mode(mode)
        .adaptivity(adaptivity)
        .steps(steps)
        .build()
        .unwrap()
}

fn pool(script: &CiScript) -> usize {
    SampleSizeEstimator::new()
        .estimate(script)
        .unwrap()
        .total_samples() as usize
}

/// All-ones labels; a commit predicting 1 everywhere is perfect, a commit
/// predicting 0 everywhere is hopeless.
fn engine_with_pool(script: CiScript) -> (CiEngine, usize) {
    let n = pool(&script);
    let labels = vec![1u32; n];
    let old = vec![0u32; n];
    let engine = CiEngine::new(script, Testset::fully_labeled(labels), old).unwrap();
    (engine, n)
}

#[test]
fn full_adaptivity_releases_signal_and_updates_old_model() {
    let script = loose_script(Adaptivity::Full, 8, Mode::FpFree);
    let (mut engine, n) = engine_with_pool(script);
    // A perfect commit passes and becomes the accepted model.
    let good = ModelCommit::new("good", vec![1u32; n]);
    let receipt = engine.submit(&good).unwrap();
    assert_eq!(receipt.signal, Some(true));
    assert!(receipt.accepted);
    assert_eq!(receipt.outcome, Tribool::True);
    assert_eq!(engine.old_predictions(), vec![1u32; n]);
    // A hopeless commit fails and does not displace the accepted model.
    let bad = ModelCommit::new("bad", vec![0u32; n]);
    let receipt = engine.submit(&bad).unwrap();
    assert_eq!(receipt.signal, Some(false));
    assert!(!receipt.accepted);
    assert_eq!(engine.old_predictions(), vec![1u32; n]);
    assert_eq!(engine.history().passed_count(), 1);
}

#[test]
fn none_adaptivity_withholds_signal_but_notifies_sink() {
    let script = loose_script(Adaptivity::None, 8, Mode::FpFree);
    let n = pool(&script);
    let sink = Rc::new(RefCell::new(CollectingSink::new()));
    let engine =
        CiEngine::new(script, Testset::fully_labeled(vec![1u32; n]), vec![0u32; n]).unwrap();
    let mut engine = engine.with_sink(Box::new(Rc::clone(&sink)));

    let bad = ModelCommit::new("bad", vec![0u32; n]);
    let receipt = engine.submit(&bad).unwrap();
    // Developer sees nothing; the repository accepts the commit anyway.
    assert_eq!(receipt.signal, None);
    assert!(receipt.accepted);
    assert!(!receipt.passed);
    // The third-party channel received the true outcome.
    let events = sink.borrow().events().to_vec();
    assert!(matches!(
        events[0],
        CiEvent::CommitTested { passed: false, .. }
    ));
    // The *active* model only advances on a pass, so the failing commit
    // does not displace it even though the repository accepted it.
    assert_eq!(engine.old_predictions(), vec![0u32; n]);
    let good = ModelCommit::new("good", vec![1u32; n]);
    let receipt = engine.submit(&good).unwrap();
    assert!(receipt.passed && receipt.accepted && receipt.signal.is_none());
    assert_eq!(engine.old_predictions(), vec![1u32; n]);
}

#[test]
fn first_change_retires_testset_on_pass() {
    let script = loose_script(Adaptivity::FirstChange, 8, Mode::FpFree);
    let (mut engine, n) = engine_with_pool(script);
    // Failing commits keep the era alive.
    let bad = ModelCommit::new("bad", vec![0u32; n]);
    let receipt = engine.submit(&bad).unwrap();
    assert_eq!(receipt.alarm, None);
    assert!(!engine.is_retired());
    // The first pass retires the testset.
    let good = ModelCommit::new("good", vec![1u32; n]);
    let receipt = engine.submit(&good).unwrap();
    assert_eq!(receipt.alarm, Some(AlarmReason::PassedInHybrid));
    assert!(engine.is_retired());
    assert_eq!(engine.steps_remaining(), 0);
    // Further submissions are refused until a fresh testset arrives.
    let err = engine.submit(&good).unwrap_err();
    assert!(err.to_string().contains("retired"));
}

#[test]
fn budget_exhaustion_raises_alarm_and_blocks() {
    let script = loose_script(Adaptivity::Full, 2, Mode::FpFree);
    let (mut engine, n) = engine_with_pool(script);
    let bad = ModelCommit::new("bad", vec![0u32; n]);
    assert!(engine.submit(&bad).unwrap().alarm.is_none());
    let receipt = engine.submit(&bad).unwrap();
    assert_eq!(receipt.alarm, Some(AlarmReason::BudgetExhausted));
    assert!(engine.is_retired());
    assert!(engine.submit(&bad).is_err());
}

#[test]
fn install_testset_starts_new_era_and_releases_old() {
    let script = loose_script(Adaptivity::Full, 1, Mode::FpFree);
    let n = pool(&script);
    let sink = Rc::new(RefCell::new(CollectingSink::new()));
    let mut engine = CiEngine::new(script, Testset::fully_labeled(vec![1u32; n]), vec![0u32; n])
        .unwrap()
        .with_sink(Box::new(Rc::clone(&sink)));

    let bad = ModelCommit::new("bad", vec![0u32; n]);
    let receipt = engine.submit(&bad).unwrap();
    assert_eq!(receipt.alarm, Some(AlarmReason::BudgetExhausted));
    assert_eq!(engine.era(), 0);

    let released = engine
        .install_testset(Testset::fully_labeled(vec![1u32; n]), vec![0u32; n])
        .unwrap();
    assert_eq!(released.len(), n);
    assert_eq!(engine.era(), 1);
    assert_eq!(engine.steps_used(), 0);
    assert!(!engine.is_retired());
    // New era accepts commits again; history spans eras.
    engine
        .submit(&ModelCommit::new("retry", vec![1u32; n]))
        .unwrap();
    assert_eq!(engine.history().len(), 2);
    assert_eq!(engine.history().entries()[1].era, 1);
    let events = sink.borrow().events().to_vec();
    assert!(events
        .iter()
        .any(|e| matches!(e, CiEvent::TestsetReleased { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, CiEvent::TestsetInstalled { .. })));
}

#[test]
fn fn_free_mode_accepts_unknown() {
    // Pick estimates that straddle: accuracy 0.7 with threshold 0.6 and
    // tolerance 0.25 → interval [0.45, 0.95] straddles → Unknown.
    let fp = loose_script(Adaptivity::Full, 4, Mode::FpFree);
    let fnf = loose_script(Adaptivity::Full, 4, Mode::FnFree);
    for (script, expect_pass) in [(fp, false), (fnf, true)] {
        let n = pool(&script);
        let mut labels = vec![1u32; n];
        for l in labels.iter_mut().take(3 * n / 10) {
            *l = 0; // new model will be 70% right
        }
        let mut engine =
            CiEngine::new(script, Testset::fully_labeled(labels), vec![0u32; n]).unwrap();
        let commit = ModelCommit::new("borderline", vec![1u32; n]);
        let receipt = engine.submit(&commit).unwrap();
        assert_eq!(receipt.outcome, Tribool::Unknown);
        assert_eq!(receipt.passed, expect_pass);
    }
}

#[test]
fn active_labeling_requests_only_disagreements() {
    // Difference condition over an unlabeled pool with an oracle: labels
    // are only pulled where predictions differ.
    let script = CiScript::builder()
        .condition_str("n - o > 0.02 +/- 0.05")
        .unwrap()
        .reliability(0.9)
        .mode(Mode::FpFree)
        .adaptivity(Adaptivity::None)
        .steps(4)
        .build()
        .unwrap();
    let est = SampleSizeEstimator::new().estimate(&script).unwrap();
    let n = est.total_samples() as usize;
    let truth = vec![1u32; n];
    let old = vec![0u32; n];
    // New model fixes 5% of the pool — within the Pattern-2 drift cap.
    let mut new = vec![0u32; n];
    for (i, p) in new.iter_mut().enumerate() {
        if i % 20 == 0 {
            *p = 1;
        }
    }
    let mut engine = CiEngine::new(script, Testset::unlabeled(n), old)
        .unwrap()
        .with_oracle(Box::new(VecOracle::new(truth.clone())));
    let receipt = engine.submit(&ModelCommit::new("fix5", new)).unwrap();
    // Only the ~5% disagreement points needed labels, and only within
    // the range the layout actually evaluates.
    assert!(receipt.estimates.labels_requested > 0);
    assert!(
        receipt.estimates.labels_requested <= (n as u64) / 4,
        "requested {} of {n}",
        receipt.estimates.labels_requested
    );
    assert_eq!(
        engine.labeled_count() as u64,
        receipt.estimates.labels_requested
    );
    // diff ≈ 0.05 → interval [0, 0.1] straddles 0.02 → Unknown → fail.
    assert_eq!(receipt.outcome, Tribool::Unknown);

    // A commit that drifts far beyond the a-priori cap is refused with a
    // grow-the-pool error rather than an unsound verdict.
    let mut engine2 = CiEngine::new(
        CiScript::builder()
            .condition_str("n - o > 0.02 +/- 0.05")
            .unwrap()
            .reliability(0.9)
            .mode(Mode::FpFree)
            .adaptivity(Adaptivity::None)
            .steps(4)
            .build()
            .unwrap(),
        Testset::unlabeled(n),
        vec![0u32; n],
    )
    .unwrap()
    .with_oracle(Box::new(VecOracle::new(truth)));
    let err = engine2
        .submit(&ModelCommit::new("rewrite", vec![1u32; n]))
        .unwrap_err();
    assert!(matches!(
        err,
        easeml_ci_core::CiError::Engine(EngineError::TestsetTooSmall { .. })
    ));
}

#[test]
fn d_only_condition_needs_no_labels_at_all() {
    let script = CiScript::builder()
        .condition_str("d < 0.5 +/- 0.2")
        .unwrap()
        .reliability(0.9)
        .mode(Mode::FpFree)
        .adaptivity(Adaptivity::None)
        .steps(4)
        .build()
        .unwrap();
    let n = pool(&script);
    let old = vec![0u32; n];
    let new = vec![0u32; n]; // identical predictions: d = 0
    let mut engine = CiEngine::new(script, Testset::unlabeled(n), old).unwrap();
    let receipt = engine.submit(&ModelCommit::new("same", new)).unwrap();
    assert_eq!(receipt.estimates.labels_requested, 0);
    assert_eq!(receipt.outcome, Tribool::True);
    assert!(receipt.passed);
    assert_eq!(receipt.estimates.d, Some(0.0));
}

#[test]
fn rejects_undersized_testset_and_bad_predictions() {
    let script = loose_script(Adaptivity::Full, 4, Mode::FpFree);
    let n = pool(&script);
    // Too small a pool.
    let err = CiEngine::new(
        script.clone(),
        Testset::fully_labeled(vec![1; n - 1]),
        vec![0; n - 1],
    )
    .unwrap_err();
    assert!(err.to_string().contains("testset has"));
    // Old predictions of the wrong length.
    let err = CiEngine::new(
        script.clone(),
        Testset::fully_labeled(vec![1; n]),
        vec![0; n + 1],
    )
    .unwrap_err();
    assert!(err.to_string().contains("predictions"));
    // Commit predictions of the wrong length.
    let (mut engine, _) = engine_with_pool(script);
    let err = engine
        .submit(&ModelCommit::new("short", vec![1u32; 3]))
        .unwrap_err();
    assert!(matches!(
        err,
        easeml_ci_core::CiError::Engine(EngineError::PredictionLengthMismatch { .. })
    ));
}

#[test]
fn missing_labels_without_oracle_fail_cleanly() {
    let script = loose_script(Adaptivity::Full, 4, Mode::FpFree);
    let n = pool(&script);
    let mut engine = CiEngine::new(script, Testset::unlabeled(n), vec![0u32; n]).unwrap();
    let err = engine
        .submit(&ModelCommit::new("c", vec![1u32; n]))
        .unwrap_err();
    assert!(matches!(
        err,
        easeml_ci_core::CiError::Engine(EngineError::LabelUnavailable { .. })
    ));
}

/// Failure injection: a labelling team that walks away mid-evaluation.
/// The failed submission must not consume a step, and a refilled oracle
/// lets the same commit succeed afterwards.
#[test]
fn oracle_exhaustion_does_not_burn_budget() {
    struct FlakyOracle {
        truth: Vec<u32>,
        remaining: u64,
    }
    impl easeml_ci_core::LabelOracle for FlakyOracle {
        fn label(&mut self, index: usize) -> Option<u32> {
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            self.truth.get(index).copied()
        }
    }
    let script = loose_script(Adaptivity::Full, 4, Mode::FpFree);
    let n = pool(&script);
    // Only half the needed labels are available.
    let oracle = FlakyOracle {
        truth: vec![1u32; n],
        remaining: (n / 2) as u64,
    };
    let mut engine = CiEngine::new(script.clone(), Testset::unlabeled(n), vec![0u32; n])
        .unwrap()
        .with_oracle(Box::new(oracle));
    let commit = ModelCommit::new("starved", vec![1u32; n]);
    let err = engine.submit(&commit).unwrap_err();
    assert!(matches!(
        err,
        easeml_ci_core::CiError::Engine(EngineError::LabelUnavailable { .. })
    ));
    // The failed evaluation consumed no step and left no history entry.
    assert_eq!(engine.steps_used(), 0);
    assert!(engine.history().is_empty());
    // A generous oracle completes the same commit; the cached half of
    // the labels is reused (only ~n/2 fresh requests needed).
    let mut engine = {
        let labeled = engine.labeled_count();
        assert!(labeled > 0, "partial labels must persist");
        engine.with_oracle(Box::new(VecOracle::new(vec![1u32; n])))
    };
    let receipt = engine.submit(&commit).unwrap();
    assert!(receipt.passed);
    assert!(
        receipt.estimates.labels_requested <= (n as u64) / 2 + 1,
        "cached labels must be reused: {} of {n}",
        receipt.estimates.labels_requested
    );
    assert_eq!(engine.steps_used(), 1);
}

#[test]
fn history_records_every_submission() {
    let script = loose_script(Adaptivity::Full, 5, Mode::FpFree);
    let (mut engine, n) = engine_with_pool(script);
    for i in 0..3 {
        let preds = if i % 2 == 0 {
            vec![1u32; n]
        } else {
            vec![0u32; n]
        };
        engine
            .submit(&ModelCommit::new(format!("c{i}"), preds))
            .unwrap();
    }
    let history = engine.history();
    assert_eq!(history.len(), 3);
    assert_eq!(history.entries()[0].commit_id, "c0");
    assert_eq!(history.entries()[1].step, 2);
    assert_eq!(history.passed_count(), 2);
    assert_eq!(history.last_passed().unwrap().commit_id, "c2");
    let rendered = history.to_string();
    assert!(rendered.contains("c1"));
    assert!(rendered.contains("FAIL"));
}

/// Pattern-1 layout end to end: the filter phase short-circuits a commit
/// that changes too many predictions, without consuming any labels.
#[test]
fn pattern1_filter_short_circuits_without_labels() {
    let script = CiScript::builder()
        .condition_str("d < 0.1 +/- 0.05 /\\ n - o > 0.0 +/- 0.05")
        .unwrap()
        .reliability(0.99)
        .mode(Mode::FpFree)
        .adaptivity(Adaptivity::None)
        .steps(4)
        .build()
        .unwrap();
    let est = SampleSizeEstimator::new().estimate(&script).unwrap();
    assert!(matches!(
        est.provenance,
        easeml_ci_core::EstimateProvenance::Optimized(_)
    ));
    let n = est.total_samples() as usize;
    let old = vec![0u32; n];
    let new = vec![1u32; n]; // changes every prediction: d = 1
    let mut engine = CiEngine::new(script, Testset::unlabeled(n), old)
        .unwrap()
        .with_oracle(Box::new(VecOracle::new(vec![1u32; n])));
    let receipt = engine.submit(&ModelCommit::new("rewrite", new)).unwrap();
    assert_eq!(receipt.outcome, Tribool::False);
    assert_eq!(
        receipt.estimates.labels_requested, 0,
        "filter must not label"
    );
    assert!(!receipt.passed);
}

/// Pattern-3 (coarse-to-fine) layout end to end: a high quality floor is
/// evaluated through the two labelled phases.
#[test]
fn pattern3_coarse_fine_layout() {
    let script = CiScript::builder()
        .condition_str("n > 0.9 +/- 0.04")
        .unwrap()
        .reliability(0.95)
        .mode(Mode::FpFree)
        .adaptivity(Adaptivity::None)
        .steps(4)
        .build()
        .unwrap();
    let est = SampleSizeEstimator::new().estimate(&script).unwrap();
    assert!(matches!(
        est.provenance,
        easeml_ci_core::EstimateProvenance::Optimized(
            easeml_ci_core::estimator::OptimizedPlan::CoarseToFine(_)
        )
    ));
    let n = est.total_samples() as usize;
    // A model at 97%: certainly above the 0.94 pass bar.
    let mut preds = vec![1u32; n];
    for p in preds.iter_mut().take(3 * n / 100) {
        *p = 0;
    }
    let mut engine = CiEngine::new(script, Testset::unlabeled(n), vec![0u32; n])
        .unwrap()
        .with_oracle(Box::new(VecOracle::new(vec![1u32; n])));
    let receipt = engine
        .submit(&ModelCommit::new("high-floor", preds))
        .unwrap();
    assert_eq!(receipt.outcome, Tribool::True, "97% clears n > 0.9 ± 0.04");
    assert!(receipt.passed);
    // Both phases label fully: the whole pool ends up labelled.
    assert_eq!(receipt.estimates.labels_requested as usize, n);
    assert!(receipt.estimates.n.is_some());
}

/// Pattern-1 layout: a gentle improvement passes the filter and labels
/// only the disagreement points of the Bennett range.
#[test]
fn pattern1_test_phase_labels_only_disagreements() {
    let script = CiScript::builder()
        .condition_str("d < 0.2 +/- 0.05 /\\ n - o > 0.0 +/- 0.1")
        .unwrap()
        .reliability(0.99)
        .mode(Mode::FnFree)
        .adaptivity(Adaptivity::None)
        .steps(4)
        .build()
        .unwrap();
    let est = SampleSizeEstimator::new().estimate(&script).unwrap();
    let n = est.total_samples() as usize;
    let truth = vec![1u32; n];
    let old = vec![0u32; n];
    // New model fixes 10% of points everywhere.
    let new: Vec<u32> = (0..n).map(|i| u32::from(i % 10 == 0)).collect();
    let mut engine = CiEngine::new(script, Testset::unlabeled(n), old)
        .unwrap()
        .with_oracle(Box::new(VecOracle::new(truth)));
    let receipt = engine.submit(&ModelCommit::new("gentle", new)).unwrap();
    assert!(receipt.passed, "outcome: {:?}", receipt.outcome);
    // Labels only on ~10% of the Bennett test range.
    let labeled_fraction = receipt.estimates.labels_requested as f64 / n as f64;
    assert!(labeled_fraction < 0.15, "fraction = {labeled_fraction}");
    assert!(receipt.estimates.labels_requested > 0);
}

//! Property-based tests: parser round-trips, interval soundness,
//! estimator monotonicity, and evaluation consistency.

use easeml_bounds::{Adaptivity, Tail};
use easeml_ci_core::dsl::{parse_formula, Clause, CmpOp, Expr, Formula, LinearForm, Var};
use easeml_ci_core::estimator::{clause_sample_size, Allocation, LeafBound};
use easeml_ci_core::{
    evaluate_clause, evaluate_formula, CachePolicy, CiScript, EstimatorConfig, Interval, Mode,
    SampleSizeEstimator, Tribool, VariableEstimates,
};
use proptest::prelude::*;

/// Strategy: a random linear expression of bounded depth.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Var(Var::N)),
        Just(Expr::Var(Var::O)),
        Just(Expr::Var(Var::D)),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (0.1f64..5.0, inner.clone())
                .prop_map(|(c, e)| Expr::scale((c * 100.0).round() / 100.0, e)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::sub(a, b)),
        ]
    })
}

fn clause_strategy() -> impl Strategy<Value = Clause> {
    (
        expr_strategy(),
        prop_oneof![Just(CmpOp::Gt), Just(CmpOp::Lt)],
        -0.9f64..0.9,
        0.001f64..0.2,
    )
        .prop_map(|(expr, cmp, threshold, tolerance)| {
            let threshold = (threshold * 1000.0).round() / 1000.0;
            let tolerance = (tolerance * 1000.0).round() / 1000.0;
            Clause::new(expr, cmp, threshold, tolerance)
        })
}

fn estimates_strategy() -> impl Strategy<Value = VariableEstimates> {
    (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(n, o, d)| VariableEstimates::new(n, o, d))
}

proptest! {
    /// Display → parse is the identity on formulas.
    #[test]
    fn formula_display_round_trips(clauses in prop::collection::vec(clause_strategy(), 1..4)) {
        let formula = Formula::new(clauses);
        let printed = formula.to_string();
        let reparsed = parse_formula(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(&formula, &reparsed, "source: {}", printed);
    }

    /// The linear form is invariant under display round-trips.
    #[test]
    fn linear_form_stable_under_round_trip(expr in expr_strategy()) {
        let clause = Clause::new(expr, CmpOp::Gt, 0.0, 0.01);
        let printed = clause.to_string();
        let reparsed = easeml_ci_core::dsl::parse_clause(&printed).unwrap();
        let before = LinearForm::from_expr(&clause.expr);
        let after = LinearForm::from_expr(&reparsed.expr);
        for v in Var::ALL {
            prop_assert!(
                (before.coefficient(v) - after.coefficient(v)).abs() < 1e-9,
                "{printed}: {v} {} vs {}",
                before.coefficient(v),
                after.coefficient(v)
            );
        }
    }

    /// Interval arithmetic is outward-sound: x ∈ A, y ∈ B ⟹ x+y ∈ A+B etc.
    #[test]
    fn interval_arithmetic_sound(
        a_lo in -2.0f64..2.0, a_w in 0.0f64..1.0,
        b_lo in -2.0f64..2.0, b_w in 0.0f64..1.0,
        ta in 0.0f64..=1.0, tb in 0.0f64..=1.0, c in -3.0f64..3.0,
    ) {
        let a = Interval::new(a_lo, a_lo + a_w);
        let b = Interval::new(b_lo, b_lo + b_w);
        let x = a.lo() + ta * a.width();
        let y = b.lo() + tb * b.width();
        prop_assert!((a + b).contains(x + y));
        prop_assert!((a - b).contains(x - y));
        prop_assert!((a * c).contains(x * c));
        prop_assert!((-a).contains(-x));
        prop_assert!(a.hull(b).contains(x) && a.hull(b).contains(y));
    }

    /// Evaluation soundness: if the point estimate is ε-close to truth,
    /// a `True` clause verdict implies the clause really holds and a
    /// `False` verdict implies it really fails.
    #[test]
    fn clause_verdicts_are_sound(clause in clause_strategy(),
                                 truth in estimates_strategy(),
                                 jn in -1.0f64..1.0, jo in -1.0f64..1.0, jd in -1.0f64..1.0) {
        let form = LinearForm::from_expr(&clause.expr);
        // Build an estimate whose LHS error is within the tolerance:
        // jitter each variable by at most ε/range.
        let range = form.range();
        prop_assume!(range > 1e-9);
        let scale = clause.tolerance / range;
        let est = VariableEstimates::new(
            (truth.n + jn * scale).clamp(0.0, 1.0),
            (truth.o + jo * scale).clamp(0.0, 1.0),
            (truth.d + jd * scale).clamp(0.0, 1.0),
        );
        let true_lhs = form.evaluate(truth.n, truth.o, truth.d);
        match evaluate_clause(&clause, &est) {
            Tribool::True => match clause.cmp {
                CmpOp::Gt => prop_assert!(true_lhs > clause.threshold - 1e-9),
                CmpOp::Lt => prop_assert!(true_lhs < clause.threshold + 1e-9),
            },
            Tribool::False => match clause.cmp {
                CmpOp::Gt => prop_assert!(true_lhs < clause.threshold + 1e-9),
                CmpOp::Lt => prop_assert!(true_lhs > clause.threshold - 1e-9),
            },
            Tribool::Unknown => {}
        }
    }

    /// fp-free never passes a formula that fn-free fails: fn-free is
    /// always at least as permissive.
    #[test]
    fn fn_free_is_more_permissive(clauses in prop::collection::vec(clause_strategy(), 1..3),
                                  est in estimates_strategy()) {
        let formula = Formula::new(clauses);
        let outcome = evaluate_formula(&formula, &est);
        let fp = Mode::FpFree.decide(outcome);
        let fnf = Mode::FnFree.decide(outcome);
        prop_assert!(!fp || fnf);
    }

    /// Baseline clause estimates are monotone: more adaptivity, tighter
    /// tolerance, or more steps never decreases the requirement.
    #[test]
    fn clause_estimate_monotonicity(tol in 0.01f64..0.2, delta in 1e-5f64..0.1,
                                    steps in 1u32..64) {
        let mk = |t: f64| Clause::new(
            Expr::sub(Expr::var(Var::N), Expr::var(Var::O)),
            CmpOp::Gt,
            0.0,
            t,
        );
        let ln_none = Adaptivity::None.ln_effective_delta(delta, steps).unwrap();
        let ln_full = Adaptivity::Full.ln_effective_delta(delta, steps).unwrap();
        let n_none = clause_sample_size(&mk(tol), ln_none, Allocation::EqualSplit,
                                        LeafBound::Hoeffding, Tail::OneSided).unwrap().samples;
        let n_full = clause_sample_size(&mk(tol), ln_full, Allocation::EqualSplit,
                                        LeafBound::Hoeffding, Tail::OneSided).unwrap().samples;
        prop_assert!(n_full >= n_none);
        let n_tighter = clause_sample_size(&mk(tol / 2.0), ln_none, Allocation::EqualSplit,
                                           LeafBound::Hoeffding, Tail::OneSided).unwrap().samples;
        prop_assert!(n_tighter >= n_none);
    }

    /// The shared bounds cache is invisible to results: estimators with
    /// [`CachePolicy::Shared`] and [`CachePolicy::Bypass`] return
    /// identical `SampleSizeEstimate`s — including the per-clause
    /// breakdown — across randomized tolerances, budgets, steps, and
    /// leaf bounds. Run twice so the second pass replays warm entries.
    #[test]
    fn cached_and_uncached_estimates_identical(
        tol in 0.02f64..0.2,
        reliability in prop_oneof![Just(0.99f64), Just(0.999), Just(0.9999)],
        steps in 1u32..32,
        leaf in prop_oneof![Just(LeafBound::Hoeffding), Just(LeafBound::ExactBinomial)],
        compound in prop_oneof![Just(false), Just(true)],
    ) {
        let tol = (tol * 100.0).round() / 100.0;
        let condition = if compound {
            format!("n - o > 0.02 +/- {tol} /\\ d < 0.2 +/- {tol}")
        } else {
            format!("n > 0.7 +/- {tol}")
        };
        let script = CiScript::builder()
            .condition_str(&condition)
            .unwrap()
            .reliability(reliability)
            .steps(steps)
            .build()
            .unwrap();
        let cached = SampleSizeEstimator::with_config(EstimatorConfig {
            leaf_bound: leaf,
            cache: CachePolicy::Shared,
            ..EstimatorConfig::default()
        });
        let uncached = SampleSizeEstimator::with_config(EstimatorConfig {
            leaf_bound: leaf,
            cache: CachePolicy::Bypass,
            ..EstimatorConfig::default()
        });
        for round in 0..2 {
            let a = cached.estimate(&script).unwrap();
            let b = uncached.estimate(&script).unwrap();
            prop_assert_eq!(&a, &b, "round {}: {} (leaf {:?})", round, condition, leaf);
        }
    }

    /// Proportional allocation never does worse than the equal split for
    /// two-variable difference clauses.
    #[test]
    fn proportional_never_worse(c in 0.1f64..3.0, tol in 0.01f64..0.2, delta in 1e-5f64..0.1) {
        let c = (c * 100.0).round() / 100.0;
        let clause = Clause::new(
            Expr::sub(Expr::var(Var::N), Expr::scale(c, Expr::var(Var::O))),
            CmpOp::Gt,
            0.0,
            tol,
        );
        let ln_delta = delta.ln();
        let equal = clause_sample_size(&clause, ln_delta, Allocation::EqualSplit,
                                       LeafBound::Hoeffding, Tail::OneSided).unwrap().samples;
        let prop_alloc = clause_sample_size(&clause, ln_delta, Allocation::Proportional,
                                            LeafBound::Hoeffding, Tail::OneSided).unwrap().samples;
        prop_assert!(prop_alloc <= equal, "prop={prop_alloc} equal={equal} c={c}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The `BoundsCache` global entry budget holds across the 16 shards
    /// under arbitrary overflowing insertion streams — per-shard
    /// enforcement must never let the *total* exceed
    /// `BoundsCache::MAX_ENTRIES` — and a lookup of an evicted key falls
    /// back to recomputation (and re-stores the fresh value) instead of
    /// serving anything stale.
    #[test]
    fn bounds_cache_eviction_respects_global_cap(
        seed in 0u64..1_000_000,
        excess in 1usize..5_000,
    ) {
        use easeml_ci_core::{BoundKind, BoundsCache};
        let kind = BoundKind::ExactBinomialSampleSize;
        let cache = BoundsCache::new();
        let base = 0.05f64.to_bits();
        // Distinct quantized keys: bits differ above the bottom-8
        // quantization grain, spread by the random seed.
        let eps_at = |i: usize| f64::from_bits(base + (((i as u64) << 8) ^ (seed << 28)));
        let ln_delta = -5.0 - (seed % 7) as f64;
        let total = BoundsCache::MAX_ENTRIES + excess;
        for i in 0..total {
            cache.store(kind, Tail::TwoSided, eps_at(i), ln_delta, i as u64);
            if i % 4_096 == 0 {
                let entries = cache.stats().entries;
                prop_assert!(
                    entries <= BoundsCache::MAX_ENTRIES,
                    "cap exceeded mid-stream: {} entries after {} inserts", entries, i + 1
                );
            }
        }
        let entries = cache.stats().entries;
        prop_assert!(
            (1..=BoundsCache::MAX_ENTRIES).contains(&entries),
            "cap exceeded after overflow: {} entries", entries
        );
        // More keys were inserted than survive, so some key was evicted;
        // it must recompute (not resurrect) and be cached again after.
        let evicted = (0..total)
            .map(eps_at)
            .find(|&eps| cache.lookup(kind, Tail::TwoSided, eps, ln_delta).is_none());
        let Some(eps) = evicted else {
            return Err(TestCaseError::fail("overflowing stream left no evicted key"));
        };
        let n = cache
            .sample_size_with(kind, Tail::TwoSided, eps, ln_delta, || Ok(777_777))
            .unwrap();
        prop_assert_eq!(n, 777_777, "evicted key must recompute");
        prop_assert_eq!(
            cache.lookup(kind, Tail::TwoSided, eps, ln_delta),
            Some(777_777),
            "recomputed value must be re-stored"
        );
    }

    /// Grid inversions with the shared caches enabled are bit-identical
    /// to cache-bypassing sequential runs at threads ∈ {1, 2, 8}.
    #[test]
    fn shared_cache_grid_matches_bypass_at_any_width(
        epsilons in prop::collection::vec(0.05f64..0.3, 1..3),
        deltas in prop::collection::vec(1e-3f64..0.1, 1..3),
    ) {
        use easeml_par::Pool;
        let shared = SampleSizeEstimator::new();
        let bypass = SampleSizeEstimator::with_config(EstimatorConfig {
            cache: CachePolicy::Bypass,
            ..EstimatorConfig::default()
        });
        let reference = bypass
            .exact_sample_size_grid_with_pool(&epsilons, &deltas, Tail::TwoSided, &Pool::new(1))
            .unwrap();
        for threads in [1usize, 2, 8] {
            let got = shared
                .exact_sample_size_grid_with_pool(&epsilons, &deltas, Tail::TwoSided, &Pool::new(threads))
                .unwrap();
            prop_assert_eq!(&reference, &got, "threads={}", threads);
        }
    }
}

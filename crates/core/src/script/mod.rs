//! The CI script format: a `.travis.yml`-style file with an `ml:` section
//! (Figure 1).

mod config;
mod yaml;

pub use config::{CiScript, CiScriptBuilder};
pub use yaml::{YamlDoc, YamlEntry, YamlItem};

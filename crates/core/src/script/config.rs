//! The `ml:` section of a CI script: parsing, validation, and a builder.
//!
//! A [`CiScript`] captures everything the system needs to run a rigorous
//! integration test: the condition formula, the `(ε, δ)` reliability
//! requirement (ε lives inside each clause, δ = 1 − reliability), the
//! fp-free/fn-free mode, the adaptivity policy, and the step budget `H`.

use super::yaml::YamlDoc;
use crate::dsl::{parse_formula, validate_formula, Formula};
use crate::error::{CiError, Result, ScriptError};
use crate::logic::Mode;
use easeml_bounds::Adaptivity;
use std::fmt;

/// A fully validated ease.ml/ci configuration.
///
/// Construct one by parsing a script file ([`CiScript::parse`]) or through
/// the [`CiScriptBuilder`].
///
/// # Examples
///
/// ```
/// use easeml_ci_core::CiScript;
///
/// # fn main() -> Result<(), easeml_ci_core::CiError> {
/// let script = CiScript::parse(
///     "ml:\n\
///      \x20 - condition  : n - o > 0.02 +/- 0.01\n\
///      \x20 - reliability: 0.9999\n\
///      \x20 - mode       : fp-free\n\
///      \x20 - adaptivity : full\n\
///      \x20 - steps      : 32\n",
/// )?;
/// assert_eq!(script.steps(), 32);
/// assert!((script.delta() - 0.0001).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CiScript {
    condition: Formula,
    reliability: f64,
    mode: Mode,
    adaptivity: Adaptivity,
    steps: u32,
    script_path: Option<String>,
    notify: Option<String>,
}

impl CiScript {
    /// Start building a script configuration in code.
    #[must_use]
    pub fn builder() -> CiScriptBuilder {
        CiScriptBuilder::new()
    }

    /// Parse and validate the `ml:` section of a CI script file.
    ///
    /// Unknown Travis-style top-level keys are ignored; unknown keys
    /// *inside* the `ml:` section are errors (they are always typos).
    ///
    /// # Errors
    ///
    /// Returns a [`CiError`] when the document is malformed, the `ml:`
    /// section is missing, a required key is absent, or any value fails
    /// validation.
    pub fn parse(text: &str) -> Result<Self> {
        let doc = YamlDoc::parse(text)?;
        let Some(items) = doc.section("ml") else {
            return Err(ScriptError::new("script has no `ml:` section").into());
        };
        let mut builder = CiScriptBuilder::new();
        let mut saw_reliability = false;
        for item in items {
            match item.key.as_str() {
                "script" => {
                    builder = builder.script_path(item.value.clone());
                }
                "condition" => {
                    let formula = parse_formula(&item.value)?;
                    builder = builder.condition(formula);
                }
                "reliability" => {
                    let r: f64 = item.value.parse().map_err(|_| {
                        ScriptError::at_line(
                            item.line,
                            format!("reliability `{}` is not a number", item.value),
                        )
                    })?;
                    saw_reliability = true;
                    builder = builder.reliability(r);
                }
                "mode" => {
                    let mode: Mode =
                        item.value
                            .parse()
                            .map_err(|e: crate::logic::ParseModeError| {
                                ScriptError::at_line(item.line, e.to_string())
                            })?;
                    builder = builder.mode(mode);
                }
                "adaptivity" => {
                    // `none -> email@example.com` routes results to a
                    // third party the developer cannot read.
                    let (kind, notify) = match item.value.split_once("->") {
                        Some((k, addr)) => (k.trim(), Some(addr.trim().to_owned())),
                        None => (item.value.as_str(), None),
                    };
                    let adaptivity: Adaptivity =
                        kind.parse()
                            .map_err(|e: easeml_bounds::ParseAdaptivityError| {
                                ScriptError::at_line(item.line, e.to_string())
                            })?;
                    builder = builder.adaptivity(adaptivity);
                    if let Some(addr) = notify {
                        builder = builder.notify(addr);
                    }
                }
                "steps" => {
                    let steps: u32 = item.value.parse().map_err(|_| {
                        ScriptError::at_line(
                            item.line,
                            format!("steps `{}` is not a positive integer", item.value),
                        )
                    })?;
                    builder = builder.steps(steps);
                }
                other => {
                    return Err(ScriptError::at_line(
                        item.line,
                        format!("unknown `ml:` key `{other}`"),
                    )
                    .into())
                }
            }
        }
        if !saw_reliability {
            return Err(ScriptError::new("`ml:` section is missing `reliability`").into());
        }
        builder.build()
    }

    /// The condition formula.
    #[must_use]
    pub fn condition(&self) -> &Formula {
        &self.condition
    }

    /// The success probability `1 − δ`.
    #[must_use]
    pub fn reliability(&self) -> f64 {
        self.reliability
    }

    /// The failure budget `δ = 1 − reliability`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        1.0 - self.reliability
    }

    /// The fp-free / fn-free decision mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The adaptivity policy.
    #[must_use]
    pub fn adaptivity(&self) -> Adaptivity {
        self.adaptivity
    }

    /// The step budget `H`: how many commits one testset must support.
    #[must_use]
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Path of the user's test script, if declared (informational).
    #[must_use]
    pub fn script_path(&self) -> Option<&str> {
        self.script_path.as_deref()
    }

    /// Third-party notification address for `adaptivity: none`.
    #[must_use]
    pub fn notify(&self) -> Option<&str> {
        self.notify.as_deref()
    }

    /// Render the configuration back into `ml:` section text.
    #[must_use]
    pub fn to_script_text(&self) -> String {
        let mut out = String::from("ml:\n");
        if let Some(path) = &self.script_path {
            out.push_str(&format!("  - script     : {path}\n"));
        }
        out.push_str(&format!("  - condition  : {}\n", self.condition));
        out.push_str(&format!("  - reliability: {}\n", self.reliability));
        out.push_str(&format!("  - mode       : {}\n", self.mode));
        match &self.notify {
            Some(addr) => {
                out.push_str(&format!("  - adaptivity : {} -> {addr}\n", self.adaptivity))
            }
            None => out.push_str(&format!("  - adaptivity : {}\n", self.adaptivity)),
        }
        out.push_str(&format!("  - steps      : {}\n", self.steps));
        out
    }
}

impl fmt::Display for CiScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_script_text())
    }
}

/// Builder for [`CiScript`] (defaults: mode `fp-free`, adaptivity `none`,
/// steps 32, reliability 0.9999).
#[derive(Debug, Clone, Default)]
pub struct CiScriptBuilder {
    condition: Option<Formula>,
    reliability: f64,
    mode: Mode,
    adaptivity: Adaptivity,
    steps: u32,
    script_path: Option<String>,
    notify: Option<String>,
}

impl CiScriptBuilder {
    /// Create a builder with the documented defaults.
    #[must_use]
    pub fn new() -> Self {
        CiScriptBuilder {
            condition: None,
            reliability: 0.9999,
            mode: Mode::FpFree,
            adaptivity: Adaptivity::None,
            steps: 32,
            script_path: None,
            notify: None,
        }
    }

    /// Set the condition from an already-parsed formula.
    #[must_use]
    pub fn condition(mut self, formula: Formula) -> Self {
        self.condition = Some(formula);
        self
    }

    /// Set the condition by parsing source text.
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed condition text.
    pub fn condition_str(self, text: &str) -> Result<Self> {
        let formula = parse_formula(text)?;
        Ok(self.condition(formula))
    }

    /// Set the success probability `1 − δ`.
    #[must_use]
    pub fn reliability(mut self, reliability: f64) -> Self {
        self.reliability = reliability;
        self
    }

    /// Set the decision mode.
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the adaptivity policy.
    #[must_use]
    pub fn adaptivity(mut self, adaptivity: Adaptivity) -> Self {
        self.adaptivity = adaptivity;
        self
    }

    /// Set the step budget `H`.
    #[must_use]
    pub fn steps(mut self, steps: u32) -> Self {
        self.steps = steps;
        self
    }

    /// Record the user's test-script path (informational).
    #[must_use]
    pub fn script_path(mut self, path: impl Into<String>) -> Self {
        self.script_path = Some(path.into());
        self
    }

    /// Set the third-party notification address used with
    /// `adaptivity: none`.
    #[must_use]
    pub fn notify(mut self, address: impl Into<String>) -> Self {
        self.notify = Some(address.into());
        self
    }

    /// Validate and produce the final configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CiError`] if the condition is missing or semantically
    /// invalid, the reliability is not in `(0, 1)`, or `steps` is zero.
    pub fn build(self) -> Result<CiScript> {
        let Some(condition) = self.condition else {
            return Err(CiError::Semantic("a condition is required".into()));
        };
        validate_formula(&condition)?;
        if !(self.reliability > 0.0 && self.reliability < 1.0) {
            return Err(CiError::Semantic(format!(
                "reliability must be in (0, 1), got {}",
                self.reliability
            )));
        }
        if self.steps == 0 {
            return Err(CiError::Semantic("steps must be at least 1".into()));
        }
        if self.adaptivity == Adaptivity::None && self.notify.is_none() {
            // Permitted — results are simply recorded without an email
            // side channel — but full adaptivity must not carry one.
        }
        Ok(CiScript {
            condition,
            reliability: self.reliability,
            mode: self.mode,
            adaptivity: self.adaptivity,
            steps: self.steps,
            script_path: self.script_path,
            notify: self.notify,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL_SCRIPT: &str = "\
ml:
  - script     : ./test_model.py
  - condition  : n - o > 0.02 +/- 0.01
  - reliability: 0.9999
  - mode       : fp-free
  - adaptivity : full
  - steps      : 32
";

    const NONE_SCRIPT: &str = "\
ml:
  - script     : ./test_model.py
  - condition  : d < 0.1 +/- 0.01
  - reliability: 0.9999
  - mode       : fp-free
  - adaptivity : none -> xx@abc.com
  - steps      : 32
";

    #[test]
    fn parses_figure1_full_script() {
        let s = CiScript::parse(FULL_SCRIPT).unwrap();
        assert_eq!(s.condition().to_string(), "n - o > 0.02 +/- 0.01");
        assert_eq!(s.reliability(), 0.9999);
        assert!((s.delta() - 0.0001).abs() < 1e-12);
        assert_eq!(s.mode(), Mode::FpFree);
        assert_eq!(s.adaptivity(), Adaptivity::Full);
        assert_eq!(s.steps(), 32);
        assert_eq!(s.script_path(), Some("./test_model.py"));
        assert_eq!(s.notify(), None);
    }

    #[test]
    fn parses_non_adaptive_script_with_email() {
        let s = CiScript::parse(NONE_SCRIPT).unwrap();
        assert_eq!(s.adaptivity(), Adaptivity::None);
        assert_eq!(s.notify(), Some("xx@abc.com"));
    }

    #[test]
    fn script_round_trips_through_text() {
        for src in [FULL_SCRIPT, NONE_SCRIPT] {
            let s = CiScript::parse(src).unwrap();
            let reparsed = CiScript::parse(&s.to_script_text()).unwrap();
            assert_eq!(s, reparsed);
        }
    }

    #[test]
    fn travis_keys_pass_through() {
        let text = format!("language: python\nsudo: false\n{FULL_SCRIPT}");
        assert!(CiScript::parse(&text).is_ok());
    }

    #[test]
    fn missing_ml_section() {
        let err = CiScript::parse("language: python\n").unwrap_err();
        assert!(err.to_string().contains("ml"));
    }

    #[test]
    fn missing_reliability() {
        let err = CiScript::parse("ml:\n  - condition : n > 0.5 +/- 0.1\n").unwrap_err();
        assert!(err.to_string().contains("reliability"));
    }

    #[test]
    fn missing_condition() {
        let err = CiScript::parse("ml:\n  - reliability : 0.99\n").unwrap_err();
        assert!(err.to_string().contains("condition"));
    }

    #[test]
    fn unknown_ml_key_is_an_error() {
        let err = CiScript::parse(
            "ml:\n  - condition : n > 0.5 +/- 0.1\n  - reliability : 0.99\n  - stpes : 32\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("stpes"));
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let s = CiScript::builder()
            .condition_str("n > 0.8 +/- 0.05")
            .unwrap()
            .reliability(0.999)
            .mode(Mode::FnFree)
            .adaptivity(Adaptivity::FirstChange)
            .steps(16)
            .build()
            .unwrap();
        assert_eq!(s.mode(), Mode::FnFree);
        assert_eq!(s.adaptivity(), Adaptivity::FirstChange);
        assert_eq!(s.steps(), 16);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(CiScript::builder().build().is_err()); // no condition
        assert!(CiScript::builder()
            .condition_str("n > 0.8 +/- 0.05")
            .unwrap()
            .reliability(1.0)
            .build()
            .is_err());
        assert!(CiScript::builder()
            .condition_str("n > 0.8 +/- 0.05")
            .unwrap()
            .steps(0)
            .build()
            .is_err());
        // Semantically vacuous condition is caught at build time.
        assert!(CiScript::builder()
            .condition_str("n > 0.5 +/- 1.0")
            .unwrap()
            .build()
            .is_err());
    }

    #[test]
    fn reliability_must_be_numeric() {
        let err = CiScript::parse("ml:\n  - condition : n > 0.5 +/- 0.1\n  - reliability : very\n")
            .unwrap_err();
        assert!(err.to_string().contains("not a number"));
    }
}

//! A minimal YAML-subset reader for `.travis.yml`-style CI scripts.
//!
//! ease.ml/ci extends the Travis CI file format with an `ml:` section
//! whose entries are a dash-list of `key : value` pairs (see Figure 1).
//! This module parses exactly that subset — top-level scalar keys,
//! top-level sections containing dash-list entries, comments and blank
//! lines — with line-accurate error reporting. It is intentionally *not*
//! a general YAML parser; the CI script surface is small and a
//! hand-rolled reader keeps the crate dependency-free.

use crate::error::ScriptError;

/// A parsed top-level entry of the script document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YamlEntry {
    /// `key: value` at the top level.
    Scalar {
        /// The key, trimmed.
        key: String,
        /// The raw value, trimmed (may be empty).
        value: String,
        /// 1-based source line.
        line: usize,
    },
    /// `key:` followed by `- subkey : value` items.
    Section {
        /// The section key, trimmed (e.g. `ml`).
        key: String,
        /// The dash-list items, in order.
        items: Vec<YamlItem>,
        /// 1-based source line of the section header.
        line: usize,
    },
}

/// One `- key : value` item inside a section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YamlItem {
    /// The item key, trimmed.
    pub key: String,
    /// The item value, trimmed (may contain arbitrary punctuation,
    /// including `:` — only the *first* colon separates key from value).
    pub value: String,
    /// 1-based source line.
    pub line: usize,
}

/// A parsed document: an ordered list of top-level entries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct YamlDoc {
    entries: Vec<YamlEntry>,
}

impl YamlDoc {
    /// Parse a document from text.
    ///
    /// # Errors
    ///
    /// Returns a [`ScriptError`] with a line number for dash items outside
    /// any section, items without a `:` separator, or tab indentation.
    pub fn parse(text: &str) -> Result<Self, ScriptError> {
        let mut entries: Vec<YamlEntry> = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let without_comment = strip_comment(raw_line);
            let trimmed = without_comment.trim();
            if trimmed.is_empty() {
                continue;
            }
            if without_comment.contains('\t') {
                return Err(ScriptError::at_line(
                    line_no,
                    "tab characters are not allowed; indent with spaces",
                ));
            }
            if let Some(item_text) = trimmed.strip_prefix('-') {
                // Dash item: belongs to the most recent section.
                let item_text = item_text.trim();
                let Some((key, value)) = item_text.split_once(':') else {
                    return Err(ScriptError::at_line(
                        line_no,
                        format!("list item `{item_text}` is missing a `:` separator"),
                    ));
                };
                let item = YamlItem {
                    key: key.trim().to_owned(),
                    value: value.trim().to_owned(),
                    line: line_no,
                };
                match entries.last_mut() {
                    Some(YamlEntry::Section { items, .. }) => items.push(item),
                    _ => {
                        return Err(ScriptError::at_line(
                            line_no,
                            "list item appears outside of any section",
                        ))
                    }
                }
            } else {
                let Some((key, value)) = trimmed.split_once(':') else {
                    return Err(ScriptError::at_line(
                        line_no,
                        format!("line `{trimmed}` is missing a `:` separator"),
                    ));
                };
                let key = key.trim().to_owned();
                let value = value.trim().to_owned();
                if value.is_empty() {
                    entries.push(YamlEntry::Section {
                        key,
                        items: Vec::new(),
                        line: line_no,
                    });
                } else {
                    entries.push(YamlEntry::Scalar {
                        key,
                        value,
                        line: line_no,
                    });
                }
            }
        }
        Ok(YamlDoc { entries })
    }

    /// All top-level entries, in source order.
    #[must_use]
    pub fn entries(&self) -> &[YamlEntry] {
        &self.entries
    }

    /// Find the first section with the given key.
    #[must_use]
    pub fn section(&self, key: &str) -> Option<&[YamlItem]> {
        self.entries.iter().find_map(|e| match e {
            YamlEntry::Section { key: k, items, .. } if k == key => Some(items.as_slice()),
            _ => None,
        })
    }

    /// Find the first top-level scalar with the given key.
    #[must_use]
    pub fn scalar(&self, key: &str) -> Option<&str> {
        self.entries.iter().find_map(|e| match e {
            YamlEntry::Scalar { key: k, value, .. } if k == key => Some(value.as_str()),
            _ => None,
        })
    }
}

/// Strip a trailing `#` comment, respecting nothing fancier (the script
/// subset has no quoted strings containing `#`).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1_SCRIPT: &str = "\
language: python   # travis keys pass through untouched
ml:
  - script     : ./test_model.py
  - condition  : n - o > 0.02 +/- 0.01
  - reliability: 0.9999
  - mode       : fp-free
  - adaptivity : full
  - steps      : 32
";

    #[test]
    fn parses_figure1_script() {
        let doc = YamlDoc::parse(FIGURE1_SCRIPT).unwrap();
        assert_eq!(doc.scalar("language"), Some("python"));
        let ml = doc.section("ml").unwrap();
        assert_eq!(ml.len(), 6);
        assert_eq!(ml[0].key, "script");
        assert_eq!(ml[0].value, "./test_model.py");
        assert_eq!(ml[1].key, "condition");
        assert_eq!(ml[1].value, "n - o > 0.02 +/- 0.01");
        assert_eq!(ml[5].key, "steps");
        assert_eq!(ml[5].value, "32");
    }

    #[test]
    fn first_colon_splits_key_from_value() {
        let doc = YamlDoc::parse("ml:\n  - adaptivity : none -> xx@abc.com\n").unwrap();
        let ml = doc.section("ml").unwrap();
        assert_eq!(ml[0].key, "adaptivity");
        assert_eq!(ml[0].value, "none -> xx@abc.com");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let doc = YamlDoc::parse("# header\n\nml:\n  # inner comment\n  - steps : 5\n").unwrap();
        assert_eq!(doc.section("ml").unwrap().len(), 1);
    }

    #[test]
    fn line_numbers_are_recorded() {
        let doc = YamlDoc::parse("a: 1\nml:\n  - steps : 5\n").unwrap();
        match &doc.entries()[0] {
            YamlEntry::Scalar { line, .. } => assert_eq!(*line, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(doc.section("ml").unwrap()[0].line, 3);
    }

    #[test]
    fn rejects_orphan_list_items() {
        let err = YamlDoc::parse("- steps : 5\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn rejects_item_without_colon() {
        let err = YamlDoc::parse("ml:\n  - just some words\n").unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn rejects_tabs() {
        let err = YamlDoc::parse("ml:\n\t- steps : 5\n").unwrap_err();
        assert!(err.to_string().contains("tab"));
    }

    #[test]
    fn empty_document_is_ok() {
        let doc = YamlDoc::parse("").unwrap();
        assert!(doc.entries().is_empty());
        assert_eq!(doc.section("ml"), None);
        assert_eq!(doc.scalar("language"), None);
    }

    #[test]
    fn multiple_sections() {
        let doc = YamlDoc::parse("a:\n  - x : 1\nb:\n  - y : 2\n").unwrap();
        assert_eq!(doc.section("a").unwrap()[0].key, "x");
        assert_eq!(doc.section("b").unwrap()[0].key, "y");
    }
}

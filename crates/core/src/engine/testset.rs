//! Testset management: partially labelled example pools and the
//! labelling oracle abstraction.
//!
//! ease.ml/ci asks the user for a *pool of unlabeled data points* up
//! front and requests labels lazily (§4.1.2), so the testset tracks, per
//! item, whether its ground-truth label is known yet. Class labels are
//! `u32` indices; predictions are compared by equality only.

use crate::error::{EngineError, Result};

/// A pool of test examples with (possibly partial) ground-truth labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Testset {
    labels: Vec<Option<u32>>,
    known: usize,
}

impl Testset {
    /// A testset whose every item is already labelled.
    #[must_use]
    pub fn fully_labeled(labels: Vec<u32>) -> Self {
        let known = labels.len();
        Testset {
            labels: labels.into_iter().map(Some).collect(),
            known,
        }
    }

    /// A pool of `size` items with no labels yet (labels arrive through a
    /// [`LabelOracle`]).
    #[must_use]
    pub fn unlabeled(size: usize) -> Self {
        Testset {
            labels: vec![None; size],
            known: 0,
        }
    }

    /// A pool with the given partial labelling.
    #[must_use]
    pub fn with_partial_labels(labels: Vec<Option<u32>>) -> Self {
        let known = labels.iter().filter(|l| l.is_some()).count();
        Testset { labels, known }
    }

    /// Number of items in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of items whose label is known.
    #[must_use]
    pub fn labeled_count(&self) -> usize {
        self.known
    }

    /// The label of item `index`, if known.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn label(&self, index: usize) -> Option<u32> {
        self.labels[index]
    }

    /// Record a label for item `index`. Returns whether the label was new.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_label(&mut self, index: usize, label: u32) -> bool {
        let slot = &mut self.labels[index];
        let fresh = slot.is_none();
        if fresh {
            self.known += 1;
        }
        *slot = Some(label);
        fresh
    }

    /// Bit-packed known-label mask: bit `i` of word `i / 64` is set iff
    /// item `i`'s label is cached. Feeds the word-level measurement fast
    /// lane (see [`super::ClassBitmaps`]).
    #[must_use]
    pub fn known_words(&self) -> Vec<u64> {
        let mut words = vec![0u64; self.labels.len().div_ceil(64)];
        for (i, label) in self.labels.iter().enumerate() {
            if label.is_some() {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        words
    }

    /// Ensure item `index` is labelled, pulling from `oracle` when
    /// missing. Returns the label and whether a fresh oracle call was
    /// made.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::LabelUnavailable`] when the label is
    /// missing and no oracle (or an exhausted oracle) is available.
    pub fn require_label(
        &mut self,
        index: usize,
        oracle: Option<&mut (dyn LabelOracle + 'static)>,
    ) -> Result<(u32, bool)> {
        if let Some(label) = self.labels[index] {
            return Ok((label, false));
        }
        match oracle {
            Some(oracle) => match oracle.label(index) {
                Some(label) => {
                    self.set_label(index, label);
                    Ok((label, true))
                }
                None => Err(EngineError::LabelUnavailable { index }.into()),
            },
            None => Err(EngineError::LabelUnavailable { index }.into()),
        }
    }
}

/// A source of ground-truth labels, queried lazily by the engine.
///
/// Implementations typically wrap a human labelling team (in production)
/// or a held-out ground-truth vector with a cost ledger (in simulation —
/// see `easeml-sim`).
pub trait LabelOracle {
    /// Produce the label for testset item `index`, or `None` if the
    /// oracle cannot label it (treated as an engine error).
    fn label(&mut self, index: usize) -> Option<u32>;

    /// Total labels served so far (for cost accounting). Default: not
    /// tracked.
    fn labels_served(&self) -> u64 {
        0
    }
}

/// Trivial oracle backed by a complete ground-truth vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecOracle {
    truth: Vec<u32>,
    served: u64,
}

impl VecOracle {
    /// Create an oracle from the full ground truth.
    #[must_use]
    pub fn new(truth: Vec<u32>) -> Self {
        VecOracle { truth, served: 0 }
    }

    /// The full ground-truth vector backing this oracle (used by holders
    /// that must persist or re-verify the truth, e.g. the serving
    /// layer's durable testset blobs).
    #[must_use]
    pub fn truth(&self) -> &[u32] {
        &self.truth
    }
}

impl LabelOracle for VecOracle {
    fn label(&mut self, index: usize) -> Option<u32> {
        let label = self.truth.get(index).copied();
        if label.is_some() {
            self.served += 1;
        }
        label
    }

    fn labels_served(&self) -> u64 {
        self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_labeled_pool() {
        let t = Testset::fully_labeled(vec![0, 1, 2, 1]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.labeled_count(), 4);
        assert_eq!(t.label(2), Some(2));
        assert!(!t.is_empty());
    }

    #[test]
    fn unlabeled_pool_fills_lazily() {
        let mut t = Testset::unlabeled(3);
        assert_eq!(t.labeled_count(), 0);
        assert!(t.set_label(1, 7));
        assert!(!t.set_label(1, 7)); // relabel is not fresh
        assert_eq!(t.labeled_count(), 1);
        assert_eq!(t.label(1), Some(7));
        assert_eq!(t.label(0), None);
    }

    #[test]
    fn require_label_uses_oracle_once() {
        let mut t = Testset::unlabeled(3);
        let mut oracle = VecOracle::new(vec![5, 6, 7]);
        let (label, fresh) = t.require_label(2, Some(&mut oracle)).unwrap();
        assert_eq!((label, fresh), (7, true));
        assert_eq!(oracle.labels_served(), 1);
        // Second query hits the cache.
        let (label, fresh) = t.require_label(2, Some(&mut oracle)).unwrap();
        assert_eq!((label, fresh), (7, false));
        assert_eq!(oracle.labels_served(), 1);
    }

    #[test]
    fn require_label_without_oracle_fails() {
        let mut t = Testset::unlabeled(2);
        let err = t.require_label(0, None).unwrap_err();
        assert!(err.to_string().contains("no label available"));
    }

    #[test]
    fn oracle_out_of_range() {
        let mut t = Testset::unlabeled(5);
        let mut oracle = VecOracle::new(vec![1, 2]);
        assert!(t.require_label(4, Some(&mut oracle)).is_err());
    }

    #[test]
    fn partial_labels_counted() {
        let t = Testset::with_partial_labels(vec![Some(1), None, Some(0)]);
        assert_eq!(t.labeled_count(), 2);
    }
}

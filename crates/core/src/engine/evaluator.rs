//! Measurement layer of the engine: turns predictions + (lazily acquired)
//! labels into clause-level estimates.
//!
//! The key optimization (Technical Observation 2, §4) is that the
//! prediction difference `d` needs no labels at all, and a pure
//! difference `n − o` only needs labels where the two models *disagree*:
//! on agreeing points `nᵢ − oᵢ = 0` regardless of the label. The
//! evaluator exploits both, requesting labels from the oracle only when a
//! clause genuinely needs them and reporting how many fresh labels each
//! evaluation consumed.

use super::testset::{LabelOracle, Testset};
use crate::dsl::{Clause, LinearForm, Var};
use crate::error::{EngineError, Result};
use std::ops::Range;

/// Per-commit measurement summary, as recorded in receipts and history.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommitEstimates {
    /// Estimated fraction of changed predictions (`d̂`), when measured.
    pub d: Option<f64>,
    /// Estimated new-model accuracy (`n̂`), when individually measured.
    pub n: Option<f64>,
    /// Estimated old-model accuracy (`ô`), when individually measured.
    pub o: Option<f64>,
    /// Directly measured accuracy difference (`n̂ − ô` via the
    /// disagreement trick), when used.
    pub diff: Option<f64>,
    /// Fresh labels requested from the oracle during this evaluation.
    pub labels_requested: u64,
}

/// Evaluation context for one commit: the testset (mutable: labels fill
/// in lazily), an optional oracle, and the two prediction vectors.
pub struct Measurement<'a> {
    testset: &'a mut Testset,
    oracle: Option<&'a mut (dyn LabelOracle + 'static)>,
    old: &'a [u32],
    new: &'a [u32],
    labels_requested: u64,
}

impl std::fmt::Debug for Measurement<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Measurement")
            .field("testset_len", &self.testset.len())
            .field("has_oracle", &self.oracle.is_some())
            .field("labels_requested", &self.labels_requested)
            .finish_non_exhaustive()
    }
}

impl<'a> Measurement<'a> {
    /// Create a measurement context.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PredictionLengthMismatch`] if either
    /// prediction vector does not cover the testset.
    pub fn new(
        testset: &'a mut Testset,
        oracle: Option<&'a mut (dyn LabelOracle + 'static)>,
        old: &'a [u32],
        new: &'a [u32],
    ) -> Result<Self> {
        let want = testset.len();
        if old.len() != want {
            return Err(EngineError::PredictionLengthMismatch {
                got: old.len(),
                want,
            }
            .into());
        }
        if new.len() != want {
            return Err(EngineError::PredictionLengthMismatch {
                got: new.len(),
                want,
            }
            .into());
        }
        Ok(Measurement {
            testset,
            oracle,
            old,
            new,
            labels_requested: 0,
        })
    }

    /// Fresh labels pulled from the oracle so far.
    #[must_use]
    pub fn labels_requested(&self) -> u64 {
        self.labels_requested
    }

    /// Label-free estimate of `d` over an index range.
    #[must_use]
    pub fn difference(&self, range: Range<usize>) -> f64 {
        let len = range.len().max(1);
        let changed = range
            .clone()
            .filter(|&i| self.new[i] != self.old[i])
            .count();
        changed as f64 / len as f64
    }

    /// Accuracy of the *new* model over a range (labels every item).
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures.
    pub fn new_accuracy(&mut self, range: Range<usize>) -> Result<f64> {
        self.accuracy_of(range, /* new */ true)
    }

    /// Accuracy of the *old* model over a range (labels every item).
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures.
    pub fn old_accuracy(&mut self, range: Range<usize>) -> Result<f64> {
        self.accuracy_of(range, /* new */ false)
    }

    fn accuracy_of(&mut self, range: Range<usize>, new: bool) -> Result<f64> {
        let len = range.len().max(1);
        let mut correct = 0usize;
        for i in range {
            let (label, fresh) = self.testset.require_label(i, self.oracle.as_deref_mut())?;
            if fresh {
                self.labels_requested += 1;
            }
            let pred = if new { self.new[i] } else { self.old[i] };
            if pred == label {
                correct += 1;
            }
        }
        Ok(correct as f64 / len as f64)
    }

    /// Directly measure `n − o` over a range via the disagreement trick:
    /// only items where predictions differ are labelled (§4.1.2).
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures.
    pub fn accuracy_difference(&mut self, range: Range<usize>) -> Result<f64> {
        let len = range.len().max(1);
        let mut delta = 0i64;
        for i in range {
            if self.new[i] == self.old[i] {
                continue; // contributes 0 regardless of the label
            }
            let (label, fresh) = self.testset.require_label(i, self.oracle.as_deref_mut())?;
            if fresh {
                self.labels_requested += 1;
            }
            delta += i64::from(self.new[i] == label) - i64::from(self.old[i] == label);
        }
        Ok(delta as f64 / len as f64)
    }

    /// Measure the left-hand side of a clause over a range, choosing the
    /// cheapest sufficient strategy:
    ///
    /// * `d`-only expressions: label-free;
    /// * expressions where the `n` and `o` coefficients cancel
    ///   (`α_n = −α_o`): disagreement labelling only;
    /// * anything else: full labelling of the range.
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures.
    pub fn clause_lhs(&mut self, clause: &Clause, range: Range<usize>) -> Result<f64> {
        let form = LinearForm::from_expr(&clause.expr);
        let a_n = form.coefficient(Var::N);
        let a_o = form.coefficient(Var::O);
        let a_d = form.coefficient(Var::D);
        let d_part = if a_d != 0.0 {
            a_d * self.difference(range.clone())
        } else {
            0.0
        };
        if a_n == 0.0 && a_o == 0.0 {
            return Ok(d_part);
        }
        if a_n == -a_o {
            let diff = self.accuracy_difference(range)?;
            return Ok(a_n * diff + d_part);
        }
        let n_part = if a_n != 0.0 {
            a_n * self.new_accuracy(range.clone())?
        } else {
            0.0
        };
        let o_part = if a_o != 0.0 {
            a_o * self.old_accuracy(range)?
        } else {
            0.0
        };
        Ok(n_part + o_part + d_part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_clause;
    use crate::engine::testset::VecOracle;

    /// 10 items; labels all 0. Old model predicts 0 except items 8, 9
    /// (accuracy 0.8). New model predicts 0 except item 9 (accuracy 0.9).
    /// They disagree exactly on item 8 (d = 0.1).
    fn fixture() -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let labels = vec![0u32; 10];
        let mut old = vec![0u32; 10];
        old[8] = 1;
        old[9] = 1;
        let mut new = vec![0u32; 10];
        new[9] = 1;
        (labels, old, new)
    }

    #[test]
    fn difference_needs_no_labels() {
        let (_, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let m = Measurement::new(&mut testset, None, &old, &new).unwrap();
        assert!((m.difference(0..10) - 0.1).abs() < 1e-12);
        assert_eq!(m.labels_requested(), 0);
    }

    #[test]
    fn accuracy_labels_everything_in_range() {
        let (labels, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let mut oracle = VecOracle::new(labels);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        assert!((m.new_accuracy(0..10).unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(m.labels_requested(), 10);
        // Old accuracy reuses the cached labels.
        assert!((m.old_accuracy(0..10).unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(m.labels_requested(), 10);
    }

    #[test]
    fn difference_trick_labels_only_disagreements() {
        let (labels, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let mut oracle = VecOracle::new(labels);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        let diff = m.accuracy_difference(0..10).unwrap();
        assert!((diff - 0.1).abs() < 1e-12, "diff = {diff}");
        assert_eq!(m.labels_requested(), 1, "only item 8 disagrees");
    }

    #[test]
    fn clause_lhs_picks_cheapest_strategy() {
        let (labels, old, new) = fixture();
        // d-only: free.
        {
            let mut testset = Testset::unlabeled(10);
            let mut m = Measurement::new(&mut testset, None, &old, &new).unwrap();
            let clause = parse_clause("d < 0.2 +/- 0.05").unwrap();
            assert!((m.clause_lhs(&clause, 0..10).unwrap() - 0.1).abs() < 1e-12);
            assert_eq!(m.labels_requested(), 0);
        }
        // n - o: disagreement labels only.
        {
            let mut testset = Testset::unlabeled(10);
            let mut oracle = VecOracle::new(labels.clone());
            let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
            let clause = parse_clause("n - o > 0.0 +/- 0.05").unwrap();
            assert!((m.clause_lhs(&clause, 0..10).unwrap() - 0.1).abs() < 1e-12);
            assert_eq!(m.labels_requested(), 1);
        }
        // scaled difference 2*(n-o) still uses the trick.
        {
            let mut testset = Testset::unlabeled(10);
            let mut oracle = VecOracle::new(labels.clone());
            let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
            let clause = parse_clause("2 * (n - o) > 0.0 +/- 0.05").unwrap();
            assert!((m.clause_lhs(&clause, 0..10).unwrap() - 0.2).abs() < 1e-12);
            assert_eq!(m.labels_requested(), 1);
        }
        // bare n: full labelling.
        {
            let mut testset = Testset::unlabeled(10);
            let mut oracle = VecOracle::new(labels);
            let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
            let clause = parse_clause("n > 0.5 +/- 0.1").unwrap();
            assert!((m.clause_lhs(&clause, 0..10).unwrap() - 0.9).abs() < 1e-12);
            assert_eq!(m.labels_requested(), 10);
        }
    }

    #[test]
    fn mixed_expression_with_d() {
        let (labels, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let mut oracle = VecOracle::new(labels);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        let clause = parse_clause("n - o + d > 0.0 +/- 0.05").unwrap();
        // 0.1 + 0.1 = 0.2; still only one label (difference trick + free d).
        assert!((m.clause_lhs(&clause, 0..10).unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(m.labels_requested(), 1);
    }

    #[test]
    fn rejects_mismatched_predictions() {
        let (_, old, _) = fixture();
        let mut testset = Testset::unlabeled(10);
        let short = vec![0u32; 5];
        assert!(Measurement::new(&mut testset, None, &old, &short).is_err());
        let mut testset2 = Testset::unlabeled(10);
        assert!(Measurement::new(&mut testset2, None, &short, &old).is_err());
    }

    #[test]
    fn subrange_measurement() {
        let (labels, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let mut oracle = VecOracle::new(labels);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        // Range 0..8 excludes both wrong predictions: perfect agreement.
        assert_eq!(m.difference(0..8), 0.0);
        assert_eq!(m.accuracy_difference(0..8).unwrap(), 0.0);
        assert_eq!(m.labels_requested(), 0);
        // Range 8..10: old wrong on both, new wrong on one.
        assert!((m.new_accuracy(8..10).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(m.old_accuracy(8..10).unwrap(), 0.0);
    }
}

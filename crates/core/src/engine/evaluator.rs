//! Measurement layer of the engine: turns predictions + (lazily acquired)
//! labels into clause-level estimates.
//!
//! The key optimization (Technical Observation 2, §4) is that the
//! prediction difference `d` needs no labels at all, and a pure
//! difference `n − o` only needs labels where the two models *disagree*:
//! on agreeing points `nᵢ − oᵢ = 0` regardless of the label. The
//! evaluator exploits both, requesting labels from the oracle only when a
//! clause genuinely needs them and reporting how many fresh labels each
//! evaluation consumed.

use super::testset::{LabelOracle, Testset};
use crate::dsl::{Clause, Formula, LinearForm, Var};
use crate::error::{CiError, EngineError, Result};
use crate::eval::{VariableEstimates, MAX_TOPK_ESTIMATES};
use std::ops::Range;

/// A label (or prediction) vector bit-packed as per-class bitmaps: bit
/// `i % 64` of word `i / 64` in class `c`'s bitmap is set iff item `i`
/// carries class `c`. Equality tests between two vectors then become
/// word-level AND + popcount instead of per-item compares — the
/// measurement fast lane for `d`-only and disagreements-only conditions,
/// where no (or few) oracle calls interrupt the scan.
///
/// Capped at [`ClassBitmaps::MAX_CLASSES`] classes to bound the packed
/// size at 64 bits per item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassBitmaps {
    len: usize,
    words: usize,
    classes: u32,
    /// Class-major: class `c` occupies `bits[c*words .. (c+1)*words]`.
    bits: Vec<u64>,
}

impl ClassBitmaps {
    /// Maximum class count the packed representation accepts.
    pub const MAX_CLASSES: u32 = 64;

    /// Pack a vector of class labels. Returns `None` when the class
    /// count is 0, exceeds [`ClassBitmaps::MAX_CLASSES`], or any label
    /// falls outside `0..classes` (callers fall back to the per-item
    /// path).
    #[must_use]
    pub fn from_labels(labels: &[u32], classes: u32) -> Option<ClassBitmaps> {
        if classes == 0 || classes > Self::MAX_CLASSES {
            return None;
        }
        let len = labels.len();
        let words = len.div_ceil(64);
        let mut bits = vec![0u64; classes as usize * words];
        for (i, &label) in labels.iter().enumerate() {
            if label >= classes {
                return None;
            }
            bits[label as usize * words + i / 64] |= 1u64 << (i % 64);
        }
        Some(ClassBitmaps {
            len,
            words,
            classes,
            bits,
        })
    }

    /// Items packed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the packed vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Class count.
    #[must_use]
    pub fn classes(&self) -> u32 {
        self.classes
    }

    /// The bitmap of class `c`.
    fn class(&self, c: u32) -> &[u64] {
        let c = c as usize;
        &self.bits[c * self.words..(c + 1) * self.words]
    }
}

/// How much ground-truth labelling a condition demands per testset item
/// (§4.1.2). Ordered by cost: [`LabelDemand::Free`] <
/// [`LabelDemand::Disagreements`] < [`LabelDemand::Full`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LabelDemand {
    /// No labels needed: the condition only reads `d`.
    Free,
    /// Only items where the two models disagree need labels: every
    /// `n`/`o` occurrence cancels into a pure difference (`αₙ = −αₒ`).
    Disagreements,
    /// Every item in the measured range needs a label (a clause reads
    /// `n` or `o` individually).
    Full,
}

/// The labelling demand of a clause: the cheapest strategy sufficient to
/// measure its left-hand side exactly.
///
/// Metric variables (`f1(...)`, `topk(...)`) always demand
/// [`LabelDemand::Full`]: per-class confusion counts need the true class
/// of every item, and their coefficients are invisible to the `n`/`o`
/// cancellation analysis below — without this branch a pure-metric
/// clause would silently classify as [`LabelDemand::Free`].
#[must_use]
pub fn clause_label_demand(clause: &Clause) -> LabelDemand {
    let form = LinearForm::from_expr(&clause.expr);
    if form.has_metric() {
        return LabelDemand::Full;
    }
    let a_n = form.coefficient(Var::N);
    let a_o = form.coefficient(Var::O);
    if a_n == 0.0 && a_o == 0.0 {
        LabelDemand::Free
    } else if a_n == -a_o {
        LabelDemand::Disagreements
    } else {
        LabelDemand::Full
    }
}

/// The labelling demand of a whole formula: the maximum over its clauses.
#[must_use]
pub fn formula_label_demand(formula: &Formula) -> LabelDemand {
    formula
        .clauses()
        .iter()
        .map(clause_label_demand)
        .max()
        .unwrap_or(LabelDemand::Free)
}

/// Evaluation counts derived by measuring prediction vectors against a
/// (possibly partially labelled) testset — the wire currency of the
/// serving layer's counts gate, produced server-side by
/// [`Measurement::derive_counts`].
///
/// `new_correct` and `old_correct` credit *both* models on items whose
/// label stayed unknown, so the pair is exact exactly where the formula's
/// [`LabelDemand`] needs it: `changed` is always exact,
/// `new_correct − old_correct` is exact whenever every disagreement in
/// the range is labelled, and the individual counts are exact under
/// [`LabelDemand::Full`]. Feeding these counts to a gate that evaluates
/// the *same* formula therefore reproduces the fully-labelled decision
/// at a fraction of the labelling cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasuredCounts {
    /// Items measured.
    pub samples: u64,
    /// Items credited to the new model (see type docs for the
    /// unknown-label convention).
    pub new_correct: u64,
    /// Items credited to the old model.
    pub old_correct: u64,
    /// Items where the two models' predictions differ (always exact,
    /// label-free).
    pub changed: u64,
    /// Fresh labels pulled from the oracle by this derivation.
    pub labels_spent: u64,
}

/// Per-class confusion counts over the *labelled* portion of a measured
/// range — the extra statistics non-binomial metrics (`f1(...)`,
/// `topk(...)`) need beyond [`MeasuredCounts`]. Metric formulas demand
/// [`LabelDemand::Full`], so when these counts back a metric gate every
/// item in the range is labelled and `support` sums to `samples`.
///
/// All vectors are indexed by class id and have length `classes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerClassCounts {
    /// Declared class count (vector length).
    pub classes: u32,
    /// Labelled items whose true class is `c`.
    pub support: Vec<u64>,
    /// Labelled items where the new model predicts `c` correctly.
    pub new_tp: Vec<u64>,
    /// Labelled items where the old model predicts `c` correctly.
    pub old_tp: Vec<u64>,
    /// Labelled items where the new model predicts `c` (right or wrong).
    pub new_pred: Vec<u64>,
    /// Labelled items where the old model predicts `c`.
    pub old_pred: Vec<u64>,
}

impl PerClassCounts {
    /// All-zero counts for `classes` classes.
    #[must_use]
    pub fn zeroed(classes: u32) -> PerClassCounts {
        let n = classes as usize;
        PerClassCounts {
            classes,
            support: vec![0; n],
            new_tp: vec![0; n],
            old_tp: vec![0; n],
            new_pred: vec![0; n],
            old_pred: vec![0; n],
        }
    }

    /// Total labelled items the counts cover.
    #[must_use]
    pub fn labeled(&self) -> u64 {
        self.support.iter().sum()
    }

    /// Binary F1 with class 1 as positive — the statistic `f1(n)` /
    /// `f1(o)` measures. Follows the convention of
    /// [`crate::extensions::f1_score`]: zero true positives give 0.0.
    #[must_use]
    pub fn f1(&self, new_model: bool) -> f64 {
        let positive = 1usize;
        let (tp, pred) = if new_model {
            (self.new_tp[positive], self.new_pred[positive])
        } else {
            (self.old_tp[positive], self.old_pred[positive])
        };
        if tp == 0 {
            return 0.0;
        }
        let fp = pred - tp;
        let fn_ = self.support[positive] - tp;
        2.0 * tp as f64 / (2 * tp + fp + fn_) as f64
    }

    /// The `k` most frequent classes by support, ties broken towards the
    /// lower class id — the class set `topk(m, k)` restricts to.
    #[must_use]
    pub fn top_classes(&self, k: u32) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.classes).collect();
        ids.sort_by(|&a, &b| {
            self.support[b as usize]
                .cmp(&self.support[a as usize])
                .then(a.cmp(&b))
        });
        ids.truncate(k as usize);
        ids
    }

    /// Accuracy restricted to items whose true class is among the `k`
    /// most frequent classes ([`PerClassCounts::top_classes`]) — the
    /// statistic `topk(n, k)` / `topk(o, k)` measures. An empty
    /// restriction (no support in the top classes) gives 0.0.
    #[must_use]
    pub fn topk(&self, new_model: bool, k: u32) -> f64 {
        let tp = if new_model {
            &self.new_tp
        } else {
            &self.old_tp
        };
        let mut num = 0u64;
        let mut den = 0u64;
        for c in self.top_classes(k) {
            num += tp[c as usize];
            den += self.support[c as usize];
        }
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    }

    /// Fill in the metric estimates a formula reads
    /// ([`VariableEstimates::f1_n`] and friends) from these counts.
    ///
    /// # Errors
    ///
    /// Rejects formulas these counts cannot back
    /// (see [`validate_metric_formula`]).
    pub fn populate_estimates(
        &self,
        formula: &Formula,
        estimates: &mut VariableEstimates,
    ) -> Result<()> {
        validate_metric_formula(formula, self.classes)?;
        for var in formula.variables() {
            match var {
                Var::F1N => estimates.f1_n = Some(self.f1(true)),
                Var::F1O => estimates.f1_o = Some(self.f1(false)),
                Var::TopKN(k) => estimates.set_topk(true, k, self.topk(true, k)),
                Var::TopKO(k) => estimates.set_topk(false, k, self.topk(false, k)),
                Var::N | Var::O | Var::D => {}
            }
        }
        Ok(())
    }
}

/// Check that a testset with `classes` classes can measure every metric
/// variable a formula reads. Plain (`n`/`o`/`d`) formulas always pass.
///
/// # Errors
///
/// * `f1(...)` over fewer than 2 classes (F1 is binary, positive = 1);
/// * `topk(m, k)` with `k` exceeding the class count;
/// * more than [`MAX_TOPK_ESTIMATES`] distinct `k`s in one formula.
pub fn validate_metric_formula(formula: &Formula, classes: u32) -> Result<()> {
    let vars = formula.variables();
    if vars.iter().any(|v| matches!(v, Var::F1N | Var::F1O)) && classes < 2 {
        return Err(CiError::Semantic(format!(
            "f1(...) needs at least 2 classes (positive class is 1), testset declares {classes}"
        )));
    }
    let ks = formula.topk_ks();
    if ks.len() > MAX_TOPK_ESTIMATES {
        return Err(CiError::Semantic(format!(
            "formula uses {} distinct topk class counts, at most {MAX_TOPK_ESTIMATES} supported",
            ks.len()
        )));
    }
    if let Some(&k) = ks.iter().find(|&&k| k > classes) {
        return Err(CiError::Semantic(format!(
            "topk({k}) exceeds the testset's {classes} class(es)"
        )));
    }
    Ok(())
}

/// Per-commit measurement summary, as recorded in receipts and history.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommitEstimates {
    /// Estimated fraction of changed predictions (`d̂`), when measured.
    pub d: Option<f64>,
    /// Estimated new-model accuracy (`n̂`), when individually measured.
    pub n: Option<f64>,
    /// Estimated old-model accuracy (`ô`), when individually measured.
    pub o: Option<f64>,
    /// Directly measured accuracy difference (`n̂ − ô` via the
    /// disagreement trick), when used.
    pub diff: Option<f64>,
    /// Fresh labels requested from the oracle during this evaluation.
    pub labels_requested: u64,
}

/// Evaluation context for one commit: the testset (mutable: labels fill
/// in lazily), an optional oracle, and the two prediction vectors.
pub struct Measurement<'a> {
    testset: &'a mut Testset,
    oracle: Option<&'a mut (dyn LabelOracle + 'static)>,
    old: &'a [u32],
    new: &'a [u32],
    labels_requested: u64,
}

impl std::fmt::Debug for Measurement<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Measurement")
            .field("testset_len", &self.testset.len())
            .field("has_oracle", &self.oracle.is_some())
            .field("labels_requested", &self.labels_requested)
            .finish_non_exhaustive()
    }
}

impl<'a> Measurement<'a> {
    /// Create a measurement context.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PredictionLengthMismatch`] if either
    /// prediction vector does not cover the testset.
    pub fn new(
        testset: &'a mut Testset,
        oracle: Option<&'a mut (dyn LabelOracle + 'static)>,
        old: &'a [u32],
        new: &'a [u32],
    ) -> Result<Self> {
        let want = testset.len();
        if old.len() != want {
            return Err(EngineError::PredictionLengthMismatch {
                got: old.len(),
                want,
            }
            .into());
        }
        if new.len() != want {
            return Err(EngineError::PredictionLengthMismatch {
                got: new.len(),
                want,
            }
            .into());
        }
        Ok(Measurement {
            testset,
            oracle,
            old,
            new,
            labels_requested: 0,
        })
    }

    /// Fresh labels pulled from the oracle so far.
    #[must_use]
    pub fn labels_requested(&self) -> u64 {
        self.labels_requested
    }

    /// Label-free estimate of `d` over an index range.
    #[must_use]
    pub fn difference(&self, range: Range<usize>) -> f64 {
        let len = range.len().max(1);
        let changed = range
            .clone()
            .filter(|&i| self.new[i] != self.old[i])
            .count();
        changed as f64 / len as f64
    }

    /// Accuracy of the *new* model over a range (labels every item).
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures.
    pub fn new_accuracy(&mut self, range: Range<usize>) -> Result<f64> {
        self.accuracy_of(range, /* new */ true)
    }

    /// Accuracy of the *old* model over a range (labels every item).
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures.
    pub fn old_accuracy(&mut self, range: Range<usize>) -> Result<f64> {
        self.accuracy_of(range, /* new */ false)
    }

    fn accuracy_of(&mut self, range: Range<usize>, new: bool) -> Result<f64> {
        let len = range.len().max(1);
        let mut correct = 0usize;
        for i in range {
            let (label, fresh) = self.testset.require_label(i, self.oracle.as_deref_mut())?;
            if fresh {
                self.labels_requested += 1;
            }
            let pred = if new { self.new[i] } else { self.old[i] };
            if pred == label {
                correct += 1;
            }
        }
        Ok(correct as f64 / len as f64)
    }

    /// Directly measure `n − o` over a range via the disagreement trick:
    /// only items where predictions differ are labelled (§4.1.2).
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures.
    pub fn accuracy_difference(&mut self, range: Range<usize>) -> Result<f64> {
        let len = range.len().max(1);
        let mut delta = 0i64;
        for i in range {
            if self.new[i] == self.old[i] {
                continue; // contributes 0 regardless of the label
            }
            let (label, fresh) = self.testset.require_label(i, self.oracle.as_deref_mut())?;
            if fresh {
                self.labels_requested += 1;
            }
            delta += i64::from(self.new[i] == label) - i64::from(self.old[i] == label);
        }
        Ok(delta as f64 / len as f64)
    }

    /// Derive [`MeasuredCounts`] for a formula over a range, spending
    /// only the labels the formula's [`LabelDemand`] requires:
    ///
    /// * [`LabelDemand::Free`]: no oracle calls;
    /// * [`LabelDemand::Disagreements`]: labels only where the two
    ///   models disagree (§4.1.2 difference trick);
    /// * [`LabelDemand::Full`]: labels every item in the range.
    ///
    /// Items whose label is already cached in the testset are scored
    /// exactly regardless of demand; items that stay unlabelled credit
    /// both models (see [`MeasuredCounts`] for why this convention keeps
    /// every decision-relevant statistic exact).
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures. Rejects metric formulas
    /// loudly: scalar counts cannot carry `f1(...)`/`topk(...)`
    /// statistics, and measuring them here would silently produce counts
    /// the gate cannot evaluate — use
    /// [`Measurement::derive_counts_with_classes`].
    pub fn derive_counts(
        &mut self,
        formula: &Formula,
        range: Range<usize>,
    ) -> Result<MeasuredCounts> {
        if formula.has_metric() {
            return Err(CiError::Semantic(
                "formula reads metric variables (f1/topk) that scalar counts cannot carry; \
                 derive per-class confusion counts with derive_counts_with_classes"
                    .into(),
            ));
        }
        let demand = formula_label_demand(formula);
        let spent_before = self.labels_requested;
        let mut changed = 0u64;
        let mut new_correct = 0u64;
        let mut old_correct = 0u64;
        for i in range.clone() {
            let disagree = self.new[i] != self.old[i];
            changed += u64::from(disagree);
            let need = match demand {
                LabelDemand::Free => false,
                LabelDemand::Disagreements => disagree,
                LabelDemand::Full => true,
            };
            let label = if need {
                let (label, fresh) = self.testset.require_label(i, self.oracle.as_deref_mut())?;
                if fresh {
                    self.labels_requested += 1;
                }
                Some(label)
            } else {
                self.testset.label(i)
            };
            match label {
                Some(label) => {
                    new_correct += u64::from(self.new[i] == label);
                    old_correct += u64::from(self.old[i] == label);
                }
                // Unknown label: identical credit to both models. The
                // formula never reads the statistics this distorts (or
                // the item would have been labelled above).
                None => {
                    new_correct += 1;
                    old_correct += 1;
                }
            }
        }
        Ok(MeasuredCounts {
            samples: range.len() as u64,
            new_correct,
            old_correct,
            changed,
            labels_spent: self.labels_requested - spent_before,
        })
    }

    /// [`Measurement::derive_counts`] extended with the per-class
    /// confusion counts metric formulas need. Plain formulas delegate to
    /// the demand-driven path and return `None` for the per-class half;
    /// metric formulas label every item in the range ([`LabelDemand::Full`])
    /// and tally [`PerClassCounts`] alongside the scalar counts.
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures; rejects formulas the
    /// declared class count cannot back ([`validate_metric_formula`]) and
    /// labels or predictions outside `0..classes`.
    pub fn derive_counts_with_classes(
        &mut self,
        formula: &Formula,
        range: Range<usize>,
        classes: u32,
    ) -> Result<(MeasuredCounts, Option<PerClassCounts>)> {
        if !formula.has_metric() {
            return Ok((self.derive_counts(formula, range)?, None));
        }
        validate_metric_formula(formula, classes)?;
        let spent_before = self.labels_requested;
        let mut per_class = PerClassCounts::zeroed(classes);
        let mut changed = 0u64;
        let mut new_correct = 0u64;
        let mut old_correct = 0u64;
        for i in range.clone() {
            changed += u64::from(self.new[i] != self.old[i]);
            let (label, fresh) = self.testset.require_label(i, self.oracle.as_deref_mut())?;
            if fresh {
                self.labels_requested += 1;
            }
            for (what, value) in [
                ("label", label),
                ("old prediction", self.old[i]),
                ("new prediction", self.new[i]),
            ] {
                if value >= classes {
                    return Err(CiError::Semantic(format!(
                        "{what} {value} for item {i} is outside the declared class range 0..{classes}"
                    )));
                }
            }
            new_correct += u64::from(self.new[i] == label);
            old_correct += u64::from(self.old[i] == label);
            per_class.support[label as usize] += 1;
            per_class.new_pred[self.new[i] as usize] += 1;
            per_class.old_pred[self.old[i] as usize] += 1;
            if self.new[i] == label {
                per_class.new_tp[label as usize] += 1;
            }
            if self.old[i] == label {
                per_class.old_tp[label as usize] += 1;
            }
        }
        let counts = MeasuredCounts {
            samples: range.len() as u64,
            new_correct,
            old_correct,
            changed,
            labels_spent: self.labels_requested - spent_before,
        };
        Ok((counts, Some(per_class)))
    }

    /// [`Measurement::derive_counts`] over the whole pool through the
    /// bit-packed fast lane: predictions are packed into per-class
    /// bitmaps and compared against a pre-packed `truth` word-level, so
    /// `changed` and the correctness credits are popcounts instead of
    /// per-item loops. Oracle traffic is identical to the per-item path:
    /// fresh labels are pulled in ascending item order, exactly for the
    /// items the formula's [`LabelDemand`] requires — the two paths are
    /// bit-identical in counts, pool state, and oracle spend.
    ///
    /// `truth` must pack the same ground truth the testset's cached
    /// labels come from (label `i` known ⇒ it equals `truth[i]`), cover
    /// exactly the pool, and span every class the prediction vectors
    /// use; when any of that fails to hold structurally (length or class
    /// range mismatch) this falls back to the per-item path.
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures. Rejects metric formulas
    /// loudly, like [`Measurement::derive_counts`] — use
    /// [`Measurement::derive_counts_packed_with_classes`].
    pub fn derive_counts_packed(
        &mut self,
        formula: &Formula,
        truth: &ClassBitmaps,
    ) -> Result<MeasuredCounts> {
        if formula.has_metric() {
            return Err(CiError::Semantic(
                "formula reads metric variables (f1/topk) that scalar counts cannot carry; \
                 derive per-class confusion counts with derive_counts_packed_with_classes"
                    .into(),
            ));
        }
        let len = self.testset.len();
        let (Some(old), Some(new)) = (
            ClassBitmaps::from_labels(self.old, truth.classes()),
            ClassBitmaps::from_labels(self.new, truth.classes()),
        ) else {
            return self.derive_counts(formula, 0..len);
        };
        if truth.len() != len {
            return self.derive_counts(formula, 0..len);
        }
        let demand = formula_label_demand(formula);
        let spent_before = self.labels_requested;
        let words = len.div_ceil(64);
        let tail_mask = |w: usize| -> u64 {
            if w + 1 == words && !len.is_multiple_of(64) {
                (1u64 << (len % 64)) - 1
            } else {
                !0
            }
        };

        // Agreement: per class, both models predict it; union over
        // classes. Tail bits beyond `len` stay zero in every bitmap.
        let mut disagree = vec![0u64; words];
        for c in 0..truth.classes() {
            let (o, n) = (old.class(c), new.class(c));
            for w in 0..words {
                disagree[w] |= o[w] & n[w];
            }
        }
        let mut changed = 0u64;
        for (w, word) in disagree.iter_mut().enumerate() {
            *word = !*word & tail_mask(w);
            changed += u64::from(word.count_ones());
        }

        // Pull the labels the demand requires, ascending — the same
        // oracle call sequence the per-item path makes.
        let mut known = self.testset.known_words();
        for w in 0..words {
            let need = match demand {
                LabelDemand::Free => 0,
                LabelDemand::Disagreements => disagree[w],
                LabelDemand::Full => tail_mask(w),
            };
            let mut fresh = need & !known[w];
            while fresh != 0 {
                let bit = fresh.trailing_zeros() as usize;
                let i = w * 64 + bit;
                self.testset.require_label(i, self.oracle.as_deref_mut())?;
                self.labels_requested += 1;
                known[w] |= 1u64 << bit;
                fresh &= fresh - 1;
            }
        }

        // Correctness credit: exact where the label is known, both
        // models credited where it is not (see `derive_counts`).
        let mut unknown = 0u64;
        let mut new_correct = 0u64;
        let mut old_correct = 0u64;
        for (w, word) in known.iter().enumerate() {
            unknown += u64::from((!word & tail_mask(w)).count_ones());
        }
        for c in 0..truth.classes() {
            let (t, o, n) = (truth.class(c), old.class(c), new.class(c));
            for w in 0..words {
                let scored = t[w] & known[w];
                new_correct += u64::from((n[w] & scored).count_ones());
                old_correct += u64::from((o[w] & scored).count_ones());
            }
        }
        Ok(MeasuredCounts {
            samples: len as u64,
            new_correct: new_correct + unknown,
            old_correct: old_correct + unknown,
            changed,
            labels_spent: self.labels_requested - spent_before,
        })
    }

    /// [`Measurement::derive_counts_with_classes`] through the bit-packed
    /// fast lane. Plain formulas delegate to
    /// [`Measurement::derive_counts_packed`]; metric formulas pull every
    /// label (ascending, same oracle sequence as the per-item path) and
    /// read the per-class confusion counts off word-level popcounts —
    /// bit-identical to the scalar lane in counts, pool state, and oracle
    /// spend. Falls back to the per-item path when the predictions fail
    /// to pack or `truth` does not cover the pool.
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures; rejects formulas the class
    /// count cannot back ([`validate_metric_formula`]).
    pub fn derive_counts_packed_with_classes(
        &mut self,
        formula: &Formula,
        truth: &ClassBitmaps,
    ) -> Result<(MeasuredCounts, Option<PerClassCounts>)> {
        if !formula.has_metric() {
            return Ok((self.derive_counts_packed(formula, truth)?, None));
        }
        let len = self.testset.len();
        let (Some(old), Some(new)) = (
            ClassBitmaps::from_labels(self.old, truth.classes()),
            ClassBitmaps::from_labels(self.new, truth.classes()),
        ) else {
            return self.derive_counts_with_classes(formula, 0..len, truth.classes());
        };
        if truth.len() != len {
            return self.derive_counts_with_classes(formula, 0..len, truth.classes());
        }
        validate_metric_formula(formula, truth.classes())?;
        let spent_before = self.labels_requested;
        let words = len.div_ceil(64);
        let tail_mask = |w: usize| -> u64 {
            if w + 1 == words && !len.is_multiple_of(64) {
                (1u64 << (len % 64)) - 1
            } else {
                !0
            }
        };

        let mut changed = 0u64;
        for w in 0..words {
            let mut agree = 0u64;
            for c in 0..truth.classes() {
                agree |= old.class(c)[w] & new.class(c)[w];
            }
            changed += u64::from((!agree & tail_mask(w)).count_ones());
        }

        // Metric demand is Full: pull every missing label, ascending —
        // the same oracle call sequence the per-item path makes.
        let known = self.testset.known_words();
        for (w, word) in known.iter().enumerate() {
            let mut fresh = tail_mask(w) & !word;
            while fresh != 0 {
                let bit = fresh.trailing_zeros() as usize;
                self.testset
                    .require_label(w * 64 + bit, self.oracle.as_deref_mut())?;
                self.labels_requested += 1;
                fresh &= fresh - 1;
            }
        }

        // Every item is labelled now, so the confusion counts are plain
        // popcounts against the truth bitmaps (zero beyond `len`).
        let mut per_class = PerClassCounts::zeroed(truth.classes());
        let mut new_correct = 0u64;
        let mut old_correct = 0u64;
        for c in 0..truth.classes() {
            let (t, o, n) = (truth.class(c), old.class(c), new.class(c));
            let ci = c as usize;
            for w in 0..words {
                per_class.support[ci] += u64::from(t[w].count_ones());
                per_class.new_pred[ci] += u64::from(n[w].count_ones());
                per_class.old_pred[ci] += u64::from(o[w].count_ones());
                per_class.new_tp[ci] += u64::from((n[w] & t[w]).count_ones());
                per_class.old_tp[ci] += u64::from((o[w] & t[w]).count_ones());
            }
            new_correct += per_class.new_tp[ci];
            old_correct += per_class.old_tp[ci];
        }
        let counts = MeasuredCounts {
            samples: len as u64,
            new_correct,
            old_correct,
            changed,
            labels_spent: self.labels_requested - spent_before,
        };
        Ok((counts, Some(per_class)))
    }

    /// Measure the left-hand side of a clause over a range, choosing the
    /// cheapest sufficient strategy:
    ///
    /// * `d`-only expressions: label-free;
    /// * expressions where the `n` and `o` coefficients cancel
    ///   (`α_n = −α_o`): disagreement labelling only;
    /// * anything else: full labelling of the range.
    ///
    /// # Errors
    ///
    /// Propagates label-acquisition failures. Rejects metric clauses
    /// loudly: `f1(...)`/`topk(...)` are not linear in the per-item
    /// accuracy statistics this measures, so silently evaluating the
    /// plain terms would report a wrong left-hand side.
    pub fn clause_lhs(&mut self, clause: &Clause, range: Range<usize>) -> Result<f64> {
        let form = LinearForm::from_expr(&clause.expr);
        if form.has_metric() {
            return Err(CiError::Semantic(format!(
                "clause `{clause}` reads metric variables (f1/topk); evaluate it from \
                 per-class counts (derive_counts_with_classes), not clause_lhs"
            )));
        }
        let a_n = form.coefficient(Var::N);
        let a_o = form.coefficient(Var::O);
        let a_d = form.coefficient(Var::D);
        let d_part = if a_d != 0.0 {
            a_d * self.difference(range.clone())
        } else {
            0.0
        };
        if a_n == 0.0 && a_o == 0.0 {
            return Ok(d_part);
        }
        if a_n == -a_o {
            let diff = self.accuracy_difference(range)?;
            return Ok(a_n * diff + d_part);
        }
        let n_part = if a_n != 0.0 {
            a_n * self.new_accuracy(range.clone())?
        } else {
            0.0
        };
        let o_part = if a_o != 0.0 {
            a_o * self.old_accuracy(range)?
        } else {
            0.0
        };
        Ok(n_part + o_part + d_part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_clause;
    use crate::engine::testset::VecOracle;

    /// 10 items; labels all 0. Old model predicts 0 except items 8, 9
    /// (accuracy 0.8). New model predicts 0 except item 9 (accuracy 0.9).
    /// They disagree exactly on item 8 (d = 0.1).
    fn fixture() -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let labels = vec![0u32; 10];
        let mut old = vec![0u32; 10];
        old[8] = 1;
        old[9] = 1;
        let mut new = vec![0u32; 10];
        new[9] = 1;
        (labels, old, new)
    }

    #[test]
    fn difference_needs_no_labels() {
        let (_, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let m = Measurement::new(&mut testset, None, &old, &new).unwrap();
        assert!((m.difference(0..10) - 0.1).abs() < 1e-12);
        assert_eq!(m.labels_requested(), 0);
    }

    #[test]
    fn accuracy_labels_everything_in_range() {
        let (labels, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let mut oracle = VecOracle::new(labels);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        assert!((m.new_accuracy(0..10).unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(m.labels_requested(), 10);
        // Old accuracy reuses the cached labels.
        assert!((m.old_accuracy(0..10).unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(m.labels_requested(), 10);
    }

    #[test]
    fn difference_trick_labels_only_disagreements() {
        let (labels, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let mut oracle = VecOracle::new(labels);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        let diff = m.accuracy_difference(0..10).unwrap();
        assert!((diff - 0.1).abs() < 1e-12, "diff = {diff}");
        assert_eq!(m.labels_requested(), 1, "only item 8 disagrees");
    }

    #[test]
    fn clause_lhs_picks_cheapest_strategy() {
        let (labels, old, new) = fixture();
        // d-only: free.
        {
            let mut testset = Testset::unlabeled(10);
            let mut m = Measurement::new(&mut testset, None, &old, &new).unwrap();
            let clause = parse_clause("d < 0.2 +/- 0.05").unwrap();
            assert!((m.clause_lhs(&clause, 0..10).unwrap() - 0.1).abs() < 1e-12);
            assert_eq!(m.labels_requested(), 0);
        }
        // n - o: disagreement labels only.
        {
            let mut testset = Testset::unlabeled(10);
            let mut oracle = VecOracle::new(labels.clone());
            let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
            let clause = parse_clause("n - o > 0.0 +/- 0.05").unwrap();
            assert!((m.clause_lhs(&clause, 0..10).unwrap() - 0.1).abs() < 1e-12);
            assert_eq!(m.labels_requested(), 1);
        }
        // scaled difference 2*(n-o) still uses the trick.
        {
            let mut testset = Testset::unlabeled(10);
            let mut oracle = VecOracle::new(labels.clone());
            let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
            let clause = parse_clause("2 * (n - o) > 0.0 +/- 0.05").unwrap();
            assert!((m.clause_lhs(&clause, 0..10).unwrap() - 0.2).abs() < 1e-12);
            assert_eq!(m.labels_requested(), 1);
        }
        // bare n: full labelling.
        {
            let mut testset = Testset::unlabeled(10);
            let mut oracle = VecOracle::new(labels);
            let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
            let clause = parse_clause("n > 0.5 +/- 0.1").unwrap();
            assert!((m.clause_lhs(&clause, 0..10).unwrap() - 0.9).abs() < 1e-12);
            assert_eq!(m.labels_requested(), 10);
        }
    }

    #[test]
    fn mixed_expression_with_d() {
        let (labels, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let mut oracle = VecOracle::new(labels);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        let clause = parse_clause("n - o + d > 0.0 +/- 0.05").unwrap();
        // 0.1 + 0.1 = 0.2; still only one label (difference trick + free d).
        assert!((m.clause_lhs(&clause, 0..10).unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(m.labels_requested(), 1);
    }

    #[test]
    fn label_demand_classification() {
        use crate::dsl::parse_formula;
        let demand = |text: &str| formula_label_demand(&parse_formula(text).unwrap());
        assert_eq!(demand("d < 0.2 +/- 0.05"), LabelDemand::Free);
        assert_eq!(demand("n - o > 0.0 +/- 0.05"), LabelDemand::Disagreements);
        assert_eq!(
            demand("2 * (n - o) > 0.0 +/- 0.05"),
            LabelDemand::Disagreements
        );
        assert_eq!(
            demand("n - o > 0.0 +/- 0.05 /\\ d < 0.2 +/- 0.05"),
            LabelDemand::Disagreements
        );
        assert_eq!(demand("n > 0.5 +/- 0.1"), LabelDemand::Full);
        assert_eq!(demand("n - 1.1 * o > 0.0 +/- 0.1"), LabelDemand::Full);
        assert_eq!(
            demand("n - o > 0.0 +/- 0.05 /\\ o > 0.5 +/- 0.1"),
            LabelDemand::Full
        );
    }

    #[test]
    fn derive_counts_spends_only_what_the_formula_demands() {
        use crate::dsl::parse_formula;
        let (labels, old, new) = fixture();
        // d-only: zero labels, exact `changed`; unknown items credit both.
        {
            let mut testset = Testset::unlabeled(10);
            let mut m = Measurement::new(&mut testset, None, &old, &new).unwrap();
            let c = m
                .derive_counts(&parse_formula("d < 0.2 +/- 0.05").unwrap(), 0..10)
                .unwrap();
            assert_eq!((c.samples, c.changed, c.labels_spent), (10, 1, 0));
            assert_eq!((c.new_correct, c.old_correct), (10, 10));
        }
        // n - o: only the single disagreement is labelled, and the
        // difference of the counts is the exact accuracy difference.
        {
            let mut testset = Testset::unlabeled(10);
            let mut oracle = VecOracle::new(labels.clone());
            let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
            let c = m
                .derive_counts(&parse_formula("n - o > 0.0 +/- 0.05").unwrap(), 0..10)
                .unwrap();
            assert_eq!(c.labels_spent, 1, "only item 8 disagrees");
            assert_eq!(c.new_correct as i64 - c.old_correct as i64, 1);
            assert_eq!(c.changed, 1);
            assert_eq!(testset.labeled_count(), 1);
        }
        // Bare n: full labelling, exact confusion counts.
        {
            let mut testset = Testset::unlabeled(10);
            let mut oracle = VecOracle::new(labels.clone());
            let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
            let c = m
                .derive_counts(&parse_formula("n > 0.5 +/- 0.1").unwrap(), 0..10)
                .unwrap();
            assert_eq!(c.labels_spent, 10);
            assert_eq!((c.new_correct, c.old_correct, c.changed), (9, 8, 1));
        }
        // Fully labelled pool: counts are the true confusion counts and
        // nothing is spent, whatever the demand.
        {
            let mut testset = Testset::fully_labeled(labels);
            let mut m = Measurement::new(&mut testset, None, &old, &new).unwrap();
            let c = m
                .derive_counts(&parse_formula("d < 0.2 +/- 0.05").unwrap(), 0..10)
                .unwrap();
            assert_eq!((c.new_correct, c.old_correct, c.labels_spent), (9, 8, 0));
        }
    }

    #[test]
    fn derived_counts_reproduce_clause_lhs() {
        // The equivalence the serving gate rests on: evaluating a clause
        // at the derived counts' point estimates gives exactly the value
        // the measurement layer would have measured for it.
        use crate::dsl::parse_formula;
        let (labels, old, new) = fixture();
        for text in [
            "d < 0.2 +/- 0.05",
            "n - o > 0.0 +/- 0.05",
            "n - o + d > 0.0 +/- 0.05",
            "n > 0.5 +/- 0.1 /\\ d < 0.2 +/- 0.05",
        ] {
            let formula = parse_formula(text).unwrap();
            let mut testset = Testset::unlabeled(10);
            let mut oracle = VecOracle::new(labels.clone());
            let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
            let c = m.derive_counts(&formula, 0..10).unwrap();
            let s = c.samples as f64;
            let est = crate::eval::VariableEstimates::new(
                c.new_correct as f64 / s,
                c.old_correct as f64 / s,
                c.changed as f64 / s,
            );
            // A fresh measurement context over the same (now labelled)
            // pool measures each clause directly.
            let mut m2 = Measurement::new(&mut testset, None, &old, &new).unwrap();
            for clause in formula.clauses() {
                let lhs = m2.clause_lhs(clause, 0..10).unwrap();
                let from_counts = est.evaluate_expr(&clause.expr);
                assert!(
                    (lhs - from_counts).abs() < 1e-12,
                    "{text}: clause `{clause}` measured {lhs} vs counts {from_counts}"
                );
            }
        }
    }

    #[test]
    fn derive_counts_without_needed_oracle_fails() {
        use crate::dsl::parse_formula;
        let (_, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let mut m = Measurement::new(&mut testset, None, &old, &new).unwrap();
        assert!(m
            .derive_counts(&parse_formula("n > 0.5 +/- 0.1").unwrap(), 0..10)
            .is_err());
    }

    /// Deterministic xorshift generator for the packed-vs-scalar
    /// property sweep.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    #[test]
    fn packed_derive_counts_is_bit_identical_to_per_item_path() {
        use crate::dsl::parse_formula;
        // Every LabelDemand shape, as the serving layer classifies them:
        // d-only (Free), pure difference (Disagreements, alone and in a
        // conjunction with d), and individual accuracy (Full).
        let formulas = [
            "d < 0.5 +/- 0.1",
            "n - o > 0.0 +/- 0.1",
            "n - o > 0.0 +/- 0.1 /\\ d < 0.5 +/- 0.1",
            "n > 0.5 +/- 0.1",
        ];
        let mut rng = Rng(0x2447_1339_ace1_d00d);
        for trial in 0..40 {
            let len = 1 + rng.below(130) as usize; // crosses word boundaries
            let classes = 1 + rng.below(7) as u32;
            let truth: Vec<u32> = (0..len)
                .map(|_| rng.below(u64::from(classes)) as u32)
                .collect();
            let old: Vec<u32> = (0..len)
                .map(|_| rng.below(u64::from(classes)) as u32)
                .collect();
            let new: Vec<u32> = (0..len)
                .map(|_| rng.below(u64::from(classes)) as u32)
                .collect();
            // Random partial pre-labelling (always consistent with truth).
            let prelabeled: Vec<usize> = (0..len).filter(|_| rng.below(4) == 0).collect();
            let truth_bits = ClassBitmaps::from_labels(&truth, classes).unwrap();
            for text in formulas {
                let formula = parse_formula(text).unwrap();
                let mut scalar_pool = Testset::unlabeled(len);
                let mut packed_pool = Testset::unlabeled(len);
                for &i in &prelabeled {
                    scalar_pool.set_label(i, truth[i]);
                    packed_pool.set_label(i, truth[i]);
                }
                let mut scalar_oracle = VecOracle::new(truth.clone());
                let mut packed_oracle = VecOracle::new(truth.clone());
                let scalar =
                    Measurement::new(&mut scalar_pool, Some(&mut scalar_oracle), &old, &new)
                        .unwrap()
                        .derive_counts(&formula, 0..len)
                        .unwrap();
                let packed =
                    Measurement::new(&mut packed_pool, Some(&mut packed_oracle), &old, &new)
                        .unwrap()
                        .derive_counts_packed(&formula, &truth_bits)
                        .unwrap();
                assert_eq!(packed, scalar, "trial {trial} formula {text}");
                assert_eq!(
                    packed_pool, scalar_pool,
                    "label pools diverged: trial {trial} formula {text}"
                );
                assert_eq!(
                    packed_oracle.labels_served(),
                    scalar_oracle.labels_served(),
                    "oracle spend diverged: trial {trial} formula {text}"
                );
            }
        }
    }

    #[test]
    fn packed_derive_counts_falls_back_and_errors_like_scalar() {
        use crate::dsl::parse_formula;
        let (_, old, new) = fixture();
        let formula = parse_formula("n > 0.5 +/- 0.1").unwrap();
        // Missing oracle under Full demand errors exactly like the
        // per-item path (ascending order ⇒ same first failing item).
        let truth_bits = ClassBitmaps::from_labels(&[0u32; 10], 2).unwrap();
        let mut pool = Testset::unlabeled(10);
        let mut m = Measurement::new(&mut pool, None, &old, &new).unwrap();
        assert!(m.derive_counts_packed(&formula, &truth_bits).is_err());
        // A truth packing that does not cover the pool falls back to the
        // per-item path rather than mis-counting.
        let short = ClassBitmaps::from_labels(&[0u32; 4], 2).unwrap();
        let mut pool = Testset::fully_labeled(vec![0u32; 10]);
        let mut m = Measurement::new(&mut pool, None, &old, &new).unwrap();
        let c = m.derive_counts_packed(&formula, &short).unwrap();
        assert_eq!((c.new_correct, c.old_correct), (9, 8));
        // Class counts outside the packable range refuse to pack.
        assert!(ClassBitmaps::from_labels(&[0], 0).is_none());
        assert!(ClassBitmaps::from_labels(&[0], 65).is_none());
        assert!(ClassBitmaps::from_labels(&[7], 4).is_none());
        assert!(ClassBitmaps::from_labels(&[63], 64).is_some());
    }

    #[test]
    fn metric_clauses_demand_full_labelling() {
        use crate::dsl::parse_formula;
        let demand = |text: &str| formula_label_demand(&parse_formula(text).unwrap());
        // Pure metric clauses have zero n/o coefficients; without the
        // metric branch they would misclassify as Free.
        assert_eq!(demand("f1(n) > 0.8 +/- 0.05"), LabelDemand::Full);
        assert_eq!(demand("f1(n) - f1(o) > -0.02 +/- 0.01"), LabelDemand::Full);
        assert_eq!(
            demand("topk(n, 3) - topk(o, 3) > 0.0 +/- 0.1"),
            LabelDemand::Full
        );
        assert_eq!(
            demand("f1(n) - f1(o) > -0.02 +/- 0.01 /\\ d < 0.1 +/- 0.05"),
            LabelDemand::Full
        );
    }

    #[test]
    fn scalar_count_paths_reject_metric_formulas_loudly() {
        use crate::dsl::{parse_clause, parse_formula};
        let (labels, old, new) = fixture();
        let formula = parse_formula("f1(n) - f1(o) > -0.02 +/- 0.01").unwrap();
        let truth_bits = ClassBitmaps::from_labels(&labels, 2).unwrap();
        let mut testset = Testset::fully_labeled(labels);
        let mut m = Measurement::new(&mut testset, None, &old, &new).unwrap();
        for err in [
            m.derive_counts(&formula, 0..10).unwrap_err(),
            m.derive_counts_packed(&formula, &truth_bits).unwrap_err(),
            m.clause_lhs(&parse_clause("f1(n) > 0.8 +/- 0.05").unwrap(), 0..10)
                .unwrap_err(),
        ] {
            let msg = err.to_string();
            assert!(
                msg.contains("metric"),
                "error not loud about metrics: {msg}"
            );
        }
    }

    #[test]
    fn validate_metric_formula_rejects_impossible_testsets() {
        use crate::dsl::parse_formula;
        let f = |text: &str| parse_formula(text).unwrap();
        // Plain formulas pass at any class count.
        validate_metric_formula(&f("n - o > 0.0 +/- 0.05"), 1).unwrap();
        // F1 needs a positive class.
        let err = validate_metric_formula(&f("f1(n) > 0.8 +/- 0.05"), 1).unwrap_err();
        assert!(err.to_string().contains("at least 2 classes"));
        validate_metric_formula(&f("f1(n) > 0.8 +/- 0.05"), 2).unwrap();
        // topk cannot outrun the class count.
        let err = validate_metric_formula(&f("topk(n, 5) > 0.8 +/- 0.05"), 3).unwrap_err();
        assert!(err.to_string().contains("topk(5)"));
        validate_metric_formula(&f("topk(n, 5) > 0.8 +/- 0.05"), 5).unwrap();
        // More distinct ks than estimate slots.
        let wide =
            f("topk(n, 1) + topk(n, 2) + topk(n, 3) + topk(n, 4) + topk(n, 5) > 0.0 +/- 0.1");
        let err = validate_metric_formula(&wide, 8).unwrap_err();
        assert!(err.to_string().contains("distinct topk"));
    }

    #[test]
    fn per_class_counts_match_reference_statistics() {
        use crate::dsl::parse_formula;
        use crate::extensions::f1_score;
        // 8 items, 3 classes. Truth: [0,0,0,1,1,2,2,2].
        let truth = vec![0u32, 0, 0, 1, 1, 2, 2, 2];
        let old = vec![0u32, 1, 0, 1, 0, 2, 0, 2];
        let new = vec![0u32, 0, 1, 1, 1, 2, 2, 1];
        let formula =
            parse_formula("f1(n) - f1(o) > -0.5 +/- 0.1 /\\ topk(n, 2) > 0.0 +/- 0.1").unwrap();
        let mut testset = Testset::unlabeled(8);
        let mut oracle = VecOracle::new(truth.clone());
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        let (counts, per_class) = m.derive_counts_with_classes(&formula, 0..8, 3).unwrap();
        let pc = per_class.expect("metric formula tallies per-class counts");
        assert_eq!(counts.labels_spent, 8, "metric demand labels everything");
        assert_eq!(pc.labeled(), counts.samples);
        assert_eq!(pc.support, vec![3, 2, 3]);
        // F1 agrees with the reference implementation on both models.
        assert_eq!(pc.f1(true), f1_score(&new, &truth, 1));
        assert_eq!(pc.f1(false), f1_score(&old, &truth, 1));
        // Top-2 classes by support: 0 and 2 (tie at 3 beats class 1's 2).
        assert_eq!(pc.top_classes(2), vec![0, 2]);
        // topk(n, 2): items with true class in {0, 2}: indices 0..3 and
        // 5..8; new is right on 0, 1, 5, 6 → 4/6.
        assert!((pc.topk(true, 2) - 4.0 / 6.0).abs() < 1e-12);
        // Estimates populate and evaluate.
        let mut est = VariableEstimates::new(0.0, 0.0, 0.0);
        pc.populate_estimates(&formula, &mut est).unwrap();
        let lhs = est.evaluate_expr(&formula.clauses()[0].expr);
        assert!((lhs - (f1_score(&new, &truth, 1) - f1_score(&old, &truth, 1))).abs() < 1e-12);
    }

    #[test]
    fn per_class_counts_edge_conventions() {
        // Zero true positives → F1 = 0 (reference convention), and an
        // unsupported top-k restriction → 0 rather than NaN.
        let mut pc = PerClassCounts::zeroed(3);
        assert_eq!(pc.f1(true), 0.0);
        assert_eq!(pc.topk(true, 2), 0.0);
        // Ties in support break towards the lower class id.
        pc.support = vec![2, 2, 2];
        assert_eq!(pc.top_classes(2), vec![0, 1]);
    }

    #[test]
    fn derive_counts_with_classes_rejects_out_of_range_values() {
        use crate::dsl::parse_formula;
        let formula = parse_formula("f1(n) > 0.5 +/- 0.1").unwrap();
        // Label 2 exceeds the declared 2 classes.
        let truth = vec![0u32, 1, 2];
        let old = vec![0u32, 1, 1];
        let new = vec![0u32, 1, 1];
        let mut testset = Testset::unlabeled(3);
        let mut oracle = VecOracle::new(truth);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        let err = m.derive_counts_with_classes(&formula, 0..3, 2).unwrap_err();
        assert!(err.to_string().contains("class range"), "{err}");
        // Prediction out of range is equally loud.
        let truth = vec![0u32, 1, 1];
        let bad_new = vec![0u32, 1, 7];
        let old = vec![0u32, 1, 1];
        let mut testset = Testset::unlabeled(3);
        let mut oracle = VecOracle::new(truth);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &bad_new).unwrap();
        let err = m.derive_counts_with_classes(&formula, 0..3, 2).unwrap_err();
        assert!(err.to_string().contains("class range"), "{err}");
    }

    #[test]
    fn packed_metric_derivation_is_bit_identical_to_per_item_path() {
        use crate::dsl::parse_formula;
        let formulas = [
            "f1(n) - f1(o) > -0.02 +/- 0.01",
            "topk(n, 3) - topk(o, 3) > 0.0 +/- 0.1",
            "f1(n) > 0.5 +/- 0.1 /\\ d < 0.5 +/- 0.1",
            "f1(n) - f1(o) + topk(n, 2) - topk(o, 2) > -0.1 +/- 0.05",
        ];
        let mut rng = Rng(0x5eed_f00d_2468_ace2);
        for trial in 0..40 {
            let len = 1 + rng.below(130) as usize;
            let classes = 3 + rng.below(5) as u32; // ≥ 3 so every k fits
            let truth: Vec<u32> = (0..len)
                .map(|_| rng.below(u64::from(classes)) as u32)
                .collect();
            let old: Vec<u32> = (0..len)
                .map(|_| rng.below(u64::from(classes)) as u32)
                .collect();
            let new: Vec<u32> = (0..len)
                .map(|_| rng.below(u64::from(classes)) as u32)
                .collect();
            let prelabeled: Vec<usize> = (0..len).filter(|_| rng.below(4) == 0).collect();
            let truth_bits = ClassBitmaps::from_labels(&truth, classes).unwrap();
            for text in formulas {
                let formula = parse_formula(text).unwrap();
                let mut scalar_pool = Testset::unlabeled(len);
                let mut packed_pool = Testset::unlabeled(len);
                for &i in &prelabeled {
                    scalar_pool.set_label(i, truth[i]);
                    packed_pool.set_label(i, truth[i]);
                }
                let mut scalar_oracle = VecOracle::new(truth.clone());
                let mut packed_oracle = VecOracle::new(truth.clone());
                let scalar =
                    Measurement::new(&mut scalar_pool, Some(&mut scalar_oracle), &old, &new)
                        .unwrap()
                        .derive_counts_with_classes(&formula, 0..len, classes)
                        .unwrap();
                let packed =
                    Measurement::new(&mut packed_pool, Some(&mut packed_oracle), &old, &new)
                        .unwrap()
                        .derive_counts_packed_with_classes(&formula, &truth_bits)
                        .unwrap();
                assert_eq!(packed, scalar, "trial {trial} formula {text}");
                assert_eq!(
                    packed_pool, scalar_pool,
                    "label pools diverged: trial {trial} formula {text}"
                );
                assert_eq!(
                    packed_oracle.labels_served(),
                    scalar_oracle.labels_served(),
                    "oracle spend diverged: trial {trial} formula {text}"
                );
            }
        }
    }

    #[test]
    fn with_classes_paths_delegate_for_plain_formulas() {
        use crate::dsl::parse_formula;
        let (labels, old, new) = fixture();
        let formula = parse_formula("n - o > 0.0 +/- 0.05").unwrap();
        let truth_bits = ClassBitmaps::from_labels(&labels, 2).unwrap();
        let mut testset = Testset::unlabeled(10);
        let mut oracle = VecOracle::new(labels.clone());
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        let (counts, pc) = m.derive_counts_with_classes(&formula, 0..10, 2).unwrap();
        assert!(pc.is_none(), "plain formulas carry no per-class counts");
        assert_eq!(counts.labels_spent, 1);
        let mut testset = Testset::unlabeled(10);
        let mut oracle = VecOracle::new(labels);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        let (packed, pc) = m
            .derive_counts_packed_with_classes(&formula, &truth_bits)
            .unwrap();
        assert!(pc.is_none());
        assert_eq!(packed, counts);
    }

    #[test]
    fn rejects_mismatched_predictions() {
        let (_, old, _) = fixture();
        let mut testset = Testset::unlabeled(10);
        let short = vec![0u32; 5];
        assert!(Measurement::new(&mut testset, None, &old, &short).is_err());
        let mut testset2 = Testset::unlabeled(10);
        assert!(Measurement::new(&mut testset2, None, &short, &old).is_err());
    }

    #[test]
    fn subrange_measurement() {
        let (labels, old, new) = fixture();
        let mut testset = Testset::unlabeled(10);
        let mut oracle = VecOracle::new(labels);
        let mut m = Measurement::new(&mut testset, Some(&mut oracle), &old, &new).unwrap();
        // Range 0..8 excludes both wrong predictions: perfect agreement.
        assert_eq!(m.difference(0..8), 0.0);
        assert_eq!(m.accuracy_difference(0..8).unwrap(), 0.0);
        assert_eq!(m.labels_requested(), 0);
        // Range 8..10: old wrong on both, new wrong on one.
        assert!((m.new_accuracy(8..10).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(m.old_accuracy(8..10).unwrap(), 0.0);
    }
}

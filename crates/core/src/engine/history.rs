//! Commit history: the engine's append-only log of evaluations.

use super::evaluator::CommitEstimates;
use crate::logic::Tribool;
use std::fmt;

/// One evaluated commit.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Commit identifier as supplied by the developer.
    pub commit_id: String,
    /// 1-based step within the testset era that evaluated it.
    pub step: u32,
    /// 0-based index of the testset era (increments on each fresh
    /// testset).
    pub era: u32,
    /// Measured statistics.
    pub estimates: CommitEstimates,
    /// Three-valued outcome.
    pub outcome: Tribool,
    /// Final pass/fail decision after mode collapse.
    pub passed: bool,
    /// Whether the commit was accepted into the repository (under
    /// `adaptivity: none` every commit is accepted regardless of
    /// `passed`).
    pub accepted: bool,
}

/// Append-only log of evaluated commits across testset eras.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommitHistory {
    entries: Vec<HistoryEntry>,
}

impl CommitHistory {
    /// New empty history.
    #[must_use]
    pub fn new() -> Self {
        CommitHistory::default()
    }

    /// Append an entry.
    pub fn push(&mut self, entry: HistoryEntry) {
        self.entries.push(entry);
    }

    /// Drop entries beyond `len` (no-op if the history is shorter).
    ///
    /// Exists for callers that must *undo* a just-pushed entry when a
    /// durability step downstream of the evaluation fails — e.g. the
    /// serving layer rolls an evaluation back if the journal append
    /// errors, so in-memory state never diverges from the journal.
    pub fn truncate(&mut self, len: usize) {
        self.entries.truncate(len);
    }

    /// All entries in submission order.
    #[must_use]
    pub fn entries(&self) -> &[HistoryEntry] {
        &self.entries
    }

    /// Number of evaluated commits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the history is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most recent entry, if any.
    #[must_use]
    pub fn last(&self) -> Option<&HistoryEntry> {
        self.entries.last()
    }

    /// The most recently *passed* commit, if any.
    #[must_use]
    pub fn last_passed(&self) -> Option<&HistoryEntry> {
        self.entries.iter().rev().find(|e| e.passed)
    }

    /// Number of commits that passed.
    #[must_use]
    pub fn passed_count(&self) -> usize {
        self.entries.iter().filter(|e| e.passed).count()
    }

    /// Total fresh labels requested across all evaluations.
    #[must_use]
    pub fn total_labels_requested(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.estimates.labels_requested)
            .sum()
    }
}

impl fmt::Display for CommitHistory {
    /// Render the history as a fixed-width table (one row per commit),
    /// similar to the commit strip of the paper's Figure 5.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>4} {:>4} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}",
            "commit", "era", "step", "d", "n", "o", "n-o", "outcome", "pass"
        )?;
        for e in &self.entries {
            let fmt_opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.4}"),
                None => "-".to_owned(),
            };
            writeln!(
                f,
                "{:<16} {:>4} {:>4} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}",
                e.commit_id,
                e.era,
                e.step,
                fmt_opt(e.estimates.d),
                fmt_opt(e.estimates.n),
                fmt_opt(e.estimates.o),
                fmt_opt(e.estimates.diff),
                e.outcome.to_string(),
                if e.passed { "PASS" } else { "FAIL" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, step: u32, passed: bool, labels: u64) -> HistoryEntry {
        HistoryEntry {
            commit_id: id.into(),
            step,
            era: 0,
            estimates: CommitEstimates {
                d: Some(0.05),
                n: None,
                o: None,
                diff: Some(0.01),
                labels_requested: labels,
            },
            outcome: if passed {
                Tribool::True
            } else {
                Tribool::Unknown
            },
            passed,
            accepted: passed,
        }
    }

    #[test]
    fn push_and_query() {
        let mut h = CommitHistory::new();
        assert!(h.is_empty());
        h.push(entry("c1", 1, false, 100));
        h.push(entry("c2", 2, true, 50));
        h.push(entry("c3", 3, false, 70));
        assert_eq!(h.len(), 3);
        assert_eq!(h.passed_count(), 1);
        assert_eq!(h.last().unwrap().commit_id, "c3");
        assert_eq!(h.last_passed().unwrap().commit_id, "c2");
        assert_eq!(h.total_labels_requested(), 220);
    }

    #[test]
    fn display_renders_table() {
        let mut h = CommitHistory::new();
        h.push(entry("deadbeef", 1, true, 10));
        let text = h.to_string();
        assert!(text.contains("deadbeef"));
        assert!(text.contains("PASS"));
        assert!(text.contains("0.0500"));
        // Unmeasured columns render as "-".
        assert!(text.contains(" - "));
    }
}

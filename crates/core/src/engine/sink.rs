//! Notification sinks: how test outcomes leave the engine.
//!
//! With `adaptivity: none` the pass/fail result must reach the
//! *integration team* without the developer seeing it (the statistical
//! guarantee depends on that separation). The engine therefore reports
//! through a [`NotificationSink`]; production deployments would wire this
//! to email, simulations use [`MailboxSink`] or [`CollectingSink`].

use crate::logic::Tribool;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Why the engine asked for a fresh testset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlarmReason {
    /// The pre-declared step budget `H` is used up.
    BudgetExhausted,
    /// Hybrid (`firstChange`) adaptivity: a commit passed, so the
    /// current testset must retire early (§3.4).
    PassedInHybrid,
}

impl fmt::Display for AlarmReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlarmReason::BudgetExhausted => write!(f, "step budget exhausted"),
            AlarmReason::PassedInHybrid => {
                write!(f, "a commit passed under firstChange adaptivity")
            }
        }
    }
}

/// An event emitted by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CiEvent {
    /// A commit was evaluated.
    CommitTested {
        /// The commit identifier.
        commit_id: String,
        /// Three-valued outcome before mode collapse.
        outcome: Tribool,
        /// Final pass/fail decision.
        passed: bool,
        /// 1-based step index within the current testset era.
        step: u32,
    },
    /// The current testset lost its statistical power.
    NewTestsetAlarm {
        /// Why the alarm fired.
        reason: AlarmReason,
        /// Steps consumed when it fired.
        steps_used: u32,
    },
    /// A fresh testset was installed.
    TestsetInstalled {
        /// Pool size of the new testset.
        size: usize,
    },
    /// The retired testset was released to the development team as a
    /// validation set.
    TestsetReleased {
        /// Pool size of the released testset.
        size: usize,
    },
}

/// Receiver of engine events.
pub trait NotificationSink {
    /// Handle one event. Implementations must not panic.
    fn notify(&mut self, event: &CiEvent);
}

/// A sink that drops every event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl NotificationSink for NullSink {
    fn notify(&mut self, _event: &CiEvent) {}
}

/// A sink that records raw events (for tests and simulations).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectingSink {
    events: Vec<CiEvent>,
}

impl CollectingSink {
    /// New empty sink.
    #[must_use]
    pub fn new() -> Self {
        CollectingSink::default()
    }

    /// Events received so far, in order.
    #[must_use]
    pub fn events(&self) -> &[CiEvent] {
        &self.events
    }
}

impl NotificationSink for CollectingSink {
    fn notify(&mut self, event: &CiEvent) {
        self.events.push(event.clone());
    }
}

/// A simulated third-party mailbox: events are rendered as messages to an
/// address the developer cannot read (the `adaptivity: none -> addr`
/// channel of Figure 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MailboxSink {
    address: String,
    messages: Vec<String>,
}

impl MailboxSink {
    /// A mailbox for the given address.
    #[must_use]
    pub fn new(address: impl Into<String>) -> Self {
        MailboxSink {
            address: address.into(),
            messages: Vec::new(),
        }
    }

    /// The mailbox address.
    #[must_use]
    pub fn address(&self) -> &str {
        &self.address
    }

    /// Messages delivered so far.
    #[must_use]
    pub fn messages(&self) -> &[String] {
        &self.messages
    }
}

impl NotificationSink for MailboxSink {
    fn notify(&mut self, event: &CiEvent) {
        let body = match event {
            CiEvent::CommitTested {
                commit_id,
                outcome,
                passed,
                step,
            } => format!(
                "to: {} | commit {commit_id} (step {step}): outcome {outcome}, {}",
                self.address,
                if *passed { "PASS" } else { "FAIL" }
            ),
            CiEvent::NewTestsetAlarm { reason, steps_used } => format!(
                "to: {} | ALARM after {steps_used} steps: {reason}; please provide a fresh testset",
                self.address
            ),
            CiEvent::TestsetInstalled { size } => {
                format!(
                    "to: {} | new testset installed ({size} examples)",
                    self.address
                )
            }
            CiEvent::TestsetReleased { size } => format!(
                "to: {} | old testset released to developers ({size} examples)",
                self.address
            ),
        };
        self.messages.push(body);
    }
}

/// Shared-ownership adapter so tests can keep a handle on a sink that the
/// engine owns: `Rc<RefCell<S>>` forwards to `S`.
impl<S: NotificationSink> NotificationSink for Rc<RefCell<S>> {
    fn notify(&mut self, event: &CiEvent) {
        self.borrow_mut().notify(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> CiEvent {
        CiEvent::CommitTested {
            commit_id: "abc".into(),
            outcome: Tribool::True,
            passed: true,
            step: 1,
        }
    }

    #[test]
    fn collecting_sink_records_in_order() {
        let mut sink = CollectingSink::new();
        sink.notify(&sample_event());
        sink.notify(&CiEvent::TestsetInstalled { size: 10 });
        assert_eq!(sink.events().len(), 2);
        assert!(matches!(
            sink.events()[1],
            CiEvent::TestsetInstalled { size: 10 }
        ));
    }

    #[test]
    fn mailbox_renders_messages() {
        let mut mailbox = MailboxSink::new("xx@abc.com");
        mailbox.notify(&sample_event());
        mailbox.notify(&CiEvent::NewTestsetAlarm {
            reason: AlarmReason::BudgetExhausted,
            steps_used: 32,
        });
        assert_eq!(mailbox.messages().len(), 2);
        assert!(mailbox.messages()[0].contains("xx@abc.com"));
        assert!(mailbox.messages()[0].contains("PASS"));
        assert!(mailbox.messages()[1].contains("ALARM"));
        assert_eq!(mailbox.address(), "xx@abc.com");
    }

    #[test]
    fn shared_sink_forwards() {
        let shared = Rc::new(RefCell::new(CollectingSink::new()));
        let mut handle = Rc::clone(&shared);
        handle.notify(&sample_event());
        assert_eq!(shared.borrow().events().len(), 1);
    }

    #[test]
    fn null_sink_ignores() {
        NullSink.notify(&sample_event()); // must not panic
    }

    #[test]
    fn alarm_reason_display() {
        assert!(AlarmReason::BudgetExhausted.to_string().contains("budget"));
        assert!(AlarmReason::PassedInHybrid
            .to_string()
            .contains("firstChange"));
    }
}

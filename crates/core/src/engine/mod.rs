//! The continuous-integration engine: commit evaluation, adaptivity state,
//! and the new-testset alarm (§2, §3.2–3.5).
//!
//! A [`CiEngine`] is configured by a [`CiScript`], holds the current
//! testset era, and evaluates [`ModelCommit`]s one at a time:
//!
//! 1. measure the condition variables (lazily labelling through a
//!    [`LabelOracle`] when one is installed);
//! 2. evaluate the condition over confidence intervals into
//!    `True`/`False`/`Unknown` and collapse by mode;
//! 3. release (or withhold) the signal according to the adaptivity
//!    policy, update the accepted model, and fire the new-testset alarm
//!    when the era's statistical power is spent.

mod evaluator;
mod history;
mod sink;
mod testset;

pub use evaluator::{
    clause_label_demand, formula_label_demand, validate_metric_formula, ClassBitmaps,
    CommitEstimates, LabelDemand, MeasuredCounts, Measurement, PerClassCounts,
};
pub use history::{CommitHistory, HistoryEntry};
pub use sink::{AlarmReason, CiEvent, CollectingSink, MailboxSink, NotificationSink, NullSink};
pub use testset::{LabelOracle, Testset, VecOracle};

use crate::dsl::{classify_clause, ClauseShape};
use crate::error::{CiError, EngineError, Result};
use crate::estimator::{
    implicit_variance_test_phase, EstimateProvenance, ImplicitVariancePlan, OptimizedPlan,
    SampleSizeEstimate, SampleSizeEstimator,
};
use crate::eval::evaluate_clause_at;
use crate::logic::Tribool;
use crate::script::CiScript;
use easeml_bounds::Adaptivity;
use std::ops::Range;

/// A committed model: an identifier plus its predictions on the current
/// testset (class indices, one per testset item).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCommit {
    /// Commit identifier (e.g. a VCS hash).
    pub id: String,
    /// Predictions over the current testset, in item order.
    pub predictions: Vec<u32>,
}

impl ModelCommit {
    /// Create a commit.
    #[must_use]
    pub fn new(id: impl Into<String>, predictions: Vec<u32>) -> Self {
        ModelCommit {
            id: id.into(),
            predictions,
        }
    }
}

/// What the engine reports back for one submitted commit.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitReceipt {
    /// The commit that was evaluated.
    pub commit_id: String,
    /// 1-based step within the current testset era.
    pub step: u32,
    /// 0-based testset era.
    pub era: u32,
    /// The pass/fail bit *as visible to the developer*: `None` when the
    /// adaptivity policy withholds it (`adaptivity: none`).
    pub signal: Option<bool>,
    /// Whether the commit was accepted into the repository.
    pub accepted: bool,
    /// Three-valued outcome (integration-team view).
    pub outcome: Tribool,
    /// Final pass/fail decision (integration-team view).
    pub passed: bool,
    /// Measured statistics and labelling cost.
    pub estimates: CommitEstimates,
    /// Alarm raised by this evaluation, if any.
    pub alarm: Option<AlarmReason>,
}

/// How the testset pool is partitioned among measurement phases.
#[derive(Debug, Clone, PartialEq)]
enum Layout {
    /// Baseline: every statistic over one shared range.
    Single { test: Range<usize> },
    /// Pattern 1: unlabeled filter range for `d`, labelled Bennett range
    /// for the improvement clause.
    FilterTest {
        filter: Range<usize>,
        test: Range<usize>,
        diff_clause: usize,
        improv_clause: usize,
    },
    /// Pattern 2: unlabeled probe range for `d`, labelled range whose
    /// *used prefix* is sized by the observed difference.
    ProbeTest {
        probe: Range<usize>,
        test_full: Range<usize>,
        plan: ImplicitVariancePlan,
    },
    /// Pattern 3: coarse labelled range, fine labelled range.
    CoarseFine {
        coarse: Range<usize>,
        fine: Range<usize>,
    },
}

/// The CI engine. See the module docs for the lifecycle.
pub struct CiEngine {
    script: CiScript,
    estimate: SampleSizeEstimate,
    layout: Layout,
    testset: Testset,
    oracle: Option<Box<dyn LabelOracle>>,
    sink: Box<dyn NotificationSink>,
    old_predictions: Vec<u32>,
    steps_used: u32,
    era: u32,
    retired: bool,
    history: CommitHistory,
}

impl std::fmt::Debug for CiEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CiEngine")
            .field("script", &self.script)
            .field("estimate", &self.estimate)
            .field("steps_used", &self.steps_used)
            .field("era", &self.era)
            .field("retired", &self.retired)
            .field("testset_len", &self.testset.len())
            .finish_non_exhaustive()
    }
}

impl CiEngine {
    /// Create an engine for a script with an initial testset and the
    /// currently accepted (old) model's predictions on it.
    ///
    /// The required testset size is computed through
    /// [`SampleSizeEstimator`] with default configuration; use
    /// [`CiEngine::with_estimator`] to override.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::TestsetTooSmall`] if the pool cannot
    /// support the configured condition, and
    /// [`EngineError::PredictionLengthMismatch`] if the old model's
    /// predictions do not cover the pool.
    pub fn new(script: CiScript, testset: Testset, old_predictions: Vec<u32>) -> Result<Self> {
        Self::with_estimator(
            script,
            testset,
            old_predictions,
            &SampleSizeEstimator::new(),
        )
    }

    /// Like [`CiEngine::new`] with an explicit estimator configuration.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CiEngine::new`].
    pub fn with_estimator(
        script: CiScript,
        testset: Testset,
        old_predictions: Vec<u32>,
        estimator: &SampleSizeEstimator,
    ) -> Result<Self> {
        let estimate = estimator.estimate(&script)?;
        let want = estimate.total_samples();
        if (testset.len() as u64) < want {
            return Err(EngineError::TestsetTooSmall {
                got: testset.len(),
                want,
            }
            .into());
        }
        let layout = Self::build_layout(&script, &estimate, testset.len())?;
        if old_predictions.len() != testset.len() {
            return Err(EngineError::PredictionLengthMismatch {
                got: old_predictions.len(),
                want: testset.len(),
            }
            .into());
        }
        Ok(CiEngine {
            script,
            estimate,
            layout,
            testset,
            oracle: None,
            sink: Box::new(NullSink),
            old_predictions,
            steps_used: 0,
            era: 0,
            retired: false,
            history: CommitHistory::new(),
        })
    }

    /// Install a labelling oracle for lazy / active labelling.
    #[must_use]
    pub fn with_oracle(mut self, oracle: Box<dyn LabelOracle>) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Install a notification sink (alarm + third-party result channel).
    #[must_use]
    pub fn with_sink(mut self, sink: Box<dyn NotificationSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Partition the pool. Phase ranges use the estimator's sizes for
    /// the early (probe/filter/coarse) phases and extend the final test
    /// range to the whole pool — more samples only tighten the realised
    /// intervals.
    fn build_layout(
        script: &CiScript,
        estimate: &SampleSizeEstimate,
        pool_len: usize,
    ) -> Result<Layout> {
        let to_usize = |v: u64| -> Result<usize> {
            usize::try_from(v).map_err(|_| {
                CiError::Semantic(format!(
                    "required sample count {v} exceeds addressable size"
                ))
            })
        };
        match &estimate.provenance {
            EstimateProvenance::Baseline => Ok(Layout::Single { test: 0..pool_len }),
            EstimateProvenance::Optimized(OptimizedPlan::Hierarchical(plan)) => {
                let shapes: Vec<ClauseShape> = script
                    .condition()
                    .clauses()
                    .iter()
                    .map(classify_clause)
                    .collect();
                let diff_clause = shapes
                    .iter()
                    .position(|s| matches!(s, ClauseShape::DifferenceBound { .. }))
                    .ok_or_else(|| CiError::Semantic("pattern-1 plan without d clause".into()))?;
                let improv_clause = shapes
                    .iter()
                    .position(|s| matches!(s, ClauseShape::AccuracyImprovement { .. }))
                    .ok_or_else(|| {
                        CiError::Semantic("pattern-1 plan without improvement clause".into())
                    })?;
                let f = to_usize(plan.filter.samples)?;
                Ok(Layout::FilterTest {
                    filter: 0..f,
                    test: f..pool_len,
                    diff_clause,
                    improv_clause,
                })
            }
            EstimateProvenance::Optimized(OptimizedPlan::ImplicitVariance(plan)) => {
                let p = to_usize(plan.probe.samples)?;
                Ok(Layout::ProbeTest {
                    probe: 0..p,
                    test_full: p..pool_len,
                    plan: plan.clone(),
                })
            }
            EstimateProvenance::Optimized(OptimizedPlan::CoarseToFine(plan)) => {
                let c = to_usize(plan.coarse.samples)?;
                Ok(Layout::CoarseFine {
                    coarse: 0..c,
                    fine: c..pool_len,
                })
            }
        }
    }

    /// Evaluate one commit. See the module docs for the full lifecycle.
    ///
    /// # Errors
    ///
    /// * [`EngineError::TestsetRetired`] / [`EngineError::BudgetExhausted`]
    ///   when the current era can no longer test commits;
    /// * [`EngineError::PredictionLengthMismatch`] for bad input;
    /// * [`EngineError::LabelUnavailable`] when labels run out;
    /// * [`EngineError::TestsetTooSmall`] when a Pattern-2 probe reveals
    ///   that more labelled data is needed than the pool holds.
    pub fn submit(&mut self, commit: &ModelCommit) -> Result<CommitReceipt> {
        if self.retired {
            return Err(EngineError::TestsetRetired.into());
        }
        if self.steps_used >= self.script.steps() {
            return Err(EngineError::BudgetExhausted {
                steps: self.script.steps(),
            }
            .into());
        }
        let (outcome, estimates) = self.measure(commit)?;
        let passed = self.script.mode().decide(outcome);
        self.steps_used += 1;
        let step = self.steps_used;

        let adaptivity = self.script.adaptivity();
        // Repository acceptance is what the *developer* observes: with
        // `adaptivity: none` every commit lands. The *active* model — the
        // `o` baseline of the condition — is what the integration team
        // deploys, and it only advances when a commit truly passes.
        let accepted = match adaptivity {
            Adaptivity::None => true,
            Adaptivity::Full | Adaptivity::FirstChange => passed,
        };
        let signal = adaptivity.releases_signal().then_some(passed);
        if passed {
            self.old_predictions = commit.predictions.clone();
        }

        let mut alarm = None;
        if adaptivity.retires_on_pass() && passed {
            alarm = Some(AlarmReason::PassedInHybrid);
        } else if self.steps_used >= self.script.steps() {
            alarm = Some(AlarmReason::BudgetExhausted);
        }
        if alarm.is_some() {
            self.retired = true;
        }

        self.sink.notify(&CiEvent::CommitTested {
            commit_id: commit.id.clone(),
            outcome,
            passed,
            step,
        });
        if let Some(reason) = alarm {
            self.sink.notify(&CiEvent::NewTestsetAlarm {
                reason,
                steps_used: self.steps_used,
            });
        }
        self.history.push(HistoryEntry {
            commit_id: commit.id.clone(),
            step,
            era: self.era,
            estimates,
            outcome,
            passed,
            accepted,
        });
        Ok(CommitReceipt {
            commit_id: commit.id.clone(),
            step,
            era: self.era,
            signal,
            accepted,
            outcome,
            passed,
            estimates,
            alarm,
        })
    }

    fn measure(&mut self, commit: &ModelCommit) -> Result<(Tribool, CommitEstimates)> {
        let layout = self.layout.clone();
        let mut measurement = Measurement::new(
            &mut self.testset,
            self.oracle.as_deref_mut(),
            &self.old_predictions,
            &commit.predictions,
        )?;
        let clauses = self.script.condition().clauses();
        let mut est = CommitEstimates::default();
        let outcome = match &layout {
            Layout::Single { test } => {
                let mut verdicts = Vec::with_capacity(clauses.len());
                for clause in clauses {
                    let lhs = measurement.clause_lhs(clause, test.clone())?;
                    record_estimate(&mut est, clause, lhs);
                    verdicts.push(evaluate_clause_at(clause, lhs));
                }
                est.d
                    .get_or_insert_with(|| measurement.difference(test.clone()));
                Tribool::all(verdicts)
            }
            Layout::FilterTest {
                filter,
                test,
                diff_clause,
                improv_clause,
            } => {
                // Filter step: unlabeled d̂; a certain `False` here skips
                // the labelling phase entirely.
                let d_hat = measurement.difference(filter.clone());
                est.d = Some(d_hat);
                let d_verdict = evaluate_clause_at(&clauses[*diff_clause], d_hat);
                if d_verdict == Tribool::False {
                    Tribool::False
                } else {
                    let lhs = measurement.clause_lhs(&clauses[*improv_clause], test.clone())?;
                    record_estimate(&mut est, &clauses[*improv_clause], lhs);
                    d_verdict & evaluate_clause_at(&clauses[*improv_clause], lhs)
                }
            }
            Layout::ProbeTest {
                probe,
                test_full,
                plan,
            } => {
                // With a known a-priori variance bound there is no probe
                // phase and the whole pool serves the test; otherwise the
                // labelled prefix is sized by the observed difference.
                // Either way the engine's ±ε interval semantics are
                // two-sided.
                let needed = if probe.is_empty() {
                    est.d = Some(measurement.difference(test_full.clone()));
                    test_full.len() as u64
                } else {
                    let d_hat = measurement.difference(probe.clone());
                    est.d = Some(d_hat);
                    implicit_variance_test_phase(plan, d_hat, easeml_bounds::Tail::TwoSided)?
                        .samples
                };
                let needed_u64 = needed;
                let needed = usize::try_from(needed).unwrap_or(usize::MAX);
                if needed > test_full.len() {
                    return Err(EngineError::TestsetTooSmall {
                        got: test_full.len(),
                        want: needed_u64,
                    }
                    .into());
                }
                let range = test_full.start..test_full.start + needed;
                let clause = &clauses[0];
                let lhs = measurement.clause_lhs(clause, range)?;
                record_estimate(&mut est, clause, lhs);
                evaluate_clause_at(clause, lhs)
            }
            Layout::CoarseFine { coarse, fine } => {
                let clause = &clauses[0];
                // The coarse pass only justifies the fine pass's variance
                // bound; the decision rests on the fine estimate.
                let _coarse_n = measurement.new_accuracy(coarse.clone())?;
                let fine_n = measurement.new_accuracy(fine.clone())?;
                est.n = Some(fine_n);
                evaluate_clause_at(clause, fine_n)
            }
        };
        est.labels_requested = measurement.labels_requested();
        Ok((outcome, est))
    }

    /// Install a fresh testset (with the accepted model's predictions on
    /// it) and release the old one. Resets the step budget and starts a
    /// new era.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::TestsetTooSmall`] or
    /// [`EngineError::PredictionLengthMismatch`] under the same
    /// conditions as [`CiEngine::new`].
    pub fn install_testset(
        &mut self,
        testset: Testset,
        old_predictions: Vec<u32>,
    ) -> Result<Testset> {
        let want = self.estimate.total_samples();
        if (testset.len() as u64) < want {
            return Err(EngineError::TestsetTooSmall {
                got: testset.len(),
                want,
            }
            .into());
        }
        if old_predictions.len() != testset.len() {
            return Err(EngineError::PredictionLengthMismatch {
                got: old_predictions.len(),
                want: testset.len(),
            }
            .into());
        }
        // Phase ranges depend on the pool size; rebuild for the new era.
        self.layout = Self::build_layout(&self.script, &self.estimate, testset.len())?;
        let released = std::mem::replace(&mut self.testset, testset);
        self.sink.notify(&CiEvent::TestsetReleased {
            size: released.len(),
        });
        self.sink.notify(&CiEvent::TestsetInstalled {
            size: self.testset.len(),
        });
        self.old_predictions = old_predictions;
        self.steps_used = 0;
        self.retired = false;
        self.era += 1;
        Ok(released)
    }

    /// The script configuring this engine.
    #[must_use]
    pub fn script(&self) -> &CiScript {
        &self.script
    }

    /// The sample-size estimate the current testset must satisfy.
    #[must_use]
    pub fn required(&self) -> &SampleSizeEstimate {
        &self.estimate
    }

    /// Steps consumed in the current era.
    #[must_use]
    pub fn steps_used(&self) -> u32 {
        self.steps_used
    }

    /// Steps remaining before the budget alarm.
    #[must_use]
    pub fn steps_remaining(&self) -> u32 {
        if self.retired {
            0
        } else {
            self.script.steps() - self.steps_used
        }
    }

    /// Whether the current testset is retired (alarm fired).
    #[must_use]
    pub fn is_retired(&self) -> bool {
        self.retired
    }

    /// Current testset era (0-based; increments per fresh testset).
    #[must_use]
    pub fn era(&self) -> u32 {
        self.era
    }

    /// The evaluation history.
    #[must_use]
    pub fn history(&self) -> &CommitHistory {
        &self.history
    }

    /// Size of the current testset pool.
    #[must_use]
    pub fn testset_len(&self) -> usize {
        self.testset.len()
    }

    /// Labels known in the current testset.
    #[must_use]
    pub fn labeled_count(&self) -> usize {
        self.testset.labeled_count()
    }

    /// The currently accepted model's predictions.
    #[must_use]
    pub fn old_predictions(&self) -> &[u32] {
        &self.old_predictions
    }
}

/// Record the measured LHS into the per-variable estimate slots when the
/// clause is simple enough to attribute.
fn record_estimate(est: &mut CommitEstimates, clause: &crate::dsl::Clause, lhs: f64) {
    use crate::dsl::{LinearForm, Var};
    let form = LinearForm::from_expr(&clause.expr);
    let a_n = form.coefficient(Var::N);
    let a_o = form.coefficient(Var::O);
    let a_d = form.coefficient(Var::D);
    if a_n == 1.0 && a_o == 0.0 && a_d == 0.0 {
        est.n = Some(lhs);
    } else if a_n == 0.0 && a_o == 1.0 && a_d == 0.0 {
        est.o = Some(lhs);
    } else if a_n == 0.0 && a_o == 0.0 && a_d == 1.0 {
        est.d = Some(lhs);
    } else if a_n == 1.0 && a_o == -1.0 && a_d == 0.0 {
        est.diff = Some(lhs);
    }
}

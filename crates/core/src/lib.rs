//! Core of the [ease.ml/ci](https://arxiv.org/abs/1903.00278)
//! reproduction: a continuous-integration system for machine-learning
//! models with rigorous `(ε, δ)` guarantees.
//!
//! # Overview
//!
//! A user writes a CI script whose `ml:` section declares a test
//! condition over three random variables — `n` (new-model accuracy),
//! `o` (old-model accuracy), `d` (fraction of changed predictions) —
//! plus a reliability requirement, a decision [`Mode`]
//! (fp-free / fn-free), an adaptivity policy, and a step budget:
//!
//! ```text
//! ml:
//!   - script     : ./test_model.py
//!   - condition  : n - o > 0.02 +/- 0.01
//!   - reliability: 0.9999
//!   - mode       : fp-free
//!   - adaptivity : full
//!   - steps      : 32
//! ```
//!
//! The crate provides the paper's two system utilities plus the engine:
//!
//! * [`SampleSizeEstimator`] — how many test examples the user must
//!   provide (§3 baseline + §4 optimizations);
//! * the new-testset alarm inside [`CiEngine`] — when the testset's
//!   statistical power is spent;
//! * [`CiEngine`] — evaluates commits over confidence intervals with
//!   three-valued logic and manages adaptivity state.
//!
//! # Quick start
//!
//! ```
//! use easeml_ci_core::{CiEngine, CiScript, ModelCommit, Testset};
//!
//! # fn main() -> Result<(), easeml_ci_core::CiError> {
//! let script = CiScript::builder()
//!     .condition_str("n > 0.6 +/- 0.2")?
//!     .reliability(0.99)
//!     .steps(4)
//!     .build()?;
//!
//! // The sample-size estimator says how many labels the testset needs.
//! let required = easeml_ci_core::SampleSizeEstimator::new().estimate(&script)?;
//!
//! // Build a (toy) testset of that size and run a commit through it.
//! let n = required.total_samples() as usize;
//! let labels = vec![1u32; n];
//! let old_predictions = vec![0u32; n];
//! let mut engine =
//!     CiEngine::new(script, Testset::fully_labeled(labels), old_predictions)?;
//! let receipt = engine.submit(&ModelCommit::new("abc123", vec![1u32; n]))?;
//! assert!(receipt.passed);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cache;
pub mod dsl;
pub mod engine;
mod error;
pub mod estimator;
mod eval;
pub mod extensions;
mod interval;
mod logic;
mod practicality;
pub mod script;

pub use cache::{
    BoundKind, BoundsCache, CachePersistError, CachePolicy, CacheStats, PlanCache, PlanFingerprint,
};
pub use engine::{
    clause_label_demand, formula_label_demand, validate_metric_formula, AlarmReason, CiEngine,
    CiEvent, ClassBitmaps, CollectingSink, CommitEstimates, CommitHistory, CommitReceipt,
    HistoryEntry, LabelDemand, LabelOracle, MailboxSink, MeasuredCounts, Measurement, ModelCommit,
    NotificationSink, NullSink, PerClassCounts, Testset, VecOracle,
};
pub use error::{CiError, EngineError, ParseError, Result, ScriptError};
pub use estimator::{
    plan_fingerprint, EstimateProvenance, EstimatorConfig, EstimatorStrategy, SampleSizeEstimate,
    SampleSizeEstimator,
};
pub use eval::{
    clause_interval, decide, evaluate_clause, evaluate_clause_at, evaluate_formula,
    VariableEstimates,
};
pub use interval::Interval;
pub use logic::{Mode, ParseModeError, Tribool};
pub use practicality::{effort, CostModel, EffortReport, Practicality};
pub use script::{CiScript, CiScriptBuilder};

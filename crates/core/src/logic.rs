//! Three-valued logic and the fp-free / fn-free decision modes (§3.5, A.2).
//!
//! Evaluating a clause against a confidence interval produces one of
//! `True`, `False`, or `Unknown` (the interval straddles the threshold).
//! The script's `mode` decides how `Unknown` maps onto the final binary
//! pass/fail signal:
//!
//! * `fp-free`: `Unknown → False` — whenever the system says *pass*, the
//!   true condition really holds (no false positives, w.p. `1 − δ`);
//! * `fn-free`: `Unknown → True` — whenever the system says *fail*, the
//!   true condition really fails (no false negatives).

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};
use std::str::FromStr;

/// Kleene three-valued truth value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tribool {
    /// The condition certainly holds (up to the `δ` failure budget).
    True,
    /// The condition certainly fails.
    False,
    /// The confidence interval straddles the threshold: undecidable at
    /// this tolerance.
    Unknown,
}

impl Tribool {
    /// Build from a definite boolean.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Tribool::True
        } else {
            Tribool::False
        }
    }

    /// Whether the value is decided (not `Unknown`).
    #[must_use]
    pub fn is_known(self) -> bool {
        !matches!(self, Tribool::Unknown)
    }

    /// Kleene conjunction over an iterator; `True` for an empty input.
    pub fn all<I: IntoIterator<Item = Tribool>>(iter: I) -> Tribool {
        iter.into_iter().fold(Tribool::True, |acc, v| acc & v)
    }

    /// Kleene disjunction over an iterator; `False` for an empty input.
    pub fn any<I: IntoIterator<Item = Tribool>>(iter: I) -> Tribool {
        iter.into_iter().fold(Tribool::False, |acc, v| acc | v)
    }
}

impl From<bool> for Tribool {
    fn from(b: bool) -> Self {
        Tribool::from_bool(b)
    }
}

impl BitAnd for Tribool {
    type Output = Tribool;

    fn bitand(self, rhs: Tribool) -> Tribool {
        use Tribool::*;
        match (self, rhs) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }
}

impl BitOr for Tribool {
    type Output = Tribool;

    fn bitor(self, rhs: Tribool) -> Tribool {
        use Tribool::*;
        match (self, rhs) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }
}

impl Not for Tribool {
    type Output = Tribool;

    fn not(self) -> Tribool {
        use Tribool::*;
        match self {
            True => False,
            False => True,
            Unknown => Unknown,
        }
    }
}

impl fmt::Display for Tribool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tribool::True => write!(f, "True"),
            Tribool::False => write!(f, "False"),
            Tribool::Unknown => write!(f, "Unknown"),
        }
    }
}

/// How `Unknown` collapses into the binary pass/fail signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// False-positive free: a reported *pass* is always a true pass.
    #[default]
    FpFree,
    /// False-negative free: a reported *fail* is always a true fail.
    FnFree,
}

impl Mode {
    /// Collapse a three-valued outcome into pass (`true`) / fail
    /// (`false`) according to the mode.
    ///
    /// # Examples
    ///
    /// ```
    /// use easeml_ci_core::{Mode, Tribool};
    ///
    /// assert!(!Mode::FpFree.decide(Tribool::Unknown)); // conservative reject
    /// assert!(Mode::FnFree.decide(Tribool::Unknown));  // conservative accept
    /// assert!(Mode::FpFree.decide(Tribool::True));
    /// assert!(!Mode::FnFree.decide(Tribool::False));
    /// ```
    #[must_use]
    pub fn decide(self, value: Tribool) -> bool {
        match (self, value) {
            (_, Tribool::True) => true,
            (_, Tribool::False) => false,
            (Mode::FpFree, Tribool::Unknown) => false,
            (Mode::FnFree, Tribool::Unknown) => true,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::FpFree => write!(f, "fp-free"),
            Mode::FnFree => write!(f, "fn-free"),
        }
    }
}

/// Error produced when parsing a [`Mode`] from a script keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModeError {
    input: String,
}

impl fmt::Display for ParseModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown mode `{}` (expected `fp-free` or `fn-free`)",
            self.input
        )
    }
}

impl std::error::Error for ParseModeError {}

impl FromStr for Mode {
    type Err = ParseModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "fp-free" | "fpfree" | "fp_free" => Ok(Mode::FpFree),
            "fn-free" | "fnfree" | "fn_free" => Ok(Mode::FnFree),
            other => Err(ParseModeError {
                input: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Tribool::*;

    #[test]
    fn kleene_and_truth_table() {
        assert_eq!(True & True, True);
        assert_eq!(True & False, False);
        assert_eq!(False & False, False);
        assert_eq!(True & Unknown, Unknown);
        assert_eq!(Unknown & Unknown, Unknown);
        assert_eq!(False & Unknown, False); // short-circuit dominance
    }

    #[test]
    fn kleene_or_truth_table() {
        assert_eq!(True | Unknown, True);
        assert_eq!(False | Unknown, Unknown);
        assert_eq!(False | False, False);
        assert_eq!(Unknown | Unknown, Unknown);
    }

    #[test]
    fn negation() {
        assert_eq!(!True, False);
        assert_eq!(!False, True);
        assert_eq!(!Unknown, Unknown);
    }

    #[test]
    fn de_morgan_holds() {
        for a in [True, False, Unknown] {
            for b in [True, False, Unknown] {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn fold_helpers() {
        assert_eq!(Tribool::all([True, True, True]), True);
        assert_eq!(Tribool::all([True, Unknown]), Unknown);
        assert_eq!(Tribool::all([Unknown, False]), False);
        assert_eq!(Tribool::all(std::iter::empty()), True);
        assert_eq!(Tribool::any([False, Unknown]), Unknown);
        assert_eq!(Tribool::any([False, True]), True);
        assert_eq!(Tribool::any(std::iter::empty()), False);
    }

    #[test]
    fn mode_decisions() {
        assert!(Mode::FpFree.decide(True));
        assert!(!Mode::FpFree.decide(False));
        assert!(!Mode::FpFree.decide(Unknown));
        assert!(Mode::FnFree.decide(True));
        assert!(!Mode::FnFree.decide(False));
        assert!(Mode::FnFree.decide(Unknown));
    }

    #[test]
    fn mode_parsing() {
        assert_eq!("fp-free".parse::<Mode>().unwrap(), Mode::FpFree);
        assert_eq!("fn-free".parse::<Mode>().unwrap(), Mode::FnFree);
        assert!("fp".parse::<Mode>().is_err());
        assert_eq!(Mode::default(), Mode::FpFree);
        for m in [Mode::FpFree, Mode::FnFree] {
            assert_eq!(m.to_string().parse::<Mode>().unwrap(), m);
        }
    }

    #[test]
    fn from_bool() {
        assert_eq!(Tribool::from_bool(true), True);
        assert_eq!(Tribool::from(false), False);
        assert!(True.is_known() && False.is_known() && !Unknown.is_known());
    }
}

//! Recursive-descent parser for the condition language.
//!
//! Accepts a superset of the paper's grammar (parenthesised
//! sub-expressions, constants on either side of `*`) and then enforces the
//! grammar's intent through semantic validation: expressions must be
//! *linear* in the variables with no constant offset.

use super::ast::{Clause, CmpOp, Expr, Formula};
use super::token::{tokenize, Spanned, Token};
use crate::error::ParseError;

/// Parse a full formula, e.g.
/// `n - o > 0.02 +/- 0.01 /\ d < 0.1 +/- 0.01`.
///
/// # Errors
///
/// Returns a [`ParseError`] for lexical errors, grammar violations,
/// non-linear expressions (`n * o`), bare constant terms (`n + 0.5`),
/// or out-of-range thresholds/tolerances.
///
/// # Examples
///
/// ```
/// use easeml_ci_core::dsl::parse_formula;
///
/// # fn main() -> Result<(), easeml_ci_core::CiError> {
/// let f = parse_formula("n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01")?;
/// assert_eq!(f.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_formula(src: &str) -> Result<Formula, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser {
        tokens: &tokens,
        pos: 0,
        src_len: src.len(),
    };
    let formula = parser.formula()?;
    parser.expect_end()?;
    Ok(formula)
}

/// Parse a single clause, e.g. `n > 0.8 +/- 0.05`.
///
/// # Errors
///
/// Same conditions as [`parse_formula`].
pub fn parse_clause(src: &str) -> Result<Clause, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser {
        tokens: &tokens,
        pos: 0,
        src_len: src.len(),
    };
    let clause = parser.clause()?;
    parser.expect_end()?;
    Ok(clause)
}

/// Parse an expression, e.g. `n - 1.1 * o`.
///
/// # Errors
///
/// Same conditions as [`parse_formula`].
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser {
        tokens: &tokens,
        pos: 0,
        src_len: src.len(),
    };
    let node = parser.expr()?;
    parser.expect_end()?;
    let expr = node.into_linear_expr()?;
    Ok(expr)
}

/// Intermediate parse node: either a constant or a (linear) expression
/// with an optional accumulated constant offset. Linearity is enforced
/// when the node is lowered into an [`Expr`].
#[derive(Debug, Clone)]
enum Node {
    Const(f64, usize),
    Linear(Expr, usize),
}

impl Node {
    fn into_linear_expr(self) -> Result<Expr, ParseError> {
        match self {
            Node::Linear(e, _) => Ok(e),
            Node::Const(c, at) => Err(ParseError::new(
                at,
                format!(
                    "constant term `{c}` is not allowed inside an expression; \
                     move constants to the right-hand side of the comparison"
                ),
            )),
        }
    }
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    pos: usize,
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn here(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.src_len, |s| s.offset)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos).map(|s| &s.token);
        self.pos += 1;
        t
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(ParseError::new(
                self.here(),
                format!(
                    "unexpected trailing input `{}`",
                    self.tokens[self.pos].token
                ),
            ))
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut clauses = vec![self.clause()?];
        while matches!(self.peek(), Some(Token::And)) {
            self.bump();
            clauses.push(self.clause()?);
        }
        Ok(Formula::new(clauses))
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        let lhs_at = self.here();
        let lhs = self.expr()?;
        let expr = match lhs {
            Node::Linear(e, _) => e,
            Node::Const(c, _) => {
                return Err(ParseError::new(
                    lhs_at,
                    format!("left-hand side must reference a variable, got constant `{c}`"),
                ))
            }
        };
        let cmp = match self.bump() {
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Lt) => CmpOp::Lt,
            other => {
                return Err(ParseError::new(
                    self.here().saturating_sub(1),
                    format!(
                        "expected comparison `>` or `<`, got {}",
                        other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                    ),
                ))
            }
        };
        let threshold = self.signed_number("threshold")?;
        match self.bump() {
            Some(Token::PlusMinus) => {}
            other => {
                return Err(ParseError::new(
                    self.here().saturating_sub(1),
                    format!(
                        "expected `+/-` tolerance, got {}",
                        other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                    ),
                ))
            }
        }
        let tol_at = self.here();
        let tolerance = self.signed_number("tolerance")?;
        // NaN-rejecting guard: `!(x > 0.0)` is also true for NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(tolerance > 0.0) || !tolerance.is_finite() {
            return Err(ParseError::new(
                tol_at,
                format!("tolerance must be a positive number, got `{tolerance}`"),
            ));
        }
        Ok(Clause::new(expr, cmp, threshold, tolerance))
    }

    fn signed_number(&mut self, what: &str) -> Result<f64, ParseError> {
        let negative = if matches!(self.peek(), Some(Token::Minus)) {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            Some(Token::Number(x)) => Ok(if negative { -x } else { *x }),
            other => Err(ParseError::new(
                self.here().saturating_sub(1),
                format!(
                    "expected {what} constant, got {}",
                    other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                ),
            )),
        }
    }

    fn expect_lparen(&mut self, metric: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Token::LParen) => Ok(()),
            other => Err(ParseError::new(
                self.here().saturating_sub(1),
                format!(
                    "expected `(` after `{metric}`, got {}",
                    other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                ),
            )),
        }
    }

    fn expect_rparen(&mut self, metric: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Token::RParen) => Ok(()),
            other => Err(ParseError::new(
                self.here().saturating_sub(1),
                format!(
                    "expected `)` closing `{metric}(...)`, got {}",
                    other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                ),
            )),
        }
    }

    /// Parse the model argument of a metric: `n` (true) or `o` (false).
    fn metric_model(&mut self, metric: &str) -> Result<bool, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Token::Var('n')) => Ok(true),
            Some(Token::Var('o')) => Ok(false),
            other => Err(ParseError::new(
                at,
                format!(
                    "`{metric}(...)` takes a model argument `n` or `o`, got {}",
                    other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                ),
            )),
        }
    }

    /// expr := term (('+' | '-') term)*
    fn expr(&mut self) -> Result<Node, ParseError> {
        let mut acc = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => '+',
                Some(Token::Minus) => '-',
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            acc = combine_additive(acc, rhs, op)?;
        }
        Ok(acc)
    }

    /// term := factor ('*' factor)*
    fn term(&mut self) -> Result<Node, ParseError> {
        let mut acc = self.factor()?;
        while matches!(self.peek(), Some(Token::Star)) {
            self.bump();
            let rhs = self.factor()?;
            acc = combine_multiplicative(acc, rhs)?;
        }
        Ok(acc)
    }

    /// factor := var | metric | number | '-' factor | '(' expr ')'
    ///
    /// metric := 'f1' '(' model ')' | 'topk' '(' model ',' k ')'
    /// model  := 'n' | 'o'
    fn factor(&mut self) -> Result<Node, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Token::Var(c)) => {
                let v = match c {
                    'n' => super::ast::Var::N,
                    'o' => super::ast::Var::O,
                    _ => super::ast::Var::D,
                };
                Ok(Node::Linear(Expr::Var(v), at))
            }
            Some(Token::F1) => {
                self.expect_lparen("f1")?;
                let new_model = self.metric_model("f1")?;
                self.expect_rparen("f1")?;
                let v = if new_model {
                    super::ast::Var::F1N
                } else {
                    super::ast::Var::F1O
                };
                Ok(Node::Linear(Expr::Var(v), at))
            }
            Some(Token::TopK) => {
                self.expect_lparen("topk")?;
                let new_model = self.metric_model("topk")?;
                match self.bump() {
                    Some(Token::Comma) => {}
                    other => {
                        return Err(ParseError::new(
                            self.here().saturating_sub(1),
                            format!(
                                "expected `,` between the model and k in `topk(...)`, got {}",
                                other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                            ),
                        ))
                    }
                }
                let k_at = self.here();
                let k = match self.bump() {
                    Some(Token::Number(x)) => {
                        if x.fract() != 0.0 || *x < 1.0 || *x > f64::from(u32::MAX) {
                            return Err(ParseError::new(
                                k_at,
                                format!("topk class count must be a positive integer, got `{x}`"),
                            ));
                        }
                        {
                            // Exactness checked above: fract() == 0 and in range.
                            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                            let k = *x as u32;
                            k
                        }
                    }
                    other => {
                        return Err(ParseError::new(
                            k_at,
                            format!(
                                "expected topk class count, got {}",
                                other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                            ),
                        ))
                    }
                };
                self.expect_rparen("topk")?;
                let v = if new_model {
                    super::ast::Var::TopKN(k)
                } else {
                    super::ast::Var::TopKO(k)
                };
                Ok(Node::Linear(Expr::Var(v), at))
            }
            Some(Token::Number(x)) => Ok(Node::Const(*x, at)),
            Some(Token::Minus) => {
                let inner = self.factor()?;
                match inner {
                    Node::Const(c, _) => Ok(Node::Const(-c, at)),
                    Node::Linear(e, _) => Ok(Node::Linear(Expr::scale(-1.0, e), at)),
                }
            }
            Some(Token::LParen) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ParseError::new(self.here(), "expected `)`")),
                }
            }
            other => Err(ParseError::new(
                at,
                format!(
                    "expected a variable, number, or `(`, got {}",
                    other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                ),
            )),
        }
    }
}

fn combine_additive(lhs: Node, rhs: Node, op: char) -> Result<Node, ParseError> {
    // Constants may not appear as additive terms (grammar: EXP has no
    // constant leaves). Reject early with a targeted message.
    let reject = |c: f64, at: usize| {
        Err(ParseError::new(
            at,
            format!(
                "constant term `{c}` cannot be added to an expression; \
                 fold it into the right-hand side of the comparison"
            ),
        ))
    };
    match (lhs, rhs) {
        (Node::Const(c, at), _) => reject(c, at),
        (_, Node::Const(c, at)) => reject(c, at),
        (Node::Linear(a, at), Node::Linear(b, _)) => {
            let expr = if op == '+' {
                Expr::add(a, b)
            } else {
                Expr::sub(a, b)
            };
            Ok(Node::Linear(expr, at))
        }
    }
}

fn combine_multiplicative(lhs: Node, rhs: Node) -> Result<Node, ParseError> {
    match (lhs, rhs) {
        (Node::Const(a, at), Node::Const(b, _)) => Ok(Node::Const(a * b, at)),
        (Node::Const(c, at), Node::Linear(e, _)) | (Node::Linear(e, _), Node::Const(c, at)) => {
            Ok(Node::Linear(Expr::scale(c, e), at))
        }
        (Node::Linear(_, _), Node::Linear(_, at)) => Err(ParseError::new(
            at,
            "product of two variable expressions is not linear; the condition \
             grammar only allows multiplication by a constant",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::ast::Var;

    #[test]
    fn parses_paper_formula() {
        let f = parse_formula("n - 1.1 * o > 0.01 +/- 0.01 /\\ d < 0.1 +/- 0.01").unwrap();
        assert_eq!(f.len(), 2);
        let c0 = &f.clauses()[0];
        assert_eq!(c0.cmp, CmpOp::Gt);
        assert_eq!(c0.threshold, 0.01);
        assert_eq!(c0.tolerance, 0.01);
        assert_eq!(c0.expr.to_string(), "n - 1.1 * o");
        let c1 = &f.clauses()[1];
        assert_eq!(c1.cmp, CmpOp::Lt);
        assert_eq!(c1.expr, Expr::Var(Var::D));
    }

    #[test]
    fn parses_single_variable_conditions() {
        let c = parse_clause("n > 0.8 +/- 0.05").unwrap();
        assert_eq!(c.expr, Expr::Var(Var::N));
        assert_eq!(c.threshold, 0.8);
        assert_eq!(c.tolerance, 0.05);
    }

    #[test]
    fn constant_on_either_side_of_star() {
        let a = parse_expr("1.1 * o").unwrap();
        let b = parse_expr("o * 1.1").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, Expr::scale(1.1, Expr::var(Var::O)));
    }

    #[test]
    fn nested_parens_and_scaling() {
        let e = parse_expr("2 * (n - o)").unwrap();
        assert_eq!(e.to_string(), "2 * (n - o)");
        let e = parse_expr("0.5 * (n - o) + d").unwrap();
        assert_eq!(e.to_string(), "0.5 * (n - o) + d");
    }

    #[test]
    fn unary_minus() {
        let e = parse_expr("-o + n").unwrap();
        assert_eq!(
            e,
            Expr::add(Expr::scale(-1.0, Expr::var(Var::O)), Expr::var(Var::N))
        );
        let c = parse_clause("n > -0.1 +/- 0.05").unwrap();
        assert_eq!(c.threshold, -0.1);
    }

    #[test]
    fn rejects_nonlinear_products() {
        let err = parse_expr("n * o").unwrap_err();
        assert!(err.to_string().contains("not linear"));
    }

    #[test]
    fn rejects_constant_terms() {
        assert!(parse_expr("n + 0.5").is_err());
        assert!(parse_expr("0.5 - n").is_err());
        assert!(parse_clause("0.5 > 0.1 +/- 0.01").is_err());
    }

    #[test]
    fn rejects_missing_tolerance() {
        let err = parse_clause("n > 0.8").unwrap_err();
        assert!(err.to_string().contains("+/-"), "{err}");
    }

    #[test]
    fn rejects_nonpositive_tolerance() {
        assert!(parse_clause("n > 0.8 +/- 0").is_err());
        assert!(parse_clause("n > 0.8 +/- -0.01").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_clause("n > 0.8 +/- 0.05 0.1").is_err());
        assert!(parse_formula("n > 0.8 +/- 0.05 /\\").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_formula("").is_err());
        assert!(parse_expr("   ").is_err());
    }

    #[test]
    fn parses_metric_variables() {
        let c = parse_clause("f1(n) - f1(o) > -0.02 +/- 0.01").unwrap();
        assert_eq!(c.expr, Expr::sub(Expr::var(Var::F1N), Expr::var(Var::F1O)));
        assert_eq!(c.threshold, -0.02);
        let c = parse_clause("topk(n, 5) - topk(o, 5) > -0.02 +/- 0.01").unwrap();
        assert_eq!(
            c.expr,
            Expr::sub(Expr::var(Var::TopKN(5)), Expr::var(Var::TopKO(5)))
        );
        // Metrics scale and mix with plain variables like any other term.
        let e = parse_expr("0.5 * f1(n) + d").unwrap();
        assert_eq!(e.to_string(), "0.5 * f1(n) + d");
    }

    #[test]
    fn rejects_malformed_metric_syntax() {
        let err = parse_clause("f1(d) > 0.5 +/- 0.1").unwrap_err();
        assert!(err.to_string().contains("model argument"), "{err}");
        let err = parse_clause("f1 n > 0.5 +/- 0.1").unwrap_err();
        assert!(err.to_string().contains("expected `(`"), "{err}");
        let err = parse_clause("topk(n) > 0.5 +/- 0.1").unwrap_err();
        assert!(err.to_string().contains("expected `,`"), "{err}");
        let err = parse_clause("topk(n, 2.5) > 0.5 +/- 0.1").unwrap_err();
        assert!(err.to_string().contains("positive integer"), "{err}");
        let err = parse_clause("topk(n, 0) > 0.5 +/- 0.1").unwrap_err();
        assert!(err.to_string().contains("positive integer"), "{err}");
        let err = parse_clause("topk(n, o) > 0.5 +/- 0.1").unwrap_err();
        assert!(err.to_string().contains("class count"), "{err}");
        assert!(parse_clause("f1(n > 0.5 +/- 0.1").is_err());
    }

    #[test]
    fn rejects_metric_by_metric_products() {
        let err = parse_expr("f1(n) * f1(o)").unwrap_err();
        assert!(err.to_string().contains("not linear"));
    }

    #[test]
    fn display_parse_round_trip() {
        let sources = [
            "n > 0.8 +/- 0.05",
            "n - o > 0.02 +/- 0.01",
            "d < 0.1 +/- 0.01",
            "n - 1.1 * o > 0.01 +/- 0.01 /\\ d < 0.1 +/- 0.01",
            "n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01 /\\ n > 0.9 +/- 0.02",
            "f1(n) - f1(o) > -0.02 +/- 0.01",
            "topk(n, 5) - topk(o, 5) > -0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01",
            "f1(n) > 0.8 +/- 0.05 /\\ topk(n, 3) - topk(o, 3) > 0 +/- 0.02",
        ];
        for src in sources {
            let f = parse_formula(src).unwrap();
            let printed = f.to_string();
            let reparsed = parse_formula(&printed).unwrap();
            assert_eq!(f, reparsed, "round trip failed for `{src}` -> `{printed}`");
        }
    }
}

//! Abstract syntax tree for the condition language (Appendix A.1).
//!
//! ```text
//! c    :- floating point constant
//! k    :- positive integer constant
//! v    :- n | o | d | f1(n) | f1(o) | topk(n, k) | topk(o, k)
//! op1  :- + | -
//! op2  :- *
//! EXP  :- v | v op1 EXP | EXP op2 c
//! cmp  :- > | <
//! C    :- EXP cmp c +/- c
//! F    :- C | C /\ F
//! ```
//!
//! The metric-qualified variables (`f1(...)`, `topk(...)`) are the §2.2
//! extension point: they denote bounded-difference statistics of the
//! named model (new or old) rather than plain 0/1-loss accuracies, and
//! the estimator routes them to McDiarmid leaves instead of
//! Hoeffding/exact-binomial ones.

use std::fmt;

/// A random variable a condition may reference.
///
/// The three plain variables (`n`, `o`, `d`) are the paper's §3 grammar;
/// each is a mean of i.i.d. `[0, 1]` (in fact Bernoulli) per-sample
/// scores. The metric-qualified variables are non-binomial statistics of
/// the same prediction vectors: they still live in `[0, 1]` but are not
/// sample means, so tail bounds come from McDiarmid's bounded-difference
/// inequality rather than Hoeffding / exact binomial inversion.
///
/// The derived `Ord` (declaration order) is the canonical variable order
/// used by [`Expr::variables`] and the estimator's wire codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Var {
    /// `n` — accuracy of the newly committed model.
    N,
    /// `o` — accuracy of the old (currently accepted) model.
    O,
    /// `d` — fraction of test points whose prediction changed.
    D,
    /// `f1(n)` — binary F1 score of the new model (positive class 1).
    F1N,
    /// `f1(o)` — binary F1 score of the old model (positive class 1).
    F1O,
    /// `topk(n, k)` — accuracy of the new model restricted to test points
    /// whose true label is among the `k` most frequent testset classes.
    TopKN(u32),
    /// `topk(o, k)` — the same restriction for the old model.
    TopKO(u32),
}

impl Var {
    /// The three *plain* (binomial) variables, in canonical order.
    ///
    /// Metric-qualified variables are parameterized (`topk` carries its
    /// `k`) and therefore not enumerable; code that must handle every
    /// variable kind should match exhaustively instead of iterating this.
    pub const ALL: [Var; 3] = [Var::N, Var::O, Var::D];

    /// Dynamic range of the variable: every statistic lives in `[0, 1]`.
    #[must_use]
    pub fn range(self) -> f64 {
        1.0
    }

    /// Whether measuring this variable requires ground-truth labels.
    ///
    /// Accuracies (`n`, `o`) and all metric statistics need labels; only
    /// the prediction difference `d` can be measured on unlabeled data
    /// (Technical Observation 2, §4).
    #[must_use]
    pub fn needs_labels(self) -> bool {
        !matches!(self, Var::D)
    }

    /// Whether this is a metric-qualified (non-binomial) variable.
    ///
    /// Metric variables are not sample means, so the estimator must use
    /// McDiarmid leaves for them and measurement must derive per-class
    /// confusion counts rather than scalar correct-counts.
    #[must_use]
    pub fn is_metric(self) -> bool {
        matches!(self, Var::F1N | Var::F1O | Var::TopKN(_) | Var::TopKO(_))
    }

    /// The `k` of a `topk` variable, if this is one.
    #[must_use]
    pub fn topk_k(self) -> Option<u32> {
        match self {
            Var::TopKN(k) | Var::TopKO(k) => Some(k),
            _ => None,
        }
    }

    /// The compact wire token used by the estimator's leaf codec.
    ///
    /// Plain variables keep their single source letter; metric variables
    /// get short alphanumeric tokens (`f1n`, `f1o`, `tkn<k>`, `tko<k>`)
    /// that never collide with the plain letters.
    #[must_use]
    pub fn token(self) -> String {
        match self {
            Var::N => "n".to_string(),
            Var::O => "o".to_string(),
            Var::D => "d".to_string(),
            Var::F1N => "f1n".to_string(),
            Var::F1O => "f1o".to_string(),
            Var::TopKN(k) => format!("tkn{k}"),
            Var::TopKO(k) => format!("tko{k}"),
        }
    }
}

impl fmt::Display for Var {
    /// Source syntax, so expression `Display` round-trips through the
    /// parser: `n`, `o`, `d`, `f1(n)`, `f1(o)`, `topk(n, 5)`, ...
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::N => write!(f, "n"),
            Var::O => write!(f, "o"),
            Var::D => write!(f, "d"),
            Var::F1N => write!(f, "f1(n)"),
            Var::F1O => write!(f, "f1(o)"),
            Var::TopKN(k) => write!(f, "topk(n, {k})"),
            Var::TopKO(k) => write!(f, "topk(o, {k})"),
        }
    }
}

/// An arithmetic expression over the variables.
///
/// The surface grammar is linear by construction: expressions combine
/// variables with `+`/`-` and scale by constants with `*`. The parser
/// additionally guarantees (and [`crate::dsl::LinearForm`] re-checks) that
/// no variable-by-variable products or stray constant terms appear.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A bare variable.
    Var(Var),
    /// A constant multiple `c * e`.
    Scale(f64, Box<Expr>),
    /// Sum `e1 + e2`.
    Add(Box<Expr>, Box<Expr>),
    /// Difference `e1 - e2`.
    Sub(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand constructor for a variable leaf.
    #[must_use]
    pub fn var(v: Var) -> Expr {
        Expr::Var(v)
    }

    /// Shorthand constructor for `c * e`.
    #[must_use]
    pub fn scale(c: f64, e: Expr) -> Expr {
        Expr::Scale(c, Box::new(e))
    }

    /// Shorthand constructor for `a + b`.
    ///
    /// A static builder (`Expr::add(a, b)`), deliberately not the
    /// `std::ops::Add` trait: expressions are AST nodes, not numbers.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Shorthand constructor for `a - b`.
    ///
    /// A static builder, deliberately not the `std::ops::Sub` trait.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Number of leaf (variable) occurrences.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        match self {
            Expr::Var(_) => 1,
            Expr::Scale(_, e) => e.leaf_count(),
            Expr::Add(a, b) | Expr::Sub(a, b) => a.leaf_count() + b.leaf_count(),
        }
    }

    /// Variables referenced by the expression, deduplicated, in canonical
    /// order.
    #[must_use]
    pub fn variables(&self) -> Vec<Var> {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Whether the expression references any metric-qualified variable.
    #[must_use]
    pub fn has_metric(&self) -> bool {
        match self {
            Expr::Var(v) => v.is_metric(),
            Expr::Scale(_, e) => e.has_metric(),
            Expr::Add(a, b) | Expr::Sub(a, b) => a.has_metric() || b.has_metric(),
        }
    }

    fn collect_vars(&self, vars: &mut Vec<Var>) {
        match self {
            Expr::Var(v) => vars.push(*v),
            Expr::Scale(_, e) => e.collect_vars(vars),
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                a.collect_vars(vars);
                b.collect_vars(vars);
            }
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        // precedence: Add/Sub = 1, Scale = 2, Var = 3
        let prec = match self {
            Expr::Var(_) => 3,
            Expr::Scale(..) => 2,
            Expr::Add(..) | Expr::Sub(..) => 1,
        };
        let need_parens = prec < parent_prec;
        if need_parens {
            write!(f, "(")?;
        }
        match self {
            Expr::Var(v) => write!(f, "{v}")?,
            Expr::Scale(c, e) => {
                write!(f, "{c} * ")?;
                e.fmt_prec(f, 3)?;
            }
            Expr::Add(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " + ")?;
                b.fmt_prec(f, 2)?;
            }
            Expr::Sub(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " - ")?;
                b.fmt_prec(f, 2)?;
            }
        }
        if need_parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl From<Var> for Expr {
    fn from(v: Var) -> Self {
        Expr::Var(v)
    }
}

/// Comparison operator of a clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `>` — the expression must exceed the threshold.
    Gt,
    /// `<` — the expression must stay below the threshold.
    Lt,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Gt => write!(f, ">"),
            CmpOp::Lt => write!(f, "<"),
        }
    }
}

/// A single clause `EXP cmp c +/- c`, e.g. `n - o > 0.02 +/- 0.01`.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// Left-hand-side expression.
    pub expr: Expr,
    /// Comparison operator.
    pub cmp: CmpOp,
    /// Right-hand-side threshold constant.
    pub threshold: f64,
    /// Error tolerance `ε` following `+/-`.
    pub tolerance: f64,
}

impl Clause {
    /// Create a clause; see the type-level docs for the semantics.
    #[must_use]
    pub fn new(expr: Expr, cmp: CmpOp, threshold: f64, tolerance: f64) -> Self {
        Clause {
            expr,
            cmp,
            threshold,
            tolerance,
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} +/- {}",
            self.expr, self.cmp, self.threshold, self.tolerance
        )
    }
}

/// A formula: a conjunction of clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Formula {
    clauses: Vec<Clause>,
}

impl Formula {
    /// Build a formula from its clauses.
    ///
    /// An empty clause list is permitted here but rejected by semantic
    /// validation ([`crate::dsl::parse_formula`] never produces one).
    #[must_use]
    pub fn new(clauses: Vec<Clause>) -> Self {
        Formula { clauses }
    }

    /// The clauses of the conjunction, in source order.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula has no clauses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// All variables referenced anywhere in the formula, deduplicated, in
    /// canonical order.
    #[must_use]
    pub fn variables(&self) -> Vec<Var> {
        let mut vars = Vec::new();
        for clause in &self.clauses {
            clause.expr.collect_vars(&mut vars);
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Whether any referenced variable requires ground-truth labels.
    #[must_use]
    pub fn needs_labels(&self) -> bool {
        self.variables().iter().any(|v| v.needs_labels())
    }

    /// Whether any clause references a metric-qualified variable.
    #[must_use]
    pub fn has_metric(&self) -> bool {
        self.clauses.iter().any(|c| c.expr.has_metric())
    }

    /// The distinct `k` values of all `topk` variables, ascending.
    #[must_use]
    pub fn topk_ks(&self) -> Vec<u32> {
        let mut ks: Vec<u32> = self
            .variables()
            .into_iter()
            .filter_map(Var::topk_k)
            .collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " /\\ ")?;
            }
            write!(f, "{clause}")?;
        }
        Ok(())
    }
}

impl FromIterator<Clause> for Formula {
    fn from_iter<T: IntoIterator<Item = Clause>>(iter: T) -> Self {
        Formula::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff() -> Expr {
        Expr::sub(Expr::var(Var::N), Expr::var(Var::O))
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(diff().to_string(), "n - o");
        let e = Expr::sub(Expr::var(Var::N), Expr::scale(1.1, Expr::var(Var::O)));
        assert_eq!(e.to_string(), "n - 1.1 * o");
        let e = Expr::scale(2.0, diff());
        assert_eq!(e.to_string(), "2 * (n - o)");
        // Right-associated subtraction needs parens to keep its meaning.
        let e = Expr::sub(
            Expr::var(Var::N),
            Expr::add(Expr::var(Var::O), Expr::var(Var::D)),
        );
        assert_eq!(e.to_string(), "n - (o + d)");
        // Left-associated subtraction does not.
        let e = Expr::sub(
            Expr::sub(Expr::var(Var::N), Expr::var(Var::O)),
            Expr::var(Var::D),
        );
        assert_eq!(e.to_string(), "n - o - d");
    }

    #[test]
    fn clause_display_matches_paper_syntax() {
        let c = Clause::new(diff(), CmpOp::Gt, 0.02, 0.01);
        assert_eq!(c.to_string(), "n - o > 0.02 +/- 0.01");
    }

    #[test]
    fn formula_display() {
        let f = Formula::new(vec![
            Clause::new(diff(), CmpOp::Gt, 0.02, 0.01),
            Clause::new(Expr::var(Var::D), CmpOp::Lt, 0.1, 0.01),
        ]);
        assert_eq!(f.to_string(), "n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01");
    }

    #[test]
    fn variables_are_deduplicated_and_ordered() {
        let e = Expr::add(diff(), Expr::sub(Expr::var(Var::N), Expr::var(Var::D)));
        assert_eq!(e.variables(), vec![Var::N, Var::O, Var::D]);
        assert_eq!(e.leaf_count(), 4);
    }

    #[test]
    fn label_requirements() {
        assert!(Var::N.needs_labels());
        assert!(Var::O.needs_labels());
        assert!(!Var::D.needs_labels());
        let f = Formula::new(vec![Clause::new(Expr::var(Var::D), CmpOp::Lt, 0.1, 0.01)]);
        assert!(!f.needs_labels());
        let f = Formula::new(vec![Clause::new(diff(), CmpOp::Gt, 0.0, 0.01)]);
        assert!(f.needs_labels());
    }

    #[test]
    fn metric_var_display_and_tokens() {
        assert_eq!(Var::F1N.to_string(), "f1(n)");
        assert_eq!(Var::TopKO(5).to_string(), "topk(o, 5)");
        assert_eq!(Var::F1O.token(), "f1o");
        assert_eq!(Var::TopKN(12).token(), "tkn12");
        let e = Expr::sub(Expr::var(Var::F1N), Expr::var(Var::F1O));
        assert_eq!(e.to_string(), "f1(n) - f1(o)");
        assert!(e.has_metric());
        assert!(!diff().has_metric());
    }

    #[test]
    fn metric_vars_sort_after_plain_and_need_labels() {
        let e = Expr::add(
            Expr::sub(Expr::var(Var::TopKN(3)), Expr::var(Var::F1N)),
            Expr::var(Var::D),
        );
        assert_eq!(e.variables(), vec![Var::D, Var::F1N, Var::TopKN(3)]);
        assert!(Var::F1N.needs_labels());
        assert!(Var::TopKO(2).needs_labels());
        assert!(Var::F1N.is_metric());
        assert!(!Var::D.is_metric());
        assert_eq!(Var::TopKN(7).topk_k(), Some(7));
        assert_eq!(Var::N.topk_k(), None);
    }

    #[test]
    fn formula_topk_ks_deduplicated_ascending() {
        let f = Formula::new(vec![
            Clause::new(
                Expr::sub(Expr::var(Var::TopKN(5)), Expr::var(Var::TopKO(5))),
                CmpOp::Gt,
                -0.02,
                0.01,
            ),
            Clause::new(Expr::var(Var::TopKN(2)), CmpOp::Gt, 0.8, 0.05),
        ]);
        assert_eq!(f.topk_ks(), vec![2, 5]);
        assert!(f.has_metric());
        assert!(f.needs_labels());
    }

    #[test]
    fn collect_into_formula() {
        let f: Formula = vec![Clause::new(Expr::var(Var::N), CmpOp::Gt, 0.8, 0.05)]
            .into_iter()
            .collect();
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
    }
}

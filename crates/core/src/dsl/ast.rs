//! Abstract syntax tree for the condition language (Appendix A.1).
//!
//! ```text
//! c    :- floating point constant
//! v    :- n | o | d
//! op1  :- + | -
//! op2  :- *
//! EXP  :- v | v op1 EXP | EXP op2 c
//! cmp  :- > | <
//! C    :- EXP cmp c +/- c
//! F    :- C | C /\ F
//! ```

use std::fmt;

/// One of the three random variables a condition may reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Var {
    /// `n` — accuracy of the newly committed model.
    N,
    /// `o` — accuracy of the old (currently accepted) model.
    O,
    /// `d` — fraction of test points whose prediction changed.
    D,
}

impl Var {
    /// All variables, in canonical order.
    pub const ALL: [Var; 3] = [Var::N, Var::O, Var::D];

    /// Dynamic range of the variable: all three live in `[0, 1]`.
    #[must_use]
    pub fn range(self) -> f64 {
        1.0
    }

    /// Whether measuring this variable requires ground-truth labels.
    ///
    /// Accuracies (`n`, `o`) need labels; the prediction difference `d`
    /// can be measured on unlabeled data (Technical Observation 2, §4).
    #[must_use]
    pub fn needs_labels(self) -> bool {
        !matches!(self, Var::D)
    }

    /// The source-syntax letter.
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            Var::N => 'n',
            Var::O => 'o',
            Var::D => 'd',
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// An arithmetic expression over the variables.
///
/// The surface grammar is linear by construction: expressions combine
/// variables with `+`/`-` and scale by constants with `*`. The parser
/// additionally guarantees (and [`crate::dsl::LinearForm`] re-checks) that
/// no variable-by-variable products or stray constant terms appear.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A bare variable.
    Var(Var),
    /// A constant multiple `c * e`.
    Scale(f64, Box<Expr>),
    /// Sum `e1 + e2`.
    Add(Box<Expr>, Box<Expr>),
    /// Difference `e1 - e2`.
    Sub(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand constructor for a variable leaf.
    #[must_use]
    pub fn var(v: Var) -> Expr {
        Expr::Var(v)
    }

    /// Shorthand constructor for `c * e`.
    #[must_use]
    pub fn scale(c: f64, e: Expr) -> Expr {
        Expr::Scale(c, Box::new(e))
    }

    /// Shorthand constructor for `a + b`.
    ///
    /// A static builder (`Expr::add(a, b)`), deliberately not the
    /// `std::ops::Add` trait: expressions are AST nodes, not numbers.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Shorthand constructor for `a - b`.
    ///
    /// A static builder, deliberately not the `std::ops::Sub` trait.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Number of leaf (variable) occurrences.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        match self {
            Expr::Var(_) => 1,
            Expr::Scale(_, e) => e.leaf_count(),
            Expr::Add(a, b) | Expr::Sub(a, b) => a.leaf_count() + b.leaf_count(),
        }
    }

    /// Variables referenced by the expression, deduplicated, in canonical
    /// order.
    #[must_use]
    pub fn variables(&self) -> Vec<Var> {
        let mut present = [false; 3];
        self.mark_vars(&mut present);
        Var::ALL
            .iter()
            .copied()
            .zip(present)
            .filter(|&(_, p)| p)
            .map(|(v, _)| v)
            .collect()
    }

    fn mark_vars(&self, present: &mut [bool; 3]) {
        match self {
            Expr::Var(Var::N) => present[0] = true,
            Expr::Var(Var::O) => present[1] = true,
            Expr::Var(Var::D) => present[2] = true,
            Expr::Scale(_, e) => e.mark_vars(present),
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                a.mark_vars(present);
                b.mark_vars(present);
            }
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        // precedence: Add/Sub = 1, Scale = 2, Var = 3
        let prec = match self {
            Expr::Var(_) => 3,
            Expr::Scale(..) => 2,
            Expr::Add(..) | Expr::Sub(..) => 1,
        };
        let need_parens = prec < parent_prec;
        if need_parens {
            write!(f, "(")?;
        }
        match self {
            Expr::Var(v) => write!(f, "{v}")?,
            Expr::Scale(c, e) => {
                write!(f, "{c} * ")?;
                e.fmt_prec(f, 3)?;
            }
            Expr::Add(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " + ")?;
                b.fmt_prec(f, 2)?;
            }
            Expr::Sub(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " - ")?;
                b.fmt_prec(f, 2)?;
            }
        }
        if need_parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl From<Var> for Expr {
    fn from(v: Var) -> Self {
        Expr::Var(v)
    }
}

/// Comparison operator of a clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `>` — the expression must exceed the threshold.
    Gt,
    /// `<` — the expression must stay below the threshold.
    Lt,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Gt => write!(f, ">"),
            CmpOp::Lt => write!(f, "<"),
        }
    }
}

/// A single clause `EXP cmp c +/- c`, e.g. `n - o > 0.02 +/- 0.01`.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// Left-hand-side expression.
    pub expr: Expr,
    /// Comparison operator.
    pub cmp: CmpOp,
    /// Right-hand-side threshold constant.
    pub threshold: f64,
    /// Error tolerance `ε` following `+/-`.
    pub tolerance: f64,
}

impl Clause {
    /// Create a clause; see the type-level docs for the semantics.
    #[must_use]
    pub fn new(expr: Expr, cmp: CmpOp, threshold: f64, tolerance: f64) -> Self {
        Clause {
            expr,
            cmp,
            threshold,
            tolerance,
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} +/- {}",
            self.expr, self.cmp, self.threshold, self.tolerance
        )
    }
}

/// A formula: a conjunction of clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Formula {
    clauses: Vec<Clause>,
}

impl Formula {
    /// Build a formula from its clauses.
    ///
    /// An empty clause list is permitted here but rejected by semantic
    /// validation ([`crate::dsl::parse_formula`] never produces one).
    #[must_use]
    pub fn new(clauses: Vec<Clause>) -> Self {
        Formula { clauses }
    }

    /// The clauses of the conjunction, in source order.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula has no clauses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// All variables referenced anywhere in the formula, deduplicated, in
    /// canonical order.
    #[must_use]
    pub fn variables(&self) -> Vec<Var> {
        let mut present = [false; 3];
        for clause in &self.clauses {
            for v in clause.expr.variables() {
                present[match v {
                    Var::N => 0,
                    Var::O => 1,
                    Var::D => 2,
                }] = true;
            }
        }
        Var::ALL
            .iter()
            .copied()
            .zip(present)
            .filter(|&(_, p)| p)
            .map(|(v, _)| v)
            .collect()
    }

    /// Whether any referenced variable requires ground-truth labels.
    #[must_use]
    pub fn needs_labels(&self) -> bool {
        self.variables().iter().any(|v| v.needs_labels())
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " /\\ ")?;
            }
            write!(f, "{clause}")?;
        }
        Ok(())
    }
}

impl FromIterator<Clause> for Formula {
    fn from_iter<T: IntoIterator<Item = Clause>>(iter: T) -> Self {
        Formula::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff() -> Expr {
        Expr::sub(Expr::var(Var::N), Expr::var(Var::O))
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(diff().to_string(), "n - o");
        let e = Expr::sub(Expr::var(Var::N), Expr::scale(1.1, Expr::var(Var::O)));
        assert_eq!(e.to_string(), "n - 1.1 * o");
        let e = Expr::scale(2.0, diff());
        assert_eq!(e.to_string(), "2 * (n - o)");
        // Right-associated subtraction needs parens to keep its meaning.
        let e = Expr::sub(
            Expr::var(Var::N),
            Expr::add(Expr::var(Var::O), Expr::var(Var::D)),
        );
        assert_eq!(e.to_string(), "n - (o + d)");
        // Left-associated subtraction does not.
        let e = Expr::sub(
            Expr::sub(Expr::var(Var::N), Expr::var(Var::O)),
            Expr::var(Var::D),
        );
        assert_eq!(e.to_string(), "n - o - d");
    }

    #[test]
    fn clause_display_matches_paper_syntax() {
        let c = Clause::new(diff(), CmpOp::Gt, 0.02, 0.01);
        assert_eq!(c.to_string(), "n - o > 0.02 +/- 0.01");
    }

    #[test]
    fn formula_display() {
        let f = Formula::new(vec![
            Clause::new(diff(), CmpOp::Gt, 0.02, 0.01),
            Clause::new(Expr::var(Var::D), CmpOp::Lt, 0.1, 0.01),
        ]);
        assert_eq!(f.to_string(), "n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01");
    }

    #[test]
    fn variables_are_deduplicated_and_ordered() {
        let e = Expr::add(diff(), Expr::sub(Expr::var(Var::N), Expr::var(Var::D)));
        assert_eq!(e.variables(), vec![Var::N, Var::O, Var::D]);
        assert_eq!(e.leaf_count(), 4);
    }

    #[test]
    fn label_requirements() {
        assert!(Var::N.needs_labels());
        assert!(Var::O.needs_labels());
        assert!(!Var::D.needs_labels());
        let f = Formula::new(vec![Clause::new(Expr::var(Var::D), CmpOp::Lt, 0.1, 0.01)]);
        assert!(!f.needs_labels());
        let f = Formula::new(vec![Clause::new(diff(), CmpOp::Gt, 0.0, 0.01)]);
        assert!(f.needs_labels());
    }

    #[test]
    fn collect_into_formula() {
        let f: Formula = vec![Clause::new(Expr::var(Var::N), CmpOp::Gt, 0.8, 0.05)]
            .into_iter()
            .collect();
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
    }
}

//! Tokenizer for the ease.ml/ci condition grammar (Appendix A.1).

use crate::error::ParseError;
use std::fmt;

/// A lexical token of the condition language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A variable: `n`, `o`, or `d`.
    Var(char),
    /// The `f1` metric keyword, as in `f1(n)`.
    F1,
    /// The `topk` metric keyword, as in `topk(n, 5)`.
    TopK,
    /// `,` — separates the arguments of `topk(...)`.
    Comma,
    /// A floating-point constant.
    Number(f64),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `+/-`
    PlusMinus,
    /// `/\` — conjunction of clauses.
    And,
    /// `(`
    LParen,
    /// `)`
    RParen,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Var(c) => write!(f, "{c}"),
            Token::F1 => write!(f, "f1"),
            Token::TopK => write!(f, "topk"),
            Token::Comma => write!(f, ","),
            Token::Number(x) => write!(f, "{x}"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Gt => write!(f, ">"),
            Token::Lt => write!(f, "<"),
            Token::PlusMinus => write!(f, "+/-"),
            Token::And => write!(f, "/\\"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
        }
    }
}

/// A token along with the byte offset where it starts, for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token itself.
    pub token: Token,
    /// Byte offset into the source where the token begins.
    pub offset: usize,
}

/// Tokenize a condition string.
///
/// # Errors
///
/// Returns a [`ParseError`] on unknown characters, malformed numbers, or a
/// stray `/` that does not begin `/\`.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            'a'..='z' | 'A'..='Z' => {
                // Read the whole identifier word, then classify it.
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                    i += 1;
                }
                let word = &src[start..i];
                let token = match word {
                    "n" | "o" | "d" => Token::Var(word.as_bytes()[0] as char),
                    "f1" => Token::F1,
                    "topk" => Token::TopK,
                    _ => {
                        return Err(ParseError::new(
                            start,
                            format!(
                                "unknown identifier starting with `{c}` \
                                 (variables are n, o, d, f1(...), topk(...))"
                            ),
                        ));
                    }
                };
                out.push(Spanned {
                    token,
                    offset: start,
                });
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                });
                i += 1;
            }
            '+' => {
                if bytes[i..].starts_with(b"+/-") {
                    out.push(Spanned {
                        token: Token::PlusMinus,
                        offset: i,
                    });
                    i += 3;
                } else {
                    out.push(Spanned {
                        token: Token::Plus,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '-' => {
                out.push(Spanned {
                    token: Token::Minus,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    token: Token::Star,
                    offset: i,
                });
                i += 1;
            }
            '>' => {
                out.push(Spanned {
                    token: Token::Gt,
                    offset: i,
                });
                i += 1;
            }
            '<' => {
                out.push(Spanned {
                    token: Token::Lt,
                    offset: i,
                });
                i += 1;
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    offset: i,
                });
                i += 1;
            }
            '/' => {
                if bytes[i..].starts_with(b"/\\") {
                    out.push(Spanned {
                        token: Token::And,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(
                        i,
                        "`/` is not an operator (ratio statistics are unsupported; \
                         did you mean the conjunction `/\\`?)",
                    ));
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    match ch {
                        '0'..='9' => i += 1,
                        '.' if !seen_dot && !seen_exp => {
                            seen_dot = true;
                            i += 1;
                        }
                        'e' | 'E' if !seen_exp && i > start => {
                            seen_exp = true;
                            i += 1;
                            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                // A second dot directly after the number ("0.5.5") is a
                // malformed literal, not two adjacent numbers.
                if i < bytes.len() && bytes[i] == b'.' {
                    return Err(ParseError::new(
                        start,
                        format!("malformed number `{}`", &src[start..=i]),
                    ));
                }
                let text = &src[start..i];
                let value: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(start, format!("malformed number `{text}`")))?;
                out.push(Spanned {
                    token: Token::Number(value),
                    offset: start,
                });
            }
            other => {
                return Err(ParseError::new(
                    i,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn tokenizes_paper_example() {
        let got = toks("n - 1.1 * o > 0.01 +/- 0.01 /\\ d < 0.1 +/- 0.01");
        use Token::*;
        assert_eq!(
            got,
            vec![
                Var('n'),
                Minus,
                Number(1.1),
                Star,
                Var('o'),
                Gt,
                Number(0.01),
                PlusMinus,
                Number(0.01),
                And,
                Var('d'),
                Lt,
                Number(0.1),
                PlusMinus,
                Number(0.01),
            ]
        );
    }

    #[test]
    fn plus_vs_plus_minus() {
        assert_eq!(
            toks("n + o"),
            vec![Token::Var('n'), Token::Plus, Token::Var('o')]
        );
        assert_eq!(toks("+/- 0.5"), vec![Token::PlusMinus, Token::Number(0.5)]);
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(toks("1e-4"), vec![Token::Number(1e-4)]);
        assert_eq!(toks("2.5E2"), vec![Token::Number(250.0)]);
    }

    #[test]
    fn offsets_are_recorded() {
        let spanned = tokenize("n > 0.5 +/- 0.1").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 2);
        assert_eq!(spanned[2].offset, 4);
        assert_eq!(spanned[3].offset, 8);
    }

    #[test]
    fn rejects_unknown_identifier() {
        let err = tokenize("new > 0.5 +/- 0.1").unwrap_err();
        assert!(err.to_string().contains("unknown identifier"));
        let err = tokenize("f2(n) > 0.5 +/- 0.1").unwrap_err();
        assert!(err.to_string().contains("unknown identifier"));
    }

    #[test]
    fn tokenizes_metric_keywords() {
        assert_eq!(
            toks("f1(n) - f1(o)"),
            vec![
                Token::F1,
                Token::LParen,
                Token::Var('n'),
                Token::RParen,
                Token::Minus,
                Token::F1,
                Token::LParen,
                Token::Var('o'),
                Token::RParen,
            ]
        );
        assert_eq!(
            toks("topk(n, 5)"),
            vec![
                Token::TopK,
                Token::LParen,
                Token::Var('n'),
                Token::Comma,
                Token::Number(5.0),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn rejects_division() {
        let err = tokenize("n / o > 0.5 +/- 0.1").unwrap_err();
        assert!(err.to_string().contains("ratio"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("n > 0.5 @").is_err());
        assert!(tokenize("n > 0.5.5").is_err());
    }

    #[test]
    fn parens() {
        assert_eq!(
            toks("(n - o)"),
            vec![
                Token::LParen,
                Token::Var('n'),
                Token::Minus,
                Token::Var('o'),
                Token::RParen
            ]
        );
    }

    #[test]
    fn empty_input_is_empty_token_stream() {
        assert!(tokenize("   ").unwrap().is_empty());
    }
}

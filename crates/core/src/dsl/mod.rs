//! The ease.ml/ci condition language (Appendix A).
//!
//! A condition is a conjunction of clauses, each comparing a linear
//! expression over the variables `n` (new-model accuracy), `o` (old-model
//! accuracy) and `d` (prediction difference) against a threshold with an
//! explicit error tolerance:
//!
//! ```text
//! n - o > 0.02 +/- 0.01 /\ d < 0.1 +/- 0.01
//! ```
//!
//! [`parse_formula`] parses, [`validate_formula`] checks semantic sanity,
//! [`LinearForm`] exposes the canonical linear view used by the sample-size
//! estimator, and [`classify_clause`] feeds the §4 pattern optimizer.

mod analysis;
mod ast;
mod parser;
mod token;

pub use analysis::{classify_clause, validate_formula, ClauseShape, LinearForm};
pub use ast::{Clause, CmpOp, Expr, Formula, Var};
pub use parser::{parse_clause, parse_expr, parse_formula};
pub use token::{tokenize, Spanned, Token};

//! Semantic analysis of parsed conditions: linear forms, ranges, and the
//! structural queries the estimator's pattern matcher builds on.

use super::ast::{Clause, CmpOp, Expr, Formula, Var};
use crate::error::CiError;

/// The canonical linear form `Σ αᵥ·v` of an expression, over both the
/// plain variables (`n`, `o`, `d`) and any metric-qualified variables
/// (`f1(...)`, `topk(...)`).
///
/// Every grammatical expression lowers to this form; it drives range
/// computation (for Hoeffding/McDiarmid), per-variable tolerance
/// allocation, and pattern detection. Terms are kept sorted in the
/// canonical [`Var`] order with exact-zero coefficients pruned, so two
/// expressions that cancel to the same combination compare equal.
///
/// # Examples
///
/// ```
/// use easeml_ci_core::dsl::{parse_expr, LinearForm};
///
/// # fn main() -> Result<(), easeml_ci_core::CiError> {
/// let form = LinearForm::from_expr(&parse_expr("n - 1.1 * o")?);
/// assert_eq!(form.coefficient(easeml_ci_core::dsl::Var::N), 1.0);
/// assert_eq!(form.coefficient(easeml_ci_core::dsl::Var::O), -1.1);
/// assert!((form.range() - 2.1).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearForm {
    /// `(variable, coefficient)` pairs, sorted by canonical variable
    /// order, with zero coefficients removed.
    terms: Vec<(Var, f64)>,
}

impl LinearForm {
    /// Lower an expression into its linear form.
    #[must_use]
    pub fn from_expr(expr: &Expr) -> Self {
        let mut raw: Vec<(Var, f64)> = Vec::new();
        accumulate(expr, 1.0, &mut raw);
        raw.sort_by_key(|a| a.0);
        let mut terms: Vec<(Var, f64)> = Vec::with_capacity(raw.len());
        for (v, c) in raw {
            match terms.last_mut() {
                Some((last, acc)) if *last == v => *acc += c,
                _ => terms.push((v, c)),
            }
        }
        terms.retain(|&(_, c)| c != 0.0);
        LinearForm { terms }
    }

    /// The `(variable, coefficient)` terms, sorted in canonical order with
    /// zero coefficients pruned.
    #[must_use]
    pub fn terms(&self) -> &[(Var, f64)] {
        &self.terms
    }

    /// Coefficient of the given variable (`0.0` when absent).
    #[must_use]
    pub fn coefficient(&self, v: Var) -> f64 {
        self.terms
            .iter()
            .find(|&&(t, _)| t == v)
            .map_or(0.0, |&(_, c)| c)
    }

    /// Variables with non-zero coefficient, in canonical order.
    #[must_use]
    pub fn active_variables(&self) -> Vec<Var> {
        self.terms.iter().map(|&(v, _)| v).collect()
    }

    /// Whether any active term is a metric-qualified variable.
    #[must_use]
    pub fn has_metric(&self) -> bool {
        self.terms.iter().any(|&(v, _)| v.is_metric())
    }

    /// Dynamic range of the linear combination: each variable spans
    /// `[0, 1]`, so the total range is `Σ |αᵢ|`.
    #[must_use]
    pub fn range(&self) -> f64 {
        self.terms.iter().map(|&(_, c)| c.abs()).sum()
    }

    /// Whether the form is a single bare variable (coefficient exactly 1).
    #[must_use]
    pub fn as_single_variable(&self) -> Option<Var> {
        match self.terms.as_slice() {
            [(v, c)] if *c == 1.0 => Some(*v),
            _ => None,
        }
    }

    /// Whether the form is exactly `n - o` (the accuracy-improvement
    /// pattern of §4.1/§4.2).
    #[must_use]
    pub fn is_accuracy_difference(&self) -> bool {
        self.terms.as_slice() == [(Var::N, 1.0), (Var::O, -1.0)]
    }

    /// Evaluate the form at concrete values of the three *plain*
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if the form references a metric-qualified variable — those
    /// have no slot here; evaluate metric formulas through
    /// [`crate::eval::VariableEstimates`] instead.
    #[must_use]
    pub fn evaluate(&self, n: f64, o: f64, d: f64) -> f64 {
        self.terms
            .iter()
            .map(|&(v, c)| {
                c * match v {
                    Var::N => n,
                    Var::O => o,
                    Var::D => d,
                    metric => panic!(
                        "LinearForm::evaluate cannot evaluate metric variable `{metric}`; \
                         use VariableEstimates"
                    ),
                }
            })
            .sum()
    }
}

fn accumulate(expr: &Expr, scale: f64, out: &mut Vec<(Var, f64)>) {
    match expr {
        Expr::Var(v) => out.push((*v, scale)),
        Expr::Scale(c, e) => accumulate(e, scale * c, out),
        Expr::Add(a, b) => {
            accumulate(a, scale, out);
            accumulate(b, scale, out);
        }
        Expr::Sub(a, b) => {
            accumulate(a, scale, out);
            accumulate(b, -scale, out);
        }
    }
}

/// Validate a formula beyond grammar: at least one clause; tolerances and
/// thresholds consistent with `[0, 1]`-valued variables; every clause
/// references at least one variable.
///
/// # Errors
///
/// Returns [`CiError::Semantic`] describing the first violation found.
pub fn validate_formula(formula: &Formula) -> Result<(), CiError> {
    if formula.is_empty() {
        return Err(CiError::Semantic("formula has no clauses".into()));
    }
    for (i, clause) in formula.clauses().iter().enumerate() {
        let form = LinearForm::from_expr(&clause.expr);
        let range = form.range();
        if range == 0.0 {
            return Err(CiError::Semantic(format!(
                "clause {} (`{}`) has an identically-zero expression",
                i + 1,
                clause
            )));
        }
        if !clause.tolerance.is_finite() || clause.tolerance <= 0.0 {
            return Err(CiError::Semantic(format!(
                "clause {} (`{}`) has non-positive tolerance",
                i + 1,
                clause
            )));
        }
        if clause.tolerance >= range {
            return Err(CiError::Semantic(format!(
                "clause {} (`{}`): tolerance {} is at least the expression range {}; \
                 the estimate would be vacuous",
                i + 1,
                clause,
                clause.tolerance,
                range
            )));
        }
        if !clause.threshold.is_finite() {
            return Err(CiError::Semantic(format!(
                "clause {} (`{}`) has a non-finite threshold",
                i + 1,
                clause
            )));
        }
        // A threshold outside the attainable range means the clause is a
        // constant; flag the configuration mistake.
        let (lo, hi) = attainable_bounds(&form);
        if clause.threshold < lo - clause.tolerance || clause.threshold > hi + clause.tolerance {
            return Err(CiError::Semantic(format!(
                "clause {} (`{}`): threshold {} lies outside the attainable range [{lo}, {hi}]",
                i + 1,
                clause,
                clause.threshold
            )));
        }
    }
    Ok(())
}

/// Attainable `[min, max]` of a linear form when every variable (plain or
/// metric — all statistics here live in `[0, 1]`) ranges over `[0, 1]`.
fn attainable_bounds(form: &LinearForm) -> (f64, f64) {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for &(_, c) in form.terms() {
        if c >= 0.0 {
            hi += c;
        } else {
            lo += c;
        }
    }
    (lo, hi)
}

/// Structural classification of a clause used by the optimizer's pattern
/// matcher (§4.1, §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClauseShape {
    /// `d < A ± B` — a bound on the prediction difference.
    DifferenceBound {
        /// The threshold `A`.
        limit: f64,
        /// The tolerance `B`.
        tolerance: f64,
    },
    /// `n - o > C ± D` — an accuracy-improvement requirement.
    AccuracyImprovement {
        /// The threshold `C`.
        margin: f64,
        /// The tolerance `D`.
        tolerance: f64,
    },
    /// `n > A ± B` — a lower bound on absolute quality.
    QualityFloor {
        /// The threshold `A`.
        floor: f64,
        /// The tolerance `B`.
        tolerance: f64,
    },
    /// Anything else (handled by the baseline estimator).
    General,
}

/// Classify a clause into one of the recognised shapes.
///
/// Metric-qualified clauses are always [`ClauseShape::General`]: the
/// optimizer's patterns (§4.1/§4.2) are derived for binomial accuracy
/// statistics, so metric clauses go to the baseline McDiarmid path.
#[must_use]
pub fn classify_clause(clause: &Clause) -> ClauseShape {
    let form = LinearForm::from_expr(&clause.expr);
    if form.has_metric() {
        return ClauseShape::General;
    }
    match (form.as_single_variable(), clause.cmp) {
        (Some(Var::D), CmpOp::Lt) => ClauseShape::DifferenceBound {
            limit: clause.threshold,
            tolerance: clause.tolerance,
        },
        (Some(Var::N), CmpOp::Gt) => ClauseShape::QualityFloor {
            floor: clause.threshold,
            tolerance: clause.tolerance,
        },
        _ if form.is_accuracy_difference() && clause.cmp == CmpOp::Gt => {
            ClauseShape::AccuracyImprovement {
                margin: clause.threshold,
                tolerance: clause.tolerance,
            }
        }
        _ => ClauseShape::General,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parser::{parse_clause, parse_expr, parse_formula};

    #[test]
    fn linear_form_of_paper_expressions() {
        let f = LinearForm::from_expr(&parse_expr("n - o").unwrap());
        assert_eq!(f.coefficient(Var::N), 1.0);
        assert_eq!(f.coefficient(Var::O), -1.0);
        assert_eq!(f.coefficient(Var::D), 0.0);
        assert_eq!(f.range(), 2.0);
        assert!(f.is_accuracy_difference());

        let f = LinearForm::from_expr(&parse_expr("n - 1.1 * o").unwrap());
        assert!((f.range() - 2.1).abs() < 1e-12);
        assert!(!f.is_accuracy_difference());
    }

    #[test]
    fn nested_scaling_distributes() {
        let f = LinearForm::from_expr(&parse_expr("2 * (n - 0.5 * (o + d))").unwrap());
        assert_eq!(f.coefficient(Var::N), 2.0);
        assert_eq!(f.coefficient(Var::O), -1.0);
        assert_eq!(f.coefficient(Var::D), -1.0);
    }

    #[test]
    fn cancelling_coefficients() {
        let f = LinearForm::from_expr(&parse_expr("n - n + o").unwrap());
        assert_eq!(f.coefficient(Var::N), 0.0);
        assert_eq!(f.active_variables(), vec![Var::O]);
        assert_eq!(f.as_single_variable(), Some(Var::O));
    }

    #[test]
    fn single_variable_detection() {
        let f = LinearForm::from_expr(&parse_expr("n").unwrap());
        assert_eq!(f.as_single_variable(), Some(Var::N));
        let f = LinearForm::from_expr(&parse_expr("2 * n").unwrap());
        assert_eq!(f.as_single_variable(), None);
    }

    #[test]
    fn evaluate_matches_coefficients() {
        let f = LinearForm::from_expr(&parse_expr("n - 1.1 * o + 0.5 * d").unwrap());
        let v = f.evaluate(0.9, 0.8, 0.1);
        assert!((v - (0.9 - 1.1 * 0.8 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn validation_accepts_paper_conditions() {
        for src in [
            "n > 0.8 +/- 0.05",
            "n - o > 0.02 +/- 0.01",
            "d < 0.1 +/- 0.01",
            "n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01",
        ] {
            validate_formula(&parse_formula(src).unwrap()).unwrap();
        }
    }

    #[test]
    fn validation_rejects_zero_expression() {
        let f = parse_formula("n - n > 0 +/- 0.1").unwrap();
        assert!(validate_formula(&f).is_err());
    }

    #[test]
    fn validation_rejects_vacuous_tolerance() {
        // Tolerance 1.0 on a range-1 variable says nothing.
        let f = parse_formula("n > 0.5 +/- 1.0").unwrap();
        let err = validate_formula(&f).unwrap_err();
        assert!(err.to_string().contains("vacuous"));
    }

    #[test]
    fn validation_rejects_unattainable_threshold() {
        let f = parse_formula("n > 5 +/- 0.1").unwrap();
        let err = validate_formula(&f).unwrap_err();
        assert!(err.to_string().contains("attainable"));
        // n - o ranges over [-1, 1]; threshold -2 is unattainable.
        let f = parse_formula("n - o > -2 +/- 0.1").unwrap();
        assert!(validate_formula(&f).is_err());
    }

    #[test]
    fn clause_classification() {
        assert!(matches!(
            classify_clause(&parse_clause("d < 0.1 +/- 0.01").unwrap()),
            ClauseShape::DifferenceBound { limit, tolerance }
                if limit == 0.1 && tolerance == 0.01
        ));
        assert!(matches!(
            classify_clause(&parse_clause("n - o > 0.02 +/- 0.01").unwrap()),
            ClauseShape::AccuracyImprovement { margin, tolerance }
                if margin == 0.02 && tolerance == 0.01
        ));
        assert!(matches!(
            classify_clause(&parse_clause("n > 0.9 +/- 0.01").unwrap()),
            ClauseShape::QualityFloor { floor, tolerance }
                if floor == 0.9 && tolerance == 0.01
        ));
        // `d > …` is not a difference bound; `o - n` is not an improvement.
        assert!(matches!(
            classify_clause(&parse_clause("d > 0.1 +/- 0.01").unwrap()),
            ClauseShape::General
        ));
        assert!(matches!(
            classify_clause(&parse_clause("o - n > 0.1 +/- 0.01").unwrap()),
            ClauseShape::General
        ));
    }

    #[test]
    fn metric_linear_forms() {
        let f = LinearForm::from_expr(&parse_expr("f1(n) - f1(o)").unwrap());
        assert_eq!(f.coefficient(Var::F1N), 1.0);
        assert_eq!(f.coefficient(Var::F1O), -1.0);
        assert_eq!(f.range(), 2.0);
        assert!(f.has_metric());
        assert!(!f.is_accuracy_difference());
        assert_eq!(f.active_variables(), vec![Var::F1N, Var::F1O]);
        assert_eq!(f.as_single_variable(), None);

        let f = LinearForm::from_expr(&parse_expr("topk(n, 5)").unwrap());
        assert_eq!(f.as_single_variable(), Some(Var::TopKN(5)));

        // Cancellation prunes metric terms too.
        let f = LinearForm::from_expr(&parse_expr("f1(n) - f1(n) + o").unwrap());
        assert!(!f.has_metric());
        assert_eq!(f.active_variables(), vec![Var::O]);
    }

    #[test]
    #[should_panic(expected = "metric variable")]
    fn evaluate_panics_on_metric_terms() {
        let f = LinearForm::from_expr(&parse_expr("f1(n)").unwrap());
        let _ = f.evaluate(0.5, 0.5, 0.5);
    }

    #[test]
    fn metric_clauses_classify_general_and_validate() {
        // Every metric shape bypasses the binomial pattern matcher.
        for src in [
            "f1(n) - f1(o) > -0.02 +/- 0.01",
            "f1(n) > 0.8 +/- 0.05",
            "topk(n, 5) - topk(o, 5) > -0.02 +/- 0.01",
            "topk(n, 3) > 0.9 +/- 0.02",
        ] {
            assert!(
                matches!(
                    classify_clause(&parse_clause(src).unwrap()),
                    ClauseShape::General
                ),
                "{src} should classify General"
            );
            validate_formula(&parse_formula(src).unwrap()).unwrap();
        }
        // Validation still applies: vacuous tolerance, unattainable
        // threshold, zero expression.
        assert!(validate_formula(&parse_formula("f1(n) > 0.5 +/- 1.0").unwrap()).is_err());
        assert!(validate_formula(&parse_formula("f1(n) > 5 +/- 0.1").unwrap()).is_err());
        assert!(validate_formula(&parse_formula("f1(n) - f1(n) > 0 +/- 0.1").unwrap()).is_err());
    }

    #[test]
    fn attainable_bounds_examples() {
        let f = LinearForm::from_expr(&parse_expr("n - o").unwrap());
        assert_eq!(attainable_bounds(&f), (-1.0, 1.0));
        let f = LinearForm::from_expr(&parse_expr("n + o + d").unwrap());
        assert_eq!(attainable_bounds(&f), (0.0, 3.0));
    }
}

//! Cross-layer cache for expensive bound inversions.
//!
//! The §4.3 exact-binomial inversion is orders of magnitude more costly
//! than the closed-form bounds, and real CI traffic re-asks the same
//! question constantly: every commit against a given script re-derives
//! the same `(ε, δ, tail)` inversion, multi-clause scripts repeat leaves,
//! and a busy server hosts many repositories with near-identical
//! reliability settings. [`BoundsCache`] memoizes those inversions with
//! a process-wide instance ([`BoundsCache::global`]) threaded through
//! the sample-size estimator ([`crate::SampleSizeEstimator`]), the
//! clause/formula recursion ([`crate::estimator::formula_sample_size`]),
//! and — via the estimator — the engine ([`crate::CiEngine`]).
//!
//! # Sharding
//!
//! The map is split into [`BoundsCache::SHARDS`] independently locked
//! shards selected by the key's hash, so the parallel batch-inversion
//! path ([`crate::SampleSizeEstimator::exact_sample_size_grid`]) and
//! concurrent serving threads don't serialize on one `RwLock`. The
//! global entry budget stays [`BoundsCache::MAX_ENTRIES`], enforced
//! per-shard (each shard clears itself at `MAX_ENTRIES / SHARDS`
//! entries, so the total can never exceed the global cap).
//!
//! # Key quantization
//!
//! Keys quantize the floating-point inputs by zeroing the bottom 8
//! mantissa bits (a relative grain of 2⁻⁴⁴ ≈ 6·10⁻¹⁴). Inputs that
//! differ by less than the grain share an entry; such perturbations are
//! far below the precision at which the inverted bounds themselves are
//! meaningful, and the quantization makes hit rates robust to benign
//! last-ulp differences in how callers derive `ln δ` (e.g.
//! `ln(δ/k)` vs `ln δ − ln k`).

use easeml_bounds::{BoundsError, Tail};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Which inversion an entry caches (part of the key, so differently
/// shaped bounds never collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// [`easeml_bounds::exact_binomial_sample_size`].
    ExactBinomialSampleSize,
}

/// Whether an estimator consults the shared [`BoundsCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// Use [`BoundsCache::global`] (the default).
    #[default]
    Shared,
    /// Recompute everything; used by tests and ablation benches.
    Bypass,
}

/// Zero the bottom 8 mantissa bits: the cache's quantization grain.
fn quantize(x: f64) -> u64 {
    x.to_bits() & !0xFF
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    kind: BoundKind,
    tail: Tail,
    eps: u64,
    ln_delta: u64,
}

impl Key {
    fn new(kind: BoundKind, tail: Tail, eps: f64, ln_delta: f64) -> Self {
        Key {
            kind,
            tail,
            eps: quantize(eps),
            ln_delta: quantize(ln_delta),
        }
    }

    /// Shard index: high bits of the sip-hashed key (the low bits pick
    /// the bucket inside the shard's map, so reusing them would skew the
    /// shard distribution).
    fn shard(&self) -> usize {
        let mut hasher = std::hash::DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() >> 32) as usize % BoundsCache::SHARDS
    }
}

/// Point-in-time cache counters (see [`BoundsCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored (summed over shards).
    pub entries: usize,
}

/// Thread-safe, sharded memo of bound inversions keyed by quantized
/// `(kind, tail, ε, ln δ)`.
///
/// Reads take one shard's shared lock; a miss computes *outside* any
/// lock (so a slow inversion never blocks readers) and then races
/// benignly to insert — both contenders compute identical values.
#[derive(Debug)]
pub struct BoundsCache {
    shards: Vec<RwLock<HashMap<Key, u64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for BoundsCache {
    fn default() -> Self {
        BoundsCache {
            shards: (0..Self::SHARDS).map(|_| RwLock::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl BoundsCache {
    /// Number of independently locked shards. A power of two comfortably
    /// above the worker counts the workspace runs, so parallel batch
    /// inversion almost never contends on a shard lock.
    pub const SHARDS: usize = 16;

    /// Upper bound on stored entries across all shards.
    ///
    /// The key space is user-controlled on a serving path (every distinct
    /// script tolerance/reliability is a fresh `(ε, ln δ)` pair), so the
    /// process-wide instance must not grow without bound. Each shard
    /// drops its map at `MAX_ENTRIES / SHARDS` entries — always correct
    /// for a cache, and a full sweep of 2¹⁶ distinct inversions re-warms
    /// in well under a minute.
    pub const MAX_ENTRIES: usize = 1 << 16;

    /// A fresh, empty cache (useful for isolation in tests; production
    /// code shares [`BoundsCache::global`]).
    #[must_use]
    pub fn new() -> Self {
        BoundsCache::default()
    }

    /// The process-wide shared instance.
    pub fn global() -> &'static BoundsCache {
        static GLOBAL: OnceLock<BoundsCache> = OnceLock::new();
        GLOBAL.get_or_init(BoundsCache::new)
    }

    /// Cached inversion for `(kind, tail, eps, ln_delta)`, if present.
    /// Counts toward the hit/miss statistics.
    pub fn lookup(&self, kind: BoundKind, tail: Tail, eps: f64, ln_delta: f64) -> Option<u64> {
        let key = Key::new(kind, tail, eps, ln_delta);
        let found = self.shards[key.shard()]
            .read()
            .expect("bounds cache poisoned")
            .get(&key)
            .copied();
        match found {
            Some(n) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(n)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a computed inversion (see [`BoundsCache::lookup`]).
    pub fn store(&self, kind: BoundKind, tail: Tail, eps: f64, ln_delta: f64, n: u64) {
        let key = Key::new(kind, tail, eps, ln_delta);
        let mut shard = self.shards[key.shard()]
            .write()
            .expect("bounds cache poisoned");
        if shard.len() >= Self::MAX_ENTRIES / Self::SHARDS {
            shard.clear();
        }
        shard.insert(key, n);
    }

    /// Look up the `(kind, tail, eps, ln_delta)` inversion, computing and
    /// storing it on a miss.
    ///
    /// Only successful computations are cached; errors always propagate
    /// and are re-derived on the next call.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns.
    pub fn sample_size_with(
        &self,
        kind: BoundKind,
        tail: Tail,
        eps: f64,
        ln_delta: f64,
        compute: impl FnOnce() -> Result<u64, BoundsError>,
    ) -> Result<u64, BoundsError> {
        if let Some(n) = self.lookup(kind, tail, eps, ln_delta) {
            return Ok(n);
        }
        let n = compute()?;
        self.store(kind, tail, eps, ln_delta, n);
        Ok(n)
    }

    /// Current hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("bounds cache poisoned").len())
                .sum(),
        }
    }

    /// Drop all entries (counters are kept; mainly for tests).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("bounds cache poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let cache = BoundsCache::new();
        let mut computed = 0u32;
        for _ in 0..3 {
            let n = cache
                .sample_size_with(
                    BoundKind::ExactBinomialSampleSize,
                    Tail::TwoSided,
                    0.05,
                    (0.001f64).ln(),
                    || {
                        computed += 1;
                        Ok(2_500)
                    },
                )
                .unwrap();
            assert_eq!(n, 2_500);
        }
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = BoundsCache::new();
        let err = cache.sample_size_with(
            BoundKind::ExactBinomialSampleSize,
            Tail::TwoSided,
            0.05,
            -3.0,
            || Err(BoundsError::ZeroSampleSize),
        );
        assert!(err.is_err());
        assert_eq!(cache.stats().entries, 0);
        // The next call recomputes and may succeed.
        let ok = cache.sample_size_with(
            BoundKind::ExactBinomialSampleSize,
            Tail::TwoSided,
            0.05,
            -3.0,
            || Ok(7),
        );
        assert_eq!(ok.unwrap(), 7);
    }

    #[test]
    fn quantization_merges_last_ulp_noise_but_separates_real_inputs() {
        let cache = BoundsCache::new();
        let base = 0.05f64;
        let wiggled = f64::from_bits(base.to_bits() + 3); // ~1e-18 apart
        let k = BoundKind::ExactBinomialSampleSize;
        cache
            .sample_size_with(k, Tail::TwoSided, base, -5.0, || Ok(1))
            .unwrap();
        let hit = cache
            .sample_size_with(k, Tail::TwoSided, wiggled, -5.0, || Ok(2))
            .unwrap();
        assert_eq!(hit, 1, "sub-grain wiggle must share the entry");
        let other = cache
            .sample_size_with(k, Tail::TwoSided, 0.06, -5.0, || Ok(3))
            .unwrap();
        assert_eq!(other, 3, "distinct eps must get its own entry");
        // Distinct tails are distinct keys.
        let one_sided = cache
            .sample_size_with(k, Tail::OneSided, base, -5.0, || Ok(4))
            .unwrap();
        assert_eq!(one_sided, 4);
    }

    #[test]
    fn entry_count_is_bounded() {
        let cache = BoundsCache::new();
        let base = 0.05f64.to_bits();
        // One more distinct quantized key than the cap: overflow inserts
        // must drop shards instead of growing past MAX_ENTRIES.
        for i in 0..=BoundsCache::MAX_ENTRIES as u64 {
            let eps = f64::from_bits(base + (i << 8));
            cache
                .sample_size_with(
                    BoundKind::ExactBinomialSampleSize,
                    Tail::TwoSided,
                    eps,
                    -5.0,
                    || Ok(i),
                )
                .unwrap();
        }
        let entries = cache.stats().entries;
        assert!(
            (1..=BoundsCache::MAX_ENTRIES).contains(&entries),
            "entries = {entries}"
        );
    }

    #[test]
    fn keys_spread_across_shards() {
        // Realistic Figure-2-style keys must not all hash to one shard
        // (the whole point of sharding the lock).
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let eps = 0.01 + i as f64 * 0.005;
            let key = Key::new(
                BoundKind::ExactBinomialSampleSize,
                Tail::TwoSided,
                eps,
                -6.0,
            );
            seen.insert(key.shard());
        }
        assert!(
            seen.len() >= BoundsCache::SHARDS / 2,
            "64 distinct keys landed in only {} shards",
            seen.len()
        );
    }

    #[test]
    fn lookup_store_roundtrip() {
        let cache = BoundsCache::new();
        let k = BoundKind::ExactBinomialSampleSize;
        assert_eq!(cache.lookup(k, Tail::TwoSided, 0.05, -7.0), None);
        cache.store(k, Tail::TwoSided, 0.05, -7.0, 123);
        assert_eq!(cache.lookup(k, Tail::TwoSided, 0.05, -7.0), Some(123));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cache_is_send_sync_and_concurrent() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BoundsCache>();
        let cache = std::sync::Arc::new(BoundsCache::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let eps = 0.01 + ((t * 7 + i) % 5) as f64 * 0.01;
                        let n = cache
                            .sample_size_with(
                                BoundKind::ExactBinomialSampleSize,
                                Tail::TwoSided,
                                eps,
                                -6.0,
                                || Ok((eps * 1e6) as u64),
                            )
                            .unwrap();
                        assert_eq!(n, (eps * 1e6) as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().entries, 5);
    }
}

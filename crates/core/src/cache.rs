//! Cross-layer cache for expensive bound inversions.
//!
//! The §4.3 exact-binomial inversion is orders of magnitude more costly
//! than the closed-form bounds, and real CI traffic re-asks the same
//! question constantly: every commit against a given script re-derives
//! the same `(ε, δ, tail)` inversion, multi-clause scripts repeat leaves,
//! and a busy server hosts many repositories with near-identical
//! reliability settings. [`BoundsCache`] memoizes those inversions behind
//! an `RwLock`ed map with a process-wide instance ([`BoundsCache::global`])
//! threaded through the sample-size estimator
//! ([`crate::SampleSizeEstimator`]), the clause/formula recursion
//! ([`crate::estimator::formula_sample_size`]), and — via the estimator —
//! the engine ([`crate::CiEngine`]).
//!
//! # Key quantization
//!
//! Keys quantize the floating-point inputs by zeroing the bottom 8
//! mantissa bits (a relative grain of 2⁻⁴⁴ ≈ 6·10⁻¹⁴). Inputs that
//! differ by less than the grain share an entry; such perturbations are
//! far below the precision at which the inverted bounds themselves are
//! meaningful, and the quantization makes hit rates robust to benign
//! last-ulp differences in how callers derive `ln δ` (e.g.
//! `ln(δ/k)` vs `ln δ − ln k`).

use easeml_bounds::{BoundsError, Tail};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Which inversion an entry caches (part of the key, so differently
/// shaped bounds never collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// [`easeml_bounds::exact_binomial_sample_size`].
    ExactBinomialSampleSize,
}

/// Whether an estimator consults the shared [`BoundsCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// Use [`BoundsCache::global`] (the default).
    #[default]
    Shared,
    /// Recompute everything; used by tests and ablation benches.
    Bypass,
}

/// Zero the bottom 8 mantissa bits: the cache's quantization grain.
fn quantize(x: f64) -> u64 {
    x.to_bits() & !0xFF
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    kind: BoundKind,
    tail: Tail,
    eps: u64,
    ln_delta: u64,
}

/// Point-in-time cache counters (see [`BoundsCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// Thread-safe memo of bound inversions keyed by quantized
/// `(kind, tail, ε, ln δ)`.
///
/// Reads take the shared lock; a miss computes *outside* any lock (so a
/// slow inversion never blocks readers) and then races benignly to
/// insert — both contenders compute identical values.
#[derive(Debug, Default)]
pub struct BoundsCache {
    map: RwLock<HashMap<Key, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BoundsCache {
    /// Upper bound on stored entries.
    ///
    /// The key space is user-controlled on a serving path (every distinct
    /// script tolerance/reliability is a fresh `(ε, ln δ)` pair), so the
    /// process-wide instance must not grow without bound. Reaching the cap
    /// drops the whole map — always correct for a cache, and a full sweep
    /// of 2¹⁶ distinct inversions re-warms in well under a minute.
    pub const MAX_ENTRIES: usize = 1 << 16;

    /// A fresh, empty cache (useful for isolation in tests; production
    /// code shares [`BoundsCache::global`]).
    #[must_use]
    pub fn new() -> Self {
        BoundsCache::default()
    }

    /// The process-wide shared instance.
    pub fn global() -> &'static BoundsCache {
        static GLOBAL: OnceLock<BoundsCache> = OnceLock::new();
        GLOBAL.get_or_init(BoundsCache::new)
    }

    /// Look up the `(kind, tail, eps, ln_delta)` inversion, computing and
    /// storing it on a miss.
    ///
    /// Only successful computations are cached; errors always propagate
    /// and are re-derived on the next call.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns.
    pub fn sample_size_with(
        &self,
        kind: BoundKind,
        tail: Tail,
        eps: f64,
        ln_delta: f64,
        compute: impl FnOnce() -> Result<u64, BoundsError>,
    ) -> Result<u64, BoundsError> {
        let key = Key {
            kind,
            tail,
            eps: quantize(eps),
            ln_delta: quantize(ln_delta),
        };
        if let Some(&n) = self.map.read().expect("bounds cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(n);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let n = compute()?;
        let mut map = self.map.write().expect("bounds cache poisoned");
        if map.len() >= Self::MAX_ENTRIES {
            map.clear();
        }
        map.insert(key, n);
        Ok(n)
    }

    /// Current hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().expect("bounds cache poisoned").len(),
        }
    }

    /// Drop all entries (counters are kept; mainly for tests).
    pub fn clear(&self) {
        self.map.write().expect("bounds cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let cache = BoundsCache::new();
        let mut computed = 0u32;
        for _ in 0..3 {
            let n = cache
                .sample_size_with(
                    BoundKind::ExactBinomialSampleSize,
                    Tail::TwoSided,
                    0.05,
                    (0.001f64).ln(),
                    || {
                        computed += 1;
                        Ok(2_500)
                    },
                )
                .unwrap();
            assert_eq!(n, 2_500);
        }
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = BoundsCache::new();
        let err = cache.sample_size_with(
            BoundKind::ExactBinomialSampleSize,
            Tail::TwoSided,
            0.05,
            -3.0,
            || Err(BoundsError::ZeroSampleSize),
        );
        assert!(err.is_err());
        assert_eq!(cache.stats().entries, 0);
        // The next call recomputes and may succeed.
        let ok = cache.sample_size_with(
            BoundKind::ExactBinomialSampleSize,
            Tail::TwoSided,
            0.05,
            -3.0,
            || Ok(7),
        );
        assert_eq!(ok.unwrap(), 7);
    }

    #[test]
    fn quantization_merges_last_ulp_noise_but_separates_real_inputs() {
        let cache = BoundsCache::new();
        let base = 0.05f64;
        let wiggled = f64::from_bits(base.to_bits() + 3); // ~1e-18 apart
        let k = BoundKind::ExactBinomialSampleSize;
        cache
            .sample_size_with(k, Tail::TwoSided, base, -5.0, || Ok(1))
            .unwrap();
        let hit = cache
            .sample_size_with(k, Tail::TwoSided, wiggled, -5.0, || Ok(2))
            .unwrap();
        assert_eq!(hit, 1, "sub-grain wiggle must share the entry");
        let other = cache
            .sample_size_with(k, Tail::TwoSided, 0.06, -5.0, || Ok(3))
            .unwrap();
        assert_eq!(other, 3, "distinct eps must get its own entry");
        // Distinct tails are distinct keys.
        let one_sided = cache
            .sample_size_with(k, Tail::OneSided, base, -5.0, || Ok(4))
            .unwrap();
        assert_eq!(one_sided, 4);
    }

    #[test]
    fn entry_count_is_bounded() {
        let cache = BoundsCache::new();
        let base = 0.05f64.to_bits();
        // One more distinct quantized key than the cap: the overflow insert
        // must drop the map instead of growing past MAX_ENTRIES.
        for i in 0..=BoundsCache::MAX_ENTRIES as u64 {
            let eps = f64::from_bits(base + (i << 8));
            cache
                .sample_size_with(
                    BoundKind::ExactBinomialSampleSize,
                    Tail::TwoSided,
                    eps,
                    -5.0,
                    || Ok(i),
                )
                .unwrap();
        }
        let entries = cache.stats().entries;
        assert!(
            (1..=BoundsCache::MAX_ENTRIES).contains(&entries),
            "entries = {entries}"
        );
    }

    #[test]
    fn cache_is_send_sync_and_concurrent() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BoundsCache>();
        let cache = std::sync::Arc::new(BoundsCache::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let eps = 0.01 + ((t * 7 + i) % 5) as f64 * 0.01;
                        let n = cache
                            .sample_size_with(
                                BoundKind::ExactBinomialSampleSize,
                                Tail::TwoSided,
                                eps,
                                -6.0,
                                || Ok((eps * 1e6) as u64),
                            )
                            .unwrap();
                        assert_eq!(n, (eps * 1e6) as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().entries, 5);
    }
}

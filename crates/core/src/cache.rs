//! Cross-layer cache for expensive bound inversions.
//!
//! The §4.3 exact-binomial inversion is orders of magnitude more costly
//! than the closed-form bounds, and real CI traffic re-asks the same
//! question constantly: every commit against a given script re-derives
//! the same `(ε, δ, tail)` inversion, multi-clause scripts repeat leaves,
//! and a busy server hosts many repositories with near-identical
//! reliability settings. [`BoundsCache`] memoizes those inversions with
//! a process-wide instance ([`BoundsCache::global`]) threaded through
//! the sample-size estimator ([`crate::SampleSizeEstimator`]), the
//! clause/formula recursion ([`crate::estimator::formula_sample_size`]),
//! and — via the estimator — the engine ([`crate::CiEngine`]).
//!
//! # Sharding
//!
//! The map is split into [`BoundsCache::SHARDS`] independently locked
//! shards selected by the key's hash, so the parallel batch-inversion
//! path ([`crate::SampleSizeEstimator::exact_sample_size_grid`]) and
//! concurrent serving threads don't serialize on one `RwLock`. The
//! global entry budget stays [`BoundsCache::MAX_ENTRIES`], enforced
//! per-shard (each shard clears itself at `MAX_ENTRIES / SHARDS`
//! entries, so the total can never exceed the global cap).
//!
//! # Key quantization
//!
//! Keys quantize the floating-point inputs by zeroing the bottom 8
//! mantissa bits (a relative grain of 2⁻⁴⁴ ≈ 6·10⁻¹⁴). Inputs that
//! differ by less than the grain share an entry; such perturbations are
//! far below the precision at which the inverted bounds themselves are
//! meaningful, and the quantization makes hit rates robust to benign
//! last-ulp differences in how callers derive `ln δ` (e.g.
//! `ln(δ/k)` vs `ln δ − ln k`).
//!
//! # The plan-level cache
//!
//! `BoundsCache` memoizes *leaf* inversions, but a full estimator query
//! also runs the §4 pattern plan search (Bennett inversions, the Pattern
//! 3 coarse-tolerance scan, budget accounting) that the leaf cache does
//! not cover — measured at ~35 ms per fresh `easeml-serve` registration.
//! [`PlanCache`] memoizes the *entire* [`crate::SampleSizeEstimate`],
//! keyed by a canonicalized script fingerprint
//! ([`crate::estimator::plan_fingerprint`]: formula structure, δ, steps,
//! adaptivity, mode, and every estimator knob), with the same 16-way
//! sharding, global entry cap, and versioned/checksummed persistence
//! format as `BoundsCache` — so re-registering a known script costs a
//! map lookup, the same as a warm commit.

use crate::estimator::SampleSizeEstimate;
use easeml_bounds::{BoundsError, Tail};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Which inversion an entry caches (part of the key, so differently
/// shaped bounds never collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// [`easeml_bounds::exact_binomial_sample_size`].
    ExactBinomialSampleSize,
}

impl BoundKind {
    /// Stable single-byte wire code (on-disk contract: never renumber).
    fn code(self) -> u8 {
        match self {
            BoundKind::ExactBinomialSampleSize => 0,
        }
    }

    fn from_code(code: u8) -> Option<BoundKind> {
        match code {
            0 => Some(BoundKind::ExactBinomialSampleSize),
            _ => None,
        }
    }
}

/// Why a persisted cache file was rejected by [`BoundsCache::load_from`].
#[derive(Debug)]
pub enum CachePersistError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file is not a well-formed cache dump: wrong magic/version,
    /// malformed entry, count mismatch, or checksum failure. Nothing is
    /// loaded from a corrupt file.
    Corrupt {
        /// 1-based line where the corruption was detected.
        line: usize,
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for CachePersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CachePersistError::Io(e) => write!(f, "bounds cache I/O error: {e}"),
            CachePersistError::Corrupt { line, reason } => {
                write!(f, "bounds cache file corrupt at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CachePersistError {}

impl From<std::io::Error> for CachePersistError {
    fn from(e: std::io::Error) -> Self {
        CachePersistError::Io(e)
    }
}

/// Magic + version line of the on-disk format (see [`BoundsCache::save_to`]).
const PERSIST_MAGIC: &str = "easeml-bounds-cache v1";

/// FNV-1a over the entry block, the integrity check of the on-disk format.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether an estimator consults the shared caches — both the
/// leaf-level [`BoundsCache`] and the whole-result [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// Use [`BoundsCache::global`] and [`PlanCache::global`] (the
    /// default).
    #[default]
    Shared,
    /// Recompute everything at every layer; used by tests and ablation
    /// benches.
    Bypass,
}

/// Zero the bottom 8 mantissa bits: the cache's quantization grain.
fn quantize(x: f64) -> u64 {
    x.to_bits() & !0xFF
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    kind: BoundKind,
    tail: Tail,
    eps: u64,
    ln_delta: u64,
}

impl Key {
    fn new(kind: BoundKind, tail: Tail, eps: f64, ln_delta: f64) -> Self {
        Key {
            kind,
            tail,
            eps: quantize(eps),
            ln_delta: quantize(ln_delta),
        }
    }

    /// Shard index: high bits of the sip-hashed key (the low bits pick
    /// the bucket inside the shard's map, so reusing them would skew the
    /// shard distribution).
    fn shard(&self) -> usize {
        let mut hasher = std::hash::DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() >> 32) as usize % BoundsCache::SHARDS
    }
}

/// Point-in-time cache counters (see [`BoundsCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored (summed over shards).
    pub entries: usize,
}

/// Thread-safe, sharded memo of bound inversions keyed by quantized
/// `(kind, tail, ε, ln δ)`.
///
/// Reads take one shard's shared lock; a miss computes *outside* any
/// lock (so a slow inversion never blocks readers) and then races
/// benignly to insert — both contenders compute identical values.
#[derive(Debug)]
pub struct BoundsCache {
    shards: Vec<RwLock<HashMap<Key, u64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for BoundsCache {
    fn default() -> Self {
        BoundsCache {
            shards: (0..Self::SHARDS).map(|_| RwLock::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl BoundsCache {
    /// Number of independently locked shards. A power of two comfortably
    /// above the worker counts the workspace runs, so parallel batch
    /// inversion almost never contends on a shard lock.
    pub const SHARDS: usize = 16;

    /// Upper bound on stored entries across all shards.
    ///
    /// The key space is user-controlled on a serving path (every distinct
    /// script tolerance/reliability is a fresh `(ε, ln δ)` pair), so the
    /// process-wide instance must not grow without bound. Each shard
    /// drops its map at `MAX_ENTRIES / SHARDS` entries — always correct
    /// for a cache, and a full sweep of 2¹⁶ distinct inversions re-warms
    /// in well under a minute.
    pub const MAX_ENTRIES: usize = 1 << 16;

    /// A fresh, empty cache (useful for isolation in tests; production
    /// code shares [`BoundsCache::global`]).
    #[must_use]
    pub fn new() -> Self {
        BoundsCache::default()
    }

    /// The process-wide shared instance.
    pub fn global() -> &'static BoundsCache {
        static GLOBAL: OnceLock<BoundsCache> = OnceLock::new();
        GLOBAL.get_or_init(BoundsCache::new)
    }

    /// Cached inversion for `(kind, tail, eps, ln_delta)`, if present.
    /// Counts toward the hit/miss statistics.
    pub fn lookup(&self, kind: BoundKind, tail: Tail, eps: f64, ln_delta: f64) -> Option<u64> {
        let key = Key::new(kind, tail, eps, ln_delta);
        let found = self.shards[key.shard()]
            .read()
            .expect("bounds cache poisoned")
            .get(&key)
            .copied();
        match found {
            Some(n) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(n)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a computed inversion (see [`BoundsCache::lookup`]).
    pub fn store(&self, kind: BoundKind, tail: Tail, eps: f64, ln_delta: f64, n: u64) {
        let key = Key::new(kind, tail, eps, ln_delta);
        let mut shard = self.shards[key.shard()]
            .write()
            .expect("bounds cache poisoned");
        if shard.len() >= Self::MAX_ENTRIES / Self::SHARDS {
            shard.clear();
        }
        shard.insert(key, n);
    }

    /// Look up the `(kind, tail, eps, ln_delta)` inversion, computing and
    /// storing it on a miss.
    ///
    /// Only successful computations are cached; errors always propagate
    /// and are re-derived on the next call.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns.
    pub fn sample_size_with(
        &self,
        kind: BoundKind,
        tail: Tail,
        eps: f64,
        ln_delta: f64,
        compute: impl FnOnce() -> Result<u64, BoundsError>,
    ) -> Result<u64, BoundsError> {
        if let Some(n) = self.lookup(kind, tail, eps, ln_delta) {
            return Ok(n);
        }
        let n = compute()?;
        self.store(kind, tail, eps, ln_delta, n);
        Ok(n)
    }

    /// Current hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("bounds cache poisoned").len())
                .sum(),
        }
    }

    /// Drop all entries (counters are kept; mainly for tests).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("bounds cache poisoned").clear();
        }
    }

    /// Persist every cached inversion to `path` so a later process can
    /// start warm ([`BoundsCache::load_from`]).
    ///
    /// The format is versioned, line-oriented text:
    ///
    /// ```text
    /// easeml-bounds-cache v1 count=<entries>
    /// <kind> <tail> <eps_bits:016x> <ln_delta_bits:016x> <n>
    /// ...
    /// checksum=<fnv1a64 over the entry block:016x>
    /// ```
    ///
    /// Entries are sorted by key, so the same cache contents always
    /// produce the same bytes. The file is written to a temporary sibling
    /// and renamed into place, so readers never observe a half-written
    /// dump. Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// Any I/O failure while writing.
    pub fn save_to(&self, path: &Path) -> Result<usize, CachePersistError> {
        let mut entries: Vec<(Key, u64)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().expect("bounds cache poisoned");
            entries.extend(shard.iter().map(|(k, v)| (*k, *v)));
        }
        entries.sort_by_key(|(k, _)| (k.kind.code(), k.tail.code(), k.eps, k.ln_delta));
        let lines: Vec<String> = entries
            .iter()
            .map(|(key, n)| {
                format!(
                    "{} {} {:016x} {:016x} {}",
                    key.kind.code(),
                    key.tail.code(),
                    key.eps,
                    key.ln_delta,
                    n,
                )
            })
            .collect();
        save_dump(path, PERSIST_MAGIC, &lines)
    }

    /// Load a dump written by [`BoundsCache::save_to`] into this cache,
    /// returning the number of entries loaded.
    ///
    /// Parsing is strict: a wrong magic/version line, a malformed entry,
    /// an entry-count mismatch, or a checksum failure rejects the whole
    /// file with [`CachePersistError::Corrupt`] and loads nothing — a
    /// damaged dump must never seed wrong sample sizes. Loaded entries
    /// are inserted through the normal capacity-enforcing path and do not
    /// count toward hit/miss statistics.
    ///
    /// # Errors
    ///
    /// [`CachePersistError::Io`] on read failure (including a missing
    /// file — callers that treat absence as a cold start should check
    /// existence first), [`CachePersistError::Corrupt`] on any format
    /// violation.
    pub fn load_from(&self, path: &Path) -> Result<usize, CachePersistError> {
        let entries = load_dump(path, PERSIST_MAGIC, |line| {
            let mut fields = line.split(' ');
            let mut next =
                |what: &str| fields.next().ok_or_else(|| format!("missing {what} field"));
            let kind = next("kind")?
                .parse::<u8>()
                .ok()
                .and_then(BoundKind::from_code)
                .ok_or_else(|| "unknown bound kind".to_owned())?;
            let tail = next("tail")?
                .parse::<u8>()
                .ok()
                .and_then(Tail::from_code)
                .ok_or_else(|| "unknown tail code".to_owned())?;
            let eps = u64::from_str_radix(next("eps")?, 16)
                .map_err(|_| "unparsable eps bits".to_owned())?;
            let ln_delta = u64::from_str_radix(next("ln_delta")?, 16)
                .map_err(|_| "unparsable ln_delta bits".to_owned())?;
            let n = next("n")?
                .parse::<u64>()
                .map_err(|_| "unparsable sample size".to_owned())?;
            if fields.next().is_some() {
                return Err("trailing fields".to_owned());
            }
            Ok((
                Key {
                    kind,
                    tail,
                    eps,
                    ln_delta,
                },
                n,
            ))
        })?;
        let loaded = entries.len();
        for (key, n) in entries {
            let mut shard = self.shards[key.shard()]
                .write()
                .expect("bounds cache poisoned");
            if shard.len() >= Self::MAX_ENTRIES / Self::SHARDS {
                shard.clear();
            }
            shard.insert(key, n);
        }
        Ok(loaded)
    }
}

/// Write one versioned, checksummed cache dump — the shared persistence
/// engine behind [`BoundsCache::save_to`] and [`PlanCache::save_to`]:
///
/// ```text
/// <magic> count=<entries>
/// <one pre-encoded entry per line>
/// checksum=<fnv1a64 over the entry block:016x>
/// ```
///
/// The file is written to a temporary sibling and renamed into place, so
/// readers never observe a half-written dump. Returns the entry count.
fn save_dump(path: &Path, magic: &str, lines: &[String]) -> Result<usize, CachePersistError> {
    let mut body = String::new();
    for line in lines {
        use std::fmt::Write as _;
        let _ = writeln!(body, "{line}");
    }
    let text = format!(
        "{magic} count={}\n{body}checksum={:016x}\n",
        lines.len(),
        fnv1a64(body.as_bytes()),
    );
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(lines.len())
}

/// Strictly parse a dump written by [`save_dump`]: a wrong magic/version
/// line, a malformed entry (`decode` returns the reason), an entry-count
/// mismatch, or a checksum failure rejects the whole file with
/// [`CachePersistError::Corrupt`] — nothing is returned from a corrupt
/// dump. The header's count is validated against the parsed entries, so
/// it is never trusted for an allocation.
fn load_dump<E>(
    path: &Path,
    magic: &str,
    mut decode: impl FnMut(&str) -> Result<E, String>,
) -> Result<Vec<E>, CachePersistError> {
    let text = std::fs::read_to_string(path)?;
    let corrupt = |line: usize, reason: &str| CachePersistError::Corrupt {
        line,
        reason: reason.to_owned(),
    };
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| corrupt(1, "empty file"))?;
    let count: usize = header
        .strip_prefix(magic)
        .and_then(|rest| rest.strip_prefix(" count="))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| corrupt(1, "bad magic/version header"))?;
    let mut entries: Vec<E> = Vec::new();
    let mut body = String::new();
    let mut checksum: Option<u64> = None;
    let mut last_line = 1;
    for (idx, line) in lines {
        last_line = idx + 1;
        if let Some(sum) = line.strip_prefix("checksum=") {
            checksum = Some(
                u64::from_str_radix(sum, 16)
                    .map_err(|_| corrupt(last_line, "unparsable checksum"))?,
            );
            break;
        }
        entries.push(decode(line).map_err(|reason| corrupt(last_line, &reason))?);
        use std::fmt::Write as _;
        let _ = writeln!(body, "{line}");
    }
    let checksum = checksum.ok_or_else(|| corrupt(last_line, "missing checksum line"))?;
    if entries.len() != count {
        return Err(corrupt(
            last_line,
            &format!("header promised {count} entries, found {}", entries.len()),
        ));
    }
    if fnv1a64(body.as_bytes()) != checksum {
        return Err(corrupt(last_line, "checksum mismatch"));
    }
    Ok(entries)
}

/// 128-bit FNV-1a, the fingerprint hash of the plan cache. 64 bits would
/// make accidental collisions plausible over a long-lived server's key
/// stream; at 128 bits a collision (which would silently serve a wrong
/// plan) is out of reach.
fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    h
}

/// Canonicalized identity of one plan-search query: the 128-bit FNV-1a
/// fingerprint of the canonical description string built by
/// [`crate::estimator::plan_fingerprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint(u128);

impl PlanFingerprint {
    /// Fingerprint of a canonical description string.
    #[must_use]
    pub fn of(canonical: &str) -> PlanFingerprint {
        PlanFingerprint(fnv1a128(canonical.as_bytes()))
    }

    /// Shard index (high bits; independent of the map's bucket choice).
    fn shard(self) -> usize {
        (self.0 >> 96) as usize % PlanCache::SHARDS
    }
}

/// Magic + version line of the plan cache's on-disk format.
const PLAN_PERSIST_MAGIC: &str = "easeml-plan-cache v1";

/// Thread-safe, sharded memo of whole plan-search results
/// ([`SampleSizeEstimate`]) keyed by [`PlanFingerprint`].
///
/// Structurally a sibling of [`BoundsCache`]: 16 hash-picked `RwLock`
/// shards, a global entry cap enforced per-shard (each shard clears
/// itself at `MAX_ENTRIES / SHARDS`), hit/miss counters, and the same
/// versioned, checksummed, sorted, atomically-written persistence format
/// ([`PlanCache::save_to`] / [`PlanCache::load_from`]). Values are full
/// estimates — provenance and per-clause breakdown included — so a
/// cache hit is indistinguishable from a recomputation.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<RwLock<HashMap<PlanFingerprint, SampleSizeEstimate>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache {
            shards: (0..Self::SHARDS).map(|_| RwLock::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl PlanCache {
    /// Number of independently locked shards (same geometry as
    /// [`BoundsCache::SHARDS`]).
    pub const SHARDS: usize = 16;

    /// Upper bound on stored entries across all shards. Plans are a few
    /// hundred bytes each (an order of magnitude heavier than a bounds
    /// entry), and distinct *scripts* arrive far more slowly than
    /// distinct `(ε, δ)` leaves, so the cap is correspondingly smaller:
    /// 2¹² plans ≈ a few MB worst case.
    pub const MAX_ENTRIES: usize = 1 << 12;

    /// A fresh, empty cache (tests; production shares
    /// [`PlanCache::global`]).
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The process-wide shared instance.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    /// Cached estimate for `fingerprint`, if present. Counts toward the
    /// hit/miss statistics.
    pub fn lookup(&self, fingerprint: PlanFingerprint) -> Option<SampleSizeEstimate> {
        let found = self.shards[fingerprint.shard()]
            .read()
            .expect("plan cache poisoned")
            .get(&fingerprint)
            .cloned();
        match found {
            Some(est) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(est)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a computed estimate (see [`PlanCache::lookup`]).
    pub fn store(&self, fingerprint: PlanFingerprint, estimate: SampleSizeEstimate) {
        let mut shard = self.shards[fingerprint.shard()]
            .write()
            .expect("plan cache poisoned");
        if shard.len() >= Self::MAX_ENTRIES / Self::SHARDS {
            shard.clear();
        }
        shard.insert(fingerprint, estimate);
    }

    /// Current hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("plan cache poisoned").len())
                .sum(),
        }
    }

    /// Drop all entries (counters are kept; mainly for tests).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("plan cache poisoned").clear();
        }
    }

    /// Persist every cached plan to `path` so a later process can start
    /// warm ([`PlanCache::load_from`]).
    ///
    /// Same structure as [`BoundsCache::save_to`] — versioned header,
    /// one entry per line, FNV-checksummed body, sorted keys (equal
    /// contents give byte-identical dumps), atomic temp-file + rename:
    ///
    /// ```text
    /// easeml-plan-cache v1 count=<entries>
    /// <fingerprint:032x> <wire-encoded estimate>
    /// ...
    /// checksum=<fnv1a64 over the entry block:016x>
    /// ```
    ///
    /// Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// Any I/O failure while writing.
    pub fn save_to(&self, path: &Path) -> Result<usize, CachePersistError> {
        let mut entries: Vec<(PlanFingerprint, SampleSizeEstimate)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().expect("plan cache poisoned");
            entries.extend(shard.iter().map(|(k, v)| (*k, v.clone())));
        }
        entries.sort_by_key(|(k, _)| *k);
        let lines: Vec<String> = entries
            .iter()
            .map(|(key, estimate)| format!("{:032x} {}", key.0, estimate.encode_wire()))
            .collect();
        save_dump(path, PLAN_PERSIST_MAGIC, &lines)
    }

    /// Load a dump written by [`PlanCache::save_to`], returning the
    /// number of entries loaded.
    ///
    /// Parsing is strict, like [`BoundsCache::load_from`]: wrong
    /// magic/version, a malformed fingerprint or estimate encoding, an
    /// entry-count mismatch, or a checksum failure rejects the whole
    /// file and loads nothing — a damaged dump must never seed wrong
    /// plans. Loaded entries go through the capacity-enforcing path and
    /// do not count toward hit/miss statistics.
    ///
    /// # Errors
    ///
    /// [`CachePersistError::Io`] on read failure,
    /// [`CachePersistError::Corrupt`] on any format violation.
    pub fn load_from(&self, path: &Path) -> Result<usize, CachePersistError> {
        let entries = load_dump(path, PLAN_PERSIST_MAGIC, |line| {
            let (fp, blob) = line
                .split_once(' ')
                .ok_or_else(|| "missing estimate field".to_owned())?;
            let fp =
                u128::from_str_radix(fp, 16).map_err(|_| "unparsable fingerprint".to_owned())?;
            let estimate = SampleSizeEstimate::decode_wire(blob)
                .ok_or_else(|| "unparsable estimate encoding".to_owned())?;
            Ok((PlanFingerprint(fp), estimate))
        })?;
        let loaded = entries.len();
        for (key, estimate) in entries {
            let mut shard = self.shards[key.shard()]
                .write()
                .expect("plan cache poisoned");
            if shard.len() >= Self::MAX_ENTRIES / Self::SHARDS {
                shard.clear();
            }
            shard.insert(key, estimate);
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let cache = BoundsCache::new();
        let mut computed = 0u32;
        for _ in 0..3 {
            let n = cache
                .sample_size_with(
                    BoundKind::ExactBinomialSampleSize,
                    Tail::TwoSided,
                    0.05,
                    (0.001f64).ln(),
                    || {
                        computed += 1;
                        Ok(2_500)
                    },
                )
                .unwrap();
            assert_eq!(n, 2_500);
        }
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = BoundsCache::new();
        let err = cache.sample_size_with(
            BoundKind::ExactBinomialSampleSize,
            Tail::TwoSided,
            0.05,
            -3.0,
            || Err(BoundsError::ZeroSampleSize),
        );
        assert!(err.is_err());
        assert_eq!(cache.stats().entries, 0);
        // The next call recomputes and may succeed.
        let ok = cache.sample_size_with(
            BoundKind::ExactBinomialSampleSize,
            Tail::TwoSided,
            0.05,
            -3.0,
            || Ok(7),
        );
        assert_eq!(ok.unwrap(), 7);
    }

    #[test]
    fn quantization_merges_last_ulp_noise_but_separates_real_inputs() {
        let cache = BoundsCache::new();
        let base = 0.05f64;
        let wiggled = f64::from_bits(base.to_bits() + 3); // ~1e-18 apart
        let k = BoundKind::ExactBinomialSampleSize;
        cache
            .sample_size_with(k, Tail::TwoSided, base, -5.0, || Ok(1))
            .unwrap();
        let hit = cache
            .sample_size_with(k, Tail::TwoSided, wiggled, -5.0, || Ok(2))
            .unwrap();
        assert_eq!(hit, 1, "sub-grain wiggle must share the entry");
        let other = cache
            .sample_size_with(k, Tail::TwoSided, 0.06, -5.0, || Ok(3))
            .unwrap();
        assert_eq!(other, 3, "distinct eps must get its own entry");
        // Distinct tails are distinct keys.
        let one_sided = cache
            .sample_size_with(k, Tail::OneSided, base, -5.0, || Ok(4))
            .unwrap();
        assert_eq!(one_sided, 4);
    }

    #[test]
    fn entry_count_is_bounded() {
        let cache = BoundsCache::new();
        let base = 0.05f64.to_bits();
        // One more distinct quantized key than the cap: overflow inserts
        // must drop shards instead of growing past MAX_ENTRIES.
        for i in 0..=BoundsCache::MAX_ENTRIES as u64 {
            let eps = f64::from_bits(base + (i << 8));
            cache
                .sample_size_with(
                    BoundKind::ExactBinomialSampleSize,
                    Tail::TwoSided,
                    eps,
                    -5.0,
                    || Ok(i),
                )
                .unwrap();
        }
        let entries = cache.stats().entries;
        assert!(
            (1..=BoundsCache::MAX_ENTRIES).contains(&entries),
            "entries = {entries}"
        );
    }

    #[test]
    fn keys_spread_across_shards() {
        // Realistic Figure-2-style keys must not all hash to one shard
        // (the whole point of sharding the lock).
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let eps = 0.01 + i as f64 * 0.005;
            let key = Key::new(
                BoundKind::ExactBinomialSampleSize,
                Tail::TwoSided,
                eps,
                -6.0,
            );
            seen.insert(key.shard());
        }
        assert!(
            seen.len() >= BoundsCache::SHARDS / 2,
            "64 distinct keys landed in only {} shards",
            seen.len()
        );
    }

    #[test]
    fn lookup_store_roundtrip() {
        let cache = BoundsCache::new();
        let k = BoundKind::ExactBinomialSampleSize;
        assert_eq!(cache.lookup(k, Tail::TwoSided, 0.05, -7.0), None);
        cache.store(k, Tail::TwoSided, 0.05, -7.0, 123);
        assert_eq!(cache.lookup(k, Tail::TwoSided, 0.05, -7.0), Some(123));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("easeml-cache-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_round_trip_preserves_entries() {
        let cache = BoundsCache::new();
        let k = BoundKind::ExactBinomialSampleSize;
        let cases = [
            (Tail::TwoSided, 0.05, -5.0, 2_500),
            (Tail::TwoSided, 0.025, -9.2, 11_093),
            (Tail::OneSided, 0.1, -4.6, 271),
        ];
        for &(tail, eps, ln_delta, n) in &cases {
            cache.store(k, tail, eps, ln_delta, n);
        }
        let path = temp_path("roundtrip.v1");
        assert_eq!(cache.save_to(&path).unwrap(), cases.len());

        let restored = BoundsCache::new();
        assert_eq!(restored.load_from(&path).unwrap(), cases.len());
        for &(tail, eps, ln_delta, n) in &cases {
            assert_eq!(restored.lookup(k, tail, eps, ln_delta), Some(n));
        }
        // Same contents → byte-identical dump (entries are sorted).
        let path2 = temp_path("roundtrip2.v1");
        restored.save_to(&path2).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap()
        );
        std::fs::remove_file(path).unwrap();
        std::fs::remove_file(path2).unwrap();
    }

    #[test]
    fn corrupt_files_are_rejected_and_load_nothing() {
        let cache = BoundsCache::new();
        cache.store(
            BoundKind::ExactBinomialSampleSize,
            Tail::TwoSided,
            0.05,
            -5.0,
            2_500,
        );
        let path = temp_path("corrupt.v1");
        cache.save_to(&path).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();

        let corruptions: &[(&str, String)] = &[
            ("bad magic", good.replacen("easeml-bounds-cache", "x", 1)),
            ("future version", good.replacen("v1", "v9", 1)),
            ("flipped sample size", good.replacen("2500", "9999", 1)),
            ("unknown tail code", good.replacen("0 2 ", "0 7 ", 1)),
            ("unknown kind code", good.replacen("0 2 ", "3 2 ", 1)),
            ("count mismatch", good.replacen("count=1", "count=2", 1)),
            (
                "missing checksum",
                good.lines().next().unwrap().to_owned() + "\n",
            ),
            ("truncated", good[..good.len() / 2].to_owned()),
            ("empty", String::new()),
        ];
        for (what, text) in corruptions {
            std::fs::write(&path, text).unwrap();
            let fresh = BoundsCache::new();
            let err = fresh.load_from(&path);
            assert!(
                matches!(err, Err(CachePersistError::Corrupt { .. })),
                "{what}: expected Corrupt, got {err:?}"
            );
            assert_eq!(fresh.stats().entries, 0, "{what}: must load nothing");
        }
        // A missing file is an I/O error, not a corruption.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            BoundsCache::new().load_from(&path),
            Err(CachePersistError::Io(_))
        ));
    }

    #[test]
    fn persisted_entries_serve_sample_size_with() {
        // The whole point: a warm dump short-circuits the expensive
        // compute closure in a fresh process.
        let cache = BoundsCache::new();
        cache.store(
            BoundKind::ExactBinomialSampleSize,
            Tail::TwoSided,
            0.05,
            (0.001f64).ln(),
            4_242,
        );
        let path = temp_path("warm.v1");
        cache.save_to(&path).unwrap();
        let restored = BoundsCache::new();
        restored.load_from(&path).unwrap();
        let n = restored
            .sample_size_with(
                BoundKind::ExactBinomialSampleSize,
                Tail::TwoSided,
                0.05,
                (0.001f64).ln(),
                || panic!("warm cache must not recompute"),
            )
            .unwrap();
        assert_eq!(n, 4_242);
        std::fs::remove_file(path).unwrap();
    }

    use crate::estimator::{
        ActiveLabelingSchedule, EstimateProvenance, HierarchicalPlan, OptimizedPlan, PhaseEstimate,
    };

    fn baseline_estimate(labeled: u64) -> SampleSizeEstimate {
        SampleSizeEstimate {
            labeled_samples: labeled,
            unlabeled_samples: 0,
            ln_delta_per_test: -9.21,
            provenance: EstimateProvenance::Baseline,
            per_clause: Vec::new(),
        }
    }

    fn optimized_estimate() -> SampleSizeEstimate {
        let phase = |samples: u64, eps: f64| PhaseEstimate {
            samples,
            needs_labels: samples.is_multiple_of(2),
            epsilon: eps,
            ln_delta: -12.5,
        };
        SampleSizeEstimate {
            labeled_samples: 29_048,
            unlabeled_samples: 2_302,
            ln_delta_per_test: -13.8,
            provenance: EstimateProvenance::Optimized(OptimizedPlan::Hierarchical(
                HierarchicalPlan {
                    filter: phase(2_302, 0.01),
                    test: phase(29_048, 0.01),
                    variance_bound: 0.1,
                    active: ActiveLabelingSchedule {
                        pool_size: 29_048,
                        labels_per_commit: 2_188,
                        worst_case_total_labels: 92_960,
                    },
                },
            )),
            per_clause: Vec::new(),
        }
    }

    #[test]
    fn plan_cache_miss_then_hit_returns_identical_estimate() {
        let cache = PlanCache::new();
        let fp = PlanFingerprint::of("formula=n > 0.8 +/- 0.05;delta=…");
        assert_eq!(cache.lookup(fp), None);
        let est = optimized_estimate();
        cache.store(fp, est.clone());
        assert_eq!(cache.lookup(fp), Some(est));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // A different canonical string is a different key.
        assert_eq!(cache.lookup(PlanFingerprint::of("other")), None);
    }

    #[test]
    fn plan_cache_save_load_round_trip() {
        let cache = PlanCache::new();
        cache.store(PlanFingerprint::of("a"), baseline_estimate(6_279));
        cache.store(PlanFingerprint::of("b"), optimized_estimate());
        let path = temp_path("plan-roundtrip.v1");
        assert_eq!(cache.save_to(&path).unwrap(), 2);

        let restored = PlanCache::new();
        assert_eq!(restored.load_from(&path).unwrap(), 2);
        assert_eq!(
            restored.lookup(PlanFingerprint::of("a")),
            Some(baseline_estimate(6_279))
        );
        assert_eq!(
            restored.lookup(PlanFingerprint::of("b")),
            Some(optimized_estimate())
        );
        // Same contents → byte-identical dump (entries are sorted).
        let path2 = temp_path("plan-roundtrip2.v1");
        restored.save_to(&path2).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap()
        );
        std::fs::remove_file(path).unwrap();
        std::fs::remove_file(path2).unwrap();
    }

    #[test]
    fn plan_cache_rejects_corrupt_dumps() {
        let cache = PlanCache::new();
        cache.store(PlanFingerprint::of("a"), baseline_estimate(6_279));
        let path = temp_path("plan-corrupt.v1");
        cache.save_to(&path).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();

        let corruptions: &[(&str, String)] = &[
            ("bad magic", good.replacen("easeml-plan-cache", "x", 1)),
            ("future version", good.replacen("v1", "v9", 1)),
            ("flipped sample count", good.replacen("6279", "9999", 1)),
            ("count mismatch", good.replacen("count=1", "count=2", 1)),
            ("mangled provenance", good.replacen(";B;", ";Q;", 1)),
            (
                "missing checksum",
                good.lines().next().unwrap().to_owned() + "\n",
            ),
            ("truncated", good[..good.len() / 2].to_owned()),
            ("empty", String::new()),
        ];
        for (what, text) in corruptions {
            std::fs::write(&path, text).unwrap();
            let fresh = PlanCache::new();
            let err = fresh.load_from(&path);
            assert!(
                matches!(err, Err(CachePersistError::Corrupt { .. })),
                "{what}: expected Corrupt, got {err:?}"
            );
            assert_eq!(fresh.stats().entries, 0, "{what}: must load nothing");
        }
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            PlanCache::new().load_from(&path),
            Err(CachePersistError::Io(_))
        ));
    }

    #[test]
    fn plan_cache_entry_count_is_bounded() {
        let cache = PlanCache::new();
        for i in 0..=PlanCache::MAX_ENTRIES as u64 {
            cache.store(
                PlanFingerprint::of(&format!("key-{i}")),
                baseline_estimate(i),
            );
        }
        let entries = cache.stats().entries;
        assert!(
            (1..=PlanCache::MAX_ENTRIES).contains(&entries),
            "entries = {entries}"
        );
    }

    #[test]
    fn cache_is_send_sync_and_concurrent() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BoundsCache>();
        let cache = std::sync::Arc::new(BoundsCache::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let eps = 0.01 + ((t * 7 + i) % 5) as f64 * 0.01;
                        let n = cache
                            .sample_size_with(
                                BoundKind::ExactBinomialSampleSize,
                                Tail::TwoSided,
                                eps,
                                -6.0,
                                || Ok((eps * 1e6) as u64),
                            )
                            .unwrap();
                        assert_eq!(n, (eps * 1e6) as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().entries, 5);
    }
}

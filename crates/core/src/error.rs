//! Error types for the ease.ml/ci core crate.

use easeml_bounds::BoundsError;
use std::error::Error;
use std::fmt;

/// Top-level error type for the core crate.
///
/// Every public fallible operation returns this type, so that a CI driver
/// can report parse errors, estimation failures, and engine misuse
/// uniformly to the user.
#[derive(Debug, Clone, PartialEq)]
pub enum CiError {
    /// The condition text failed to tokenize or parse.
    Parse(ParseError),
    /// The script file (`.travis.yml` + `ml:` section) is malformed.
    Script(ScriptError),
    /// A semantic constraint on the parsed condition was violated
    /// (non-linear expression, bad tolerance, empty formula, ...).
    Semantic(String),
    /// A sample-size bound rejected its parameters.
    Bounds(BoundsError),
    /// The engine was driven outside its contract (commit after budget
    /// exhaustion, mismatched prediction lengths, ...).
    Engine(EngineError),
}

impl fmt::Display for CiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CiError::Parse(e) => write!(f, "condition parse error: {e}"),
            CiError::Script(e) => write!(f, "script error: {e}"),
            CiError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            CiError::Bounds(e) => write!(f, "bound computation failed: {e}"),
            CiError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl Error for CiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CiError::Parse(e) => Some(e),
            CiError::Script(e) => Some(e),
            CiError::Bounds(e) => Some(e),
            CiError::Engine(e) => Some(e),
            CiError::Semantic(_) => None,
        }
    }
}

impl From<ParseError> for CiError {
    fn from(e: ParseError) -> Self {
        CiError::Parse(e)
    }
}

impl From<ScriptError> for CiError {
    fn from(e: ScriptError) -> Self {
        CiError::Script(e)
    }
}

impl From<BoundsError> for CiError {
    fn from(e: BoundsError) -> Self {
        CiError::Bounds(e)
    }
}

impl From<EngineError> for CiError {
    fn from(e: EngineError) -> Self {
        CiError::Engine(e)
    }
}

/// Error produced while tokenizing or parsing a condition string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the condition text where the error was detected.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    /// Create a parse error at `offset` with the given message.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at offset {})", self.message, self.offset)
    }
}

impl Error for ParseError {}

/// Error produced while reading the `ml:` section of a CI script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number in the script, when known.
    pub line: Option<usize>,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ScriptError {
    /// Create a script error with no line attribution.
    pub fn new(message: impl Into<String>) -> Self {
        ScriptError {
            line: None,
            message: message.into(),
        }
    }

    /// Create a script error attributed to a 1-based line number.
    pub fn at_line(line: usize, message: impl Into<String>) -> Self {
        ScriptError {
            line: Some(line),
            message: message.into(),
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{} (line {line})", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl Error for ScriptError {}

/// Error produced by the CI engine at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A commit was submitted after the testset budget was exhausted (and
    /// no fresh testset was installed).
    BudgetExhausted {
        /// The configured number of steps the testset supports.
        steps: u32,
    },
    /// The commit's prediction vector length does not match the testset.
    PredictionLengthMismatch {
        /// Number of predictions supplied by the commit.
        got: usize,
        /// Number of examples in the testset.
        want: usize,
    },
    /// The supplied testset is smaller than the sample-size estimate
    /// demands for the configured condition.
    TestsetTooSmall {
        /// Number of examples supplied.
        got: usize,
        /// Number of examples required.
        want: u64,
    },
    /// A label oracle failed to produce a label for the given index.
    LabelUnavailable {
        /// Index of the testset item that could not be labelled.
        index: usize,
    },
    /// The engine has retired the current testset (hybrid adaptivity) and
    /// needs a fresh one before accepting more commits.
    TestsetRetired,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BudgetExhausted { steps } => {
                write!(
                    f,
                    "testset budget of {steps} evaluations is exhausted; provide a fresh testset"
                )
            }
            EngineError::PredictionLengthMismatch { got, want } => {
                write!(
                    f,
                    "commit supplied {got} predictions but the testset has {want} examples"
                )
            }
            EngineError::TestsetTooSmall { got, want } => {
                write!(
                    f,
                    "testset has {got} examples but the condition requires {want}"
                )
            }
            EngineError::LabelUnavailable { index } => {
                write!(f, "no label available for testset item {index}")
            }
            EngineError::TestsetRetired => {
                write!(
                    f,
                    "the current testset is retired; install a fresh testset to continue"
                )
            }
        }
    }
}

impl Error for EngineError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_chains() {
        let err = CiError::from(ParseError::new(7, "unexpected token `/`"));
        assert!(err.to_string().contains("unexpected token"));
        assert!(err.to_string().contains("offset 7"));
        assert!(err.source().is_some());
    }

    #[test]
    fn script_error_line_attribution() {
        let err = ScriptError::at_line(3, "missing `condition` key");
        assert!(err.to_string().contains("line 3"));
        let err = ScriptError::new("empty script");
        assert_eq!(err.to_string(), "empty script");
    }

    #[test]
    fn engine_error_messages() {
        let e = EngineError::BudgetExhausted { steps: 32 };
        assert!(e.to_string().contains("32"));
        let e = EngineError::PredictionLengthMismatch { got: 10, want: 20 };
        assert!(e.to_string().contains("10") && e.to_string().contains("20"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CiError>();
    }
}

//! Practicality analysis (§2.3): translating sample counts into human
//! labelling effort.
//!
//! The paper calibrates "practical" as 30 000–60 000 labels per 32 model
//! evaluations: what 2–4 engineers can label in one 8-hour day at 2
//! seconds per label, supporting roughly one commit per day for a month.

use std::fmt;
use std::time::Duration;

/// A labelling-cost model: people, pace, and working hours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Number of people labelling.
    pub labelers: u32,
    /// Seconds each label takes one person.
    pub seconds_per_label: f64,
    /// Working hours per day per person.
    pub hours_per_day: f64,
}

impl CostModel {
    /// The paper's reference team: 2 engineers, 2 s/label, 8 h days.
    #[must_use]
    pub fn paper_default() -> Self {
        CostModel {
            labelers: 2,
            seconds_per_label: 2.0,
            hours_per_day: 8.0,
        }
    }

    /// The §4.1.2 interactive-labelling setting: 5 s/label with a
    /// well-designed interface, one labeller.
    #[must_use]
    pub fn interactive() -> Self {
        CostModel {
            labelers: 1,
            seconds_per_label: 5.0,
            hours_per_day: 8.0,
        }
    }

    /// Labels the team can produce in one day.
    #[must_use]
    pub fn labels_per_day(&self) -> u64 {
        let per_person = self.hours_per_day * 3600.0 / self.seconds_per_label;
        (per_person * f64::from(self.labelers)).floor() as u64
    }

    /// Wall-clock labelling time for `labels` labels with the whole team
    /// working in parallel.
    #[must_use]
    pub fn time_for(&self, labels: u64) -> Duration {
        let secs = labels as f64 * self.seconds_per_label / f64::from(self.labelers.max(1));
        Duration::from_secs_f64(secs)
    }

    /// Person-days needed for `labels` labels.
    #[must_use]
    pub fn person_days(&self, labels: u64) -> f64 {
        labels as f64 * self.seconds_per_label / 3600.0 / self.hours_per_day
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

/// The paper's practicality verdict for a per-testset label count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Practicality {
    /// ≤ 60 000 labels per testset (Figure 2's black region): one day of
    /// labelling per month for a small team.
    Practical,
    /// ≤ 10× the practical budget — feasible for teams that can invest
    /// about a week of labelling, or by relaxing ε by 1–2 points
    /// ("cheap mode").
    Borderline,
    /// Beyond 10× the practical budget (Figure 2's red region).
    Impractical,
}

impl Practicality {
    /// The paper's per-testset practicality cut-off (60 K labels).
    pub const PRACTICAL_LIMIT: u64 = 60_000;

    /// Classify a per-testset label count.
    #[must_use]
    pub fn of(labels: u64) -> Self {
        if labels <= Self::PRACTICAL_LIMIT {
            Practicality::Practical
        } else if labels <= 10 * Self::PRACTICAL_LIMIT {
            Practicality::Borderline
        } else {
            Practicality::Impractical
        }
    }
}

impl fmt::Display for Practicality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Practicality::Practical => write!(f, "practical"),
            Practicality::Borderline => write!(f, "borderline"),
            Practicality::Impractical => write!(f, "impractical"),
        }
    }
}

/// A human-readable effort report for a label requirement.
#[derive(Debug, Clone, PartialEq)]
pub struct EffortReport {
    /// Labels required.
    pub labels: u64,
    /// Practicality class.
    pub verdict: Practicality,
    /// Person-days under the cost model.
    pub person_days: f64,
    /// Wall-clock days with the team in parallel (8-hour days).
    pub team_days: f64,
}

/// Summarise the labelling effort for a label count under a cost model.
#[must_use]
pub fn effort(labels: u64, cost: &CostModel) -> EffortReport {
    let person_days = cost.person_days(labels);
    EffortReport {
        labels,
        verdict: Practicality::of(labels),
        person_days,
        team_days: person_days / f64::from(cost.labelers.max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_team_produces_about_30k_per_day() {
        // 2 people × 8 h × 3600 s / 2 s per label = 28 800 labels/day —
        // the basis of the "30,000 to 60,000 is what 2 to 4 engineers can
        // label in a day" calibration.
        let team = CostModel::paper_default();
        assert_eq!(team.labels_per_day(), 28_800);
        let four = CostModel {
            labelers: 4,
            ..team
        };
        assert_eq!(four.labels_per_day(), 57_600);
    }

    #[test]
    fn active_labeling_daily_budget_is_3_hours() {
        // §4.1.2: 2 188 labels at 5 s/label ≈ 3 hours.
        let solo = CostModel::interactive();
        let t = solo.time_for(2_188);
        let hours = t.as_secs_f64() / 3600.0;
        assert!((hours - 3.04).abs() < 0.02, "hours = {hours}");
    }

    #[test]
    fn practicality_thresholds() {
        assert_eq!(Practicality::of(0), Practicality::Practical);
        assert_eq!(Practicality::of(60_000), Practicality::Practical);
        assert_eq!(Practicality::of(60_001), Practicality::Borderline);
        assert_eq!(Practicality::of(600_000), Practicality::Borderline);
        assert_eq!(Practicality::of(600_001), Practicality::Impractical);
    }

    #[test]
    fn figure2_practicality_verdicts() {
        // Figure 2's red cells are exactly the ones our classifier flags.
        assert_eq!(Practicality::of(40_355), Practicality::Practical); // F1 0.99/0.01 none
        assert_eq!(Practicality::of(133_930), Practicality::Borderline); // F1 0.99/0.01 full
        assert_eq!(Practicality::of(641_684), Practicality::Impractical); // F2 0.9999/0.01 full
    }

    #[test]
    fn effort_report() {
        let r = effort(57_600, &CostModel::paper_default());
        assert_eq!(r.verdict, Practicality::Practical);
        assert!((r.person_days - 4.0).abs() < 1e-9);
        assert!((r.team_days - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(Practicality::Practical.to_string(), "practical");
        assert_eq!(Practicality::Impractical.to_string(), "impractical");
    }
}

//! Pattern-based optimizations (§4.1, §4.2): hierarchical testing, active
//! labelling, and implicit variance bounds.
//!
//! The worst-case `O(1/ε²)` of Hoeffding cannot be beaten in general, so
//! ease.ml/ci improves the estimator for a *sub-family* of practically
//! important conditions:
//!
//! * **Pattern 1** — `d < A ± B ∧ n − o > C ± D`: the difference clause
//!   doubles as a variance bound. A cheap *filter* step on unlabeled data
//!   checks `d`, and conditioned on `d < p` the improvement clause is
//!   tested with Bennett's inequality at `O(1/(p·h(ε/p)))` samples. Only
//!   disagreeing points need labels, so labelling is *active*: `≈ p × n`
//!   labels per commit (§4.1.2).
//! * **Pattern 2** — `n − o > C ± D` alone: no explicit `d` clause, but
//!   consecutive commits rarely disagree much (§4.2's ImageNet-winners
//!   observation), so the system first probes `d` up to `2D` on a 16×
//!   smaller testset and, when the observed bound is small, applies the
//!   same Bennett machinery.
//! * **Pattern 3** — `n > A ± B` with a large floor `A`: a coarse
//!   estimate pins accuracy near 1, which bounds the Bernoulli variance
//!   and again enables Bennett.

use crate::dsl::{classify_clause, ClauseShape, Formula};
use crate::error::{CiError, Result};
use easeml_bounds::{
    bennett_sample_size_from_ln_delta, hoeffding_sample_size_from_ln_delta, Adaptivity, Tail,
};

/// One phase of an optimized test plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseEstimate {
    /// Samples this phase draws from the testset.
    pub samples: u64,
    /// Whether those samples need ground-truth labels.
    pub needs_labels: bool,
    /// Tolerance this phase verifies.
    pub epsilon: f64,
    /// `ln δ` share allocated to this phase (per test).
    pub ln_delta: f64,
}

/// The per-commit labelling schedule of active labelling (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveLabelingSchedule {
    /// Size of the unlabeled pool the user must provide up front.
    pub pool_size: u64,
    /// Expected labels requested per commit (only disagreements need
    /// labels): `≈ p ×` the Bennett testset size at a single-step budget.
    pub labels_per_commit: u64,
    /// Worst-case labels over the whole `H`-step process if every commit
    /// disagreed on a fresh `p`-fraction.
    pub worst_case_total_labels: u64,
}

/// An optimized plan produced by pattern matching a formula.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizedPlan {
    /// Pattern 1: explicit difference bound + improvement clause.
    Hierarchical(HierarchicalPlan),
    /// Pattern 2: improvement clause with an implicit variance probe.
    ImplicitVariance(ImplicitVariancePlan),
    /// Pattern 3: quality floor near 1 with a coarse-to-fine estimate.
    CoarseToFine(CoarseToFinePlan),
}

impl OptimizedPlan {
    /// Total labelled samples the plan requires up front (active
    /// labelling can amortize this; see the schedule).
    #[must_use]
    pub fn labeled_samples(&self) -> u64 {
        match self {
            OptimizedPlan::Hierarchical(p) => p.test.samples,
            OptimizedPlan::ImplicitVariance(p) => p.test_upper_bound.samples,
            OptimizedPlan::CoarseToFine(p) => p.coarse.samples + p.fine_upper_bound.samples,
        }
    }

    /// Total unlabeled samples the plan requires.
    #[must_use]
    pub fn unlabeled_samples(&self) -> u64 {
        match self {
            OptimizedPlan::Hierarchical(p) => p.filter.samples,
            OptimizedPlan::ImplicitVariance(p) => p.probe.samples,
            OptimizedPlan::CoarseToFine(_) => 0,
        }
    }
}

/// Pattern 1 plan: filter on `d`, then Bennett-test `n − o` (§4.1.1).
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalPlan {
    /// Unlabeled filter phase: estimate `d̂` to `ε′` and reject when
    /// `d̂ > A + ε′`.
    pub filter: PhaseEstimate,
    /// Labelled Bennett phase for `n − o`, conditioned on the variance
    /// bound `p`.
    pub test: PhaseEstimate,
    /// The variance bound used: `p = A` (the paper's worked example) or
    /// `A + 2ε′` when [`Pattern1Options::conservative_variance`] is set.
    pub variance_bound: f64,
    /// Per-commit labelling schedule.
    pub active: ActiveLabelingSchedule,
}

/// Pattern 2 plan: probe `d` up to `2D` first, then Bennett-test `n − o`
/// sized by the *observed* difference (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ImplicitVariancePlan {
    /// The probe phase for `d` (unlabeled for binary tasks; difference of
    /// correctness on labelled data for multi-class).
    pub probe: PhaseEstimate,
    /// Bennett phase sized with the *a-priori* variance cap
    /// [`Pattern2Options::expected_difference`]; the true requirement is
    /// only known after the probe — use
    /// [`implicit_variance_test_phase`] with the observed `d̂`.
    pub test_upper_bound: PhaseEstimate,
    /// Improvement-clause tolerance `D`.
    pub tolerance: f64,
    /// `ln δ` share reserved for the test phase.
    pub test_ln_delta: f64,
}

/// Pattern 3 plan: coarse bound on `n`, then a variance-bounded fine pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseToFinePlan {
    /// Coarse Hoeffding phase at a loose tolerance.
    pub coarse: PhaseEstimate,
    /// Fine Bennett phase assuming the coarse lower bound holds.
    pub fine_upper_bound: PhaseEstimate,
    /// The accuracy floor `A` from the clause.
    pub floor: f64,
}

/// Tuning knobs for Pattern 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pattern1Options {
    /// Use `p = A + 2ε′` instead of the paper's `p = A` as the variance
    /// bound (accounts for filter estimation slack; costs ≈5–10 % more
    /// labels).
    pub conservative_variance: bool,
    /// Tail sidedness for both phases (the paper's worked numbers use
    /// one-sided).
    pub tail: Tail,
}

impl Default for Pattern1Options {
    fn default() -> Self {
        Pattern1Options {
            conservative_variance: false,
            tail: Tail::OneSided,
        }
    }
}

/// Tuning knobs for Pattern 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pattern2Options {
    /// A-priori cap on the expected prediction difference between
    /// consecutive commits, used to size the labelled pool before any
    /// probe runs (§4.2 argues ≤ 0.25 even across years of ImageNet
    /// progress; fine-tuning workflows sit near 0.1).
    pub expected_difference: f64,
    /// Treat the variance bound as *known a priori* (the paper's Figure 5
    /// setting: "exploiting the fact that between any two submission
    /// there is no more than 10 % difference in prediction"). The probe
    /// phase then costs no samples and the Bennett test receives the full
    /// per-step budget with this bound.
    pub known_variance_bound: Option<f64>,
    /// Tail sidedness.
    pub tail: Tail,
}

impl Default for Pattern2Options {
    fn default() -> Self {
        Pattern2Options {
            expected_difference: 0.1,
            known_variance_bound: None,
            tail: Tail::TwoSided,
        }
    }
}

/// Try to match a formula against the optimizable patterns, in the order
/// the system prefers them (Pattern 1, then 2, then 3).
///
/// Returns `None` when no pattern applies — the caller falls back to the
/// baseline estimator. Formulas with extra clauses beyond the recognised
/// shape are conservatively rejected.
///
/// # Errors
///
/// Returns an error only for invalid budget parameters.
pub fn match_patterns(
    formula: &Formula,
    delta: f64,
    steps: u32,
    adaptivity: Adaptivity,
    p1: Pattern1Options,
    p2: Pattern2Options,
) -> Result<Option<OptimizedPlan>> {
    let shapes: Vec<ClauseShape> = formula.clauses().iter().map(classify_clause).collect();
    // Pattern 1: exactly a difference bound + an improvement clause.
    if formula.len() == 2 {
        let diff = shapes.iter().find_map(|s| match s {
            ClauseShape::DifferenceBound { limit, tolerance } => Some((*limit, *tolerance)),
            _ => None,
        });
        let improv = shapes.iter().find_map(|s| match s {
            ClauseShape::AccuracyImprovement { margin, tolerance } => Some((*margin, *tolerance)),
            _ => None,
        });
        if let (Some((limit, d_tol)), Some((_, n_tol))) = (diff, improv) {
            let plan = hierarchical_plan(limit, d_tol, n_tol, delta, steps, adaptivity, p1)?;
            return Ok(Some(OptimizedPlan::Hierarchical(plan)));
        }
    }
    if formula.len() == 1 {
        match shapes[0] {
            ClauseShape::AccuracyImprovement {
                margin: _,
                tolerance,
            } => {
                let plan = implicit_variance_plan(tolerance, delta, steps, adaptivity, p2)?;
                return Ok(Some(OptimizedPlan::ImplicitVariance(plan)));
            }
            ClauseShape::QualityFloor { floor, tolerance } if floor >= 0.85 => {
                let plan =
                    coarse_to_fine_plan(floor, tolerance, delta, steps, adaptivity, p2.tail)?;
                return Ok(Some(OptimizedPlan::CoarseToFine(plan)));
            }
            _ => {}
        }
    }
    Ok(None)
}

/// Build the Pattern 1 plan (§4.1.1 + §4.1.2).
///
/// Budget split mirrors the paper's worked example: the filter gets
/// `δ/2`, the Bennett test gets `δ/4` (the remaining quarter absorbs the
/// conditioning step).
///
/// # Errors
///
/// Returns an error for invalid `delta` or degenerate tolerances.
pub fn hierarchical_plan(
    diff_limit: f64,
    diff_tolerance: f64,
    improv_tolerance: f64,
    delta: f64,
    steps: u32,
    adaptivity: Adaptivity,
    options: Pattern1Options,
) -> Result<HierarchicalPlan> {
    if !(diff_limit > 0.0 && diff_limit < 1.0) {
        return Err(CiError::Semantic(format!(
            "difference limit must be in (0, 1), got {diff_limit}"
        )));
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(CiError::Semantic(format!(
            "delta must be in (0, 1), got {delta}"
        )));
    }
    let ln_mult = adaptivity.ln_multiplicity(steps);

    // Filter phase: unlabeled estimate of d to the clause tolerance, at
    // (δ/2) / multiplicity.
    let filter_ln_delta = delta.ln() - std::f64::consts::LN_2 - ln_mult;
    let filter_samples =
        hoeffding_sample_size_from_ln_delta(1.0, diff_tolerance, filter_ln_delta, options.tail)?;

    // Variance bound for the Bennett step.
    let variance_bound = if options.conservative_variance {
        (diff_limit + 2.0 * diff_tolerance).min(1.0)
    } else {
        diff_limit
    };

    // Test phase: Bennett for n − o at (δ/4) / multiplicity.
    let test_ln_delta = delta.ln() - 4f64.ln() - ln_mult;
    let test_samples = bennett_sample_size_from_ln_delta(
        variance_bound,
        1.0,
        improv_tolerance,
        test_ln_delta,
        options.tail,
    )?;

    // Active labelling: per-commit labels at the single-commit budget
    // (δ/4, no step multiplicity — §4.1.2's 2 188-label example).
    let single_ln_delta = delta.ln() - 4f64.ln();
    let single_n = bennett_sample_size_from_ln_delta(
        variance_bound,
        1.0,
        improv_tolerance,
        single_ln_delta,
        options.tail,
    )?;
    let labels_per_commit = ((single_n as f64) * variance_bound).ceil() as u64;
    let worst_case_total =
        ((test_samples as f64) * variance_bound).ceil() as u64 * u64::from(steps.max(1));

    Ok(HierarchicalPlan {
        filter: PhaseEstimate {
            samples: filter_samples,
            needs_labels: false,
            epsilon: diff_tolerance,
            ln_delta: filter_ln_delta,
        },
        test: PhaseEstimate {
            samples: test_samples,
            needs_labels: true,
            epsilon: improv_tolerance,
            ln_delta: test_ln_delta,
        },
        variance_bound,
        active: ActiveLabelingSchedule {
            pool_size: test_samples,
            labels_per_commit,
            worst_case_total_labels: worst_case_total,
        },
    })
}

/// Build the Pattern 2 plan (§4.2).
///
/// The probe estimates `d` to `2D` (4× tolerance saving) on a variable of
/// range 1 instead of 2 (another 4×) — 16× smaller than testing `n − o`
/// directly. Budget: probe `δ/2`, test `δ/2`.
///
/// # Errors
///
/// Returns an error for invalid `delta` or degenerate tolerances.
pub fn implicit_variance_plan(
    tolerance: f64,
    delta: f64,
    steps: u32,
    adaptivity: Adaptivity,
    options: Pattern2Options,
) -> Result<ImplicitVariancePlan> {
    if !(options.expected_difference > 0.0 && options.expected_difference <= 1.0) {
        return Err(CiError::Semantic(format!(
            "expected difference must be in (0, 1], got {}",
            options.expected_difference
        )));
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(CiError::Semantic(format!(
            "delta must be in (0, 1), got {delta}"
        )));
    }
    let ln_mult = adaptivity.ln_multiplicity(steps);

    if let Some(p) = options.known_variance_bound {
        if !(p > 0.0 && p <= 1.0) {
            return Err(CiError::Semantic(format!(
                "known variance bound must be in (0, 1], got {p}"
            )));
        }
        // No probe: the whole per-step budget goes to the Bennett test.
        let test_ln_delta = delta.ln() - ln_mult;
        let test_samples =
            bennett_sample_size_from_ln_delta(p, 1.0, tolerance, test_ln_delta, options.tail)?;
        return Ok(ImplicitVariancePlan {
            probe: PhaseEstimate {
                samples: 0,
                needs_labels: false,
                epsilon: 0.0,
                ln_delta: f64::NEG_INFINITY,
            },
            test_upper_bound: PhaseEstimate {
                samples: test_samples,
                needs_labels: true,
                epsilon: tolerance,
                ln_delta: test_ln_delta,
            },
            tolerance,
            test_ln_delta,
        });
    }

    let probe_ln_delta = delta.ln() - std::f64::consts::LN_2 - ln_mult;
    let probe_eps = 2.0 * tolerance;
    let probe_samples =
        hoeffding_sample_size_from_ln_delta(1.0, probe_eps, probe_ln_delta, options.tail)?;

    let test_ln_delta = delta.ln() - std::f64::consts::LN_2 - ln_mult;
    let p_cap = effective_variance_bound(options.expected_difference, probe_eps);
    let test_samples =
        bennett_sample_size_from_ln_delta(p_cap, 1.0, tolerance, test_ln_delta, options.tail)?;

    Ok(ImplicitVariancePlan {
        probe: PhaseEstimate {
            samples: probe_samples,
            needs_labels: false,
            epsilon: probe_eps,
            ln_delta: probe_ln_delta,
        },
        test_upper_bound: PhaseEstimate {
            samples: test_samples,
            needs_labels: true,
            epsilon: tolerance,
            ln_delta: test_ln_delta,
        },
        tolerance,
        test_ln_delta,
    })
}

/// Size the Pattern 2 test phase once the probe has *observed* `d̂`: the
/// valid variance bound is `d̂ + 2D` (the probe's tolerance).
///
/// This is the incremental-growth step: as commits drift apart the
/// labelled pool must grow, and the engine requests the difference
/// (§4.2's "incrementally growing the labeled testset").
///
/// # Errors
///
/// Returns an error when the implied variance bound leaves `(0, 1]`.
pub fn implicit_variance_test_phase(
    plan: &ImplicitVariancePlan,
    observed_difference: f64,
    tail: Tail,
) -> Result<PhaseEstimate> {
    let p = effective_variance_bound(observed_difference, plan.probe.epsilon);
    let samples =
        bennett_sample_size_from_ln_delta(p, 1.0, plan.tolerance, plan.test_ln_delta, tail)?;
    Ok(PhaseEstimate {
        samples,
        needs_labels: true,
        epsilon: plan.tolerance,
        ln_delta: plan.test_ln_delta,
    })
}

/// Build the Pattern 3 plan: coarse Hoeffding bound on `n`, fine Bennett
/// pass with the implied error-rate variance bound.
///
/// # Errors
///
/// Returns an error for invalid parameters.
pub fn coarse_to_fine_plan(
    floor: f64,
    tolerance: f64,
    delta: f64,
    steps: u32,
    adaptivity: Adaptivity,
    tail: Tail,
) -> Result<CoarseToFinePlan> {
    if !(delta > 0.0 && delta < 1.0) {
        return Err(CiError::Semantic(format!(
            "delta must be in (0, 1), got {delta}"
        )));
    }
    let ln_mult = adaptivity.ln_multiplicity(steps);
    let coarse_ln_delta = delta.ln() - std::f64::consts::LN_2 - ln_mult;
    let fine_ln_delta = delta.ln() - std::f64::consts::LN_2 - ln_mult;
    // The coarse tolerance trades off the two phases: a looser coarse
    // estimate is cheap but weakens the variance bound of the fine phase
    // (p = 1 − floor + ε_c). Pick ε_c by scanning a log-spaced grid.
    let mut best: Option<(u64, u64, f64)> = None;
    let grid = 48;
    for i in 0..=grid {
        let t = i as f64 / grid as f64;
        // ε_c from `tolerance` up to 0.3, log-spaced.
        let coarse_eps = tolerance * (0.3f64 / tolerance).powf(t);
        if coarse_eps >= 1.0 {
            break;
        }
        let coarse = hoeffding_sample_size_from_ln_delta(1.0, coarse_eps, coarse_ln_delta, tail)?;
        // Conditioned on n ≥ floor − ε_c, the error indicator has mean
        // (and second moment) at most 1 − floor + ε_c.
        let p = (1.0 - floor + coarse_eps).min(1.0);
        let fine = bennett_sample_size_from_ln_delta(p, 1.0, tolerance, fine_ln_delta, tail)?;
        let total = coarse.saturating_add(fine);
        if best.is_none_or(|(c, f, _)| total < c + f) {
            best = Some((coarse, fine, coarse_eps));
        }
    }
    let Some((coarse_samples, fine_samples, coarse_eps)) = best else {
        return Err(CiError::Semantic(
            "coarse-to-fine grid produced no candidate".into(),
        ));
    };
    Ok(CoarseToFinePlan {
        coarse: PhaseEstimate {
            samples: coarse_samples,
            needs_labels: true,
            epsilon: coarse_eps,
            ln_delta: coarse_ln_delta,
        },
        fine_upper_bound: PhaseEstimate {
            samples: fine_samples,
            needs_labels: true,
            epsilon: tolerance,
            ln_delta: fine_ln_delta,
        },
        floor,
    })
}

/// The variance bound implied by an observed/assumed difference plus the
/// probe tolerance, clamped into (0, 1].
fn effective_variance_bound(difference: f64, probe_eps: f64) -> f64 {
    (difference + probe_eps).clamp(f64::MIN_POSITIVE, 1.0)
}

// ---------------------------------------------------------------------
// Wire encoding for the plan cache (`crate::PlanCache`).
//
// Plans are persisted inside the plan cache's line-oriented dump, so the
// encoding is a single token: no spaces, no `;` (the estimate-level
// separator). Fields are exact — `f64`s travel as bit patterns — so a
// decoded plan is `==` to the original. Decoding is strict: any
// malformed field rejects the whole value (and, one level up, the whole
// dump).
// ---------------------------------------------------------------------

use super::{hex_f64, parse_hex_f64};

/// `samples,needs_labels,epsilon_bits,ln_delta_bits`.
pub(crate) fn encode_phase(phase: &PhaseEstimate) -> String {
    format!(
        "{},{},{},{}",
        phase.samples,
        u8::from(phase.needs_labels),
        hex_f64(phase.epsilon),
        hex_f64(phase.ln_delta),
    )
}

pub(crate) fn decode_phase(s: &str) -> Option<PhaseEstimate> {
    let mut fields = s.split(',');
    let samples = fields.next()?.parse().ok()?;
    let needs_labels = match fields.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let epsilon = parse_hex_f64(fields.next()?)?;
    let ln_delta = parse_hex_f64(fields.next()?)?;
    if fields.next().is_some() {
        return None;
    }
    Some(PhaseEstimate {
        samples,
        needs_labels,
        epsilon,
        ln_delta,
    })
}

/// Tagged, `:`-separated plan encoding: `H:…` (hierarchical),
/// `I:…` (implicit variance), `C:…` (coarse-to-fine).
pub(crate) fn encode_plan(plan: &OptimizedPlan) -> String {
    match plan {
        OptimizedPlan::Hierarchical(p) => format!(
            "H:{}:{}:{}:{},{},{}",
            encode_phase(&p.filter),
            encode_phase(&p.test),
            hex_f64(p.variance_bound),
            p.active.pool_size,
            p.active.labels_per_commit,
            p.active.worst_case_total_labels,
        ),
        OptimizedPlan::ImplicitVariance(p) => format!(
            "I:{}:{}:{}:{}",
            encode_phase(&p.probe),
            encode_phase(&p.test_upper_bound),
            hex_f64(p.tolerance),
            hex_f64(p.test_ln_delta),
        ),
        OptimizedPlan::CoarseToFine(p) => format!(
            "C:{}:{}:{}",
            encode_phase(&p.coarse),
            encode_phase(&p.fine_upper_bound),
            hex_f64(p.floor),
        ),
    }
}

pub(crate) fn decode_plan(s: &str) -> Option<OptimizedPlan> {
    let mut fields = s.split(':');
    let tag = fields.next()?;
    let plan = match tag {
        "H" => {
            let filter = decode_phase(fields.next()?)?;
            let test = decode_phase(fields.next()?)?;
            let variance_bound = parse_hex_f64(fields.next()?)?;
            let mut active = fields.next()?.split(',');
            let pool_size = active.next()?.parse().ok()?;
            let labels_per_commit = active.next()?.parse().ok()?;
            let worst_case_total_labels = active.next()?.parse().ok()?;
            if active.next().is_some() {
                return None;
            }
            OptimizedPlan::Hierarchical(HierarchicalPlan {
                filter,
                test,
                variance_bound,
                active: ActiveLabelingSchedule {
                    pool_size,
                    labels_per_commit,
                    worst_case_total_labels,
                },
            })
        }
        "I" => OptimizedPlan::ImplicitVariance(ImplicitVariancePlan {
            probe: decode_phase(fields.next()?)?,
            test_upper_bound: decode_phase(fields.next()?)?,
            tolerance: parse_hex_f64(fields.next()?)?,
            test_ln_delta: parse_hex_f64(fields.next()?)?,
        }),
        "C" => OptimizedPlan::CoarseToFine(CoarseToFinePlan {
            coarse: decode_phase(fields.next()?)?,
            fine_upper_bound: decode_phase(fields.next()?)?,
            floor: parse_hex_f64(fields.next()?)?,
        }),
        _ => return None,
    };
    if fields.next().is_some() {
        return None;
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_formula;

    /// §4.1.1: 29K labels for 32 non-adaptive steps, 67K fully adaptive
    /// (p = 0.1, ε = 0.01, 1 − δ = 0.9999).
    #[test]
    fn section411_sample_sizes() {
        let non_adaptive = hierarchical_plan(
            0.1,
            0.01,
            0.01,
            0.0001,
            32,
            Adaptivity::None,
            Pattern1Options::default(),
        )
        .unwrap();
        assert_eq!(non_adaptive.test.samples, 29_048);
        assert!(!non_adaptive.filter.needs_labels);
        assert!(non_adaptive.test.needs_labels);

        let fully_adaptive = hierarchical_plan(
            0.1,
            0.01,
            0.01,
            0.0001,
            32,
            Adaptivity::Full,
            Pattern1Options::default(),
        )
        .unwrap();
        assert_eq!(fully_adaptive.test.samples, 67_706);
    }

    /// §4.1.2: 2 188 labels per commit.
    #[test]
    fn section412_active_labels() {
        let plan = hierarchical_plan(
            0.1,
            0.01,
            0.01,
            0.0001,
            32,
            Adaptivity::Full,
            Pattern1Options::default(),
        )
        .unwrap();
        assert!(
            (plan.active.labels_per_commit as i64 - 2_188).abs() <= 1,
            "labels = {}",
            plan.active.labels_per_commit
        );
        assert_eq!(plan.active.pool_size, plan.test.samples);
    }

    /// Pattern 1 beats the baseline by roughly 10× (§4.1.1 headline).
    #[test]
    fn pattern1_saves_an_order_of_magnitude() {
        use crate::estimator::baseline::{formula_sample_size, Allocation, LeafBound};
        let formula = parse_formula("d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01").unwrap();
        let ln_delta = Adaptivity::None.ln_effective_delta(0.0001, 32).unwrap();
        let (baseline, _) = formula_sample_size(
            &formula,
            ln_delta,
            Allocation::EqualSplit,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .unwrap();
        let plan = match_patterns(
            &formula,
            0.0001,
            32,
            Adaptivity::None,
            Pattern1Options::default(),
            Pattern2Options::default(),
        )
        .unwrap()
        .expect("pattern 1 must match");
        let labeled = plan.labeled_samples();
        assert!(
            (labeled as f64) < (baseline as f64) / 8.0,
            "labeled={labeled} baseline={baseline}"
        );
    }

    #[test]
    fn conservative_variance_costs_more() {
        let exact = hierarchical_plan(
            0.1,
            0.01,
            0.01,
            0.0001,
            32,
            Adaptivity::None,
            Pattern1Options::default(),
        )
        .unwrap();
        let conservative = hierarchical_plan(
            0.1,
            0.01,
            0.01,
            0.0001,
            32,
            Adaptivity::None,
            Pattern1Options {
                conservative_variance: true,
                tail: Tail::OneSided,
            },
        )
        .unwrap();
        assert!(conservative.test.samples > exact.test.samples);
        assert!((conservative.variance_bound - 0.12).abs() < 1e-12);
    }

    /// Figure 5: Pattern 2 with p = 0.1 gives 4 713 (non-adaptive) and
    /// 5 204 (adaptive, ε = 0.022) samples.
    #[test]
    fn figure5_sample_sizes_via_pattern2() {
        // The Figure 5 budget puts the whole δ on the Bennett test (the
        // probe is free: between-submission diffs are directly observable
        // on the published predictions), so test it via the raw bound with
        // the plan's variance-cap convention p = 0.1.
        let plan = implicit_variance_plan(
            0.02,
            0.002,
            7,
            Adaptivity::None,
            Pattern2Options {
                expected_difference: 0.06,
                ..Default::default()
            },
        )
        .unwrap();
        // probe eps = 0.04, p_cap = 0.06 + 0.04 = 0.1
        let ln_delta_direct = (0.002f64 / 7.0).ln();
        let n = easeml_bounds::bennett_sample_size_from_ln_delta(
            0.1,
            1.0,
            0.02,
            ln_delta_direct,
            Tail::TwoSided,
        )
        .unwrap();
        assert_eq!(n, 4_713);
        // The plan's own budget (δ/2 per phase) is slightly larger.
        assert!(plan.test_upper_bound.samples >= n);
        // Probe is 16× smaller than testing n−o directly to D = 0.02.
        let direct =
            hoeffding_sample_size_from_ln_delta(2.0, 0.02, plan.probe.ln_delta, Tail::TwoSided)
                .unwrap();
        let ratio = direct as f64 / plan.probe.samples as f64;
        assert!((ratio - 16.0).abs() < 0.1, "ratio = {ratio}");
    }

    /// Figure 5 with the variance bound assumed known (p = 0.1): the
    /// probe is free and the Bennett test gets the full per-step budget,
    /// reproducing the printed 4 713 / 5 204 sample sizes directly.
    #[test]
    fn figure5_known_variance_bound_plans() {
        let non_adaptive = implicit_variance_plan(
            0.02,
            0.002,
            7,
            Adaptivity::None,
            Pattern2Options {
                known_variance_bound: Some(0.1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(non_adaptive.probe.samples, 0);
        assert_eq!(non_adaptive.test_upper_bound.samples, 4_713);

        let adaptive = implicit_variance_plan(
            0.022,
            0.002,
            7,
            Adaptivity::Full,
            Pattern2Options {
                known_variance_bound: Some(0.1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(adaptive.test_upper_bound.samples, 5_204);

        // Both fit in the 5,509-item SemEval testset; the ε = 0.02
        // adaptive query does not (6,260 > 5,509).
        assert!(non_adaptive.test_upper_bound.samples <= 5_509);
        assert!(adaptive.test_upper_bound.samples <= 5_509);
        let too_tight = implicit_variance_plan(
            0.02,
            0.002,
            7,
            Adaptivity::Full,
            Pattern2Options {
                known_variance_bound: Some(0.1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(too_tight.test_upper_bound.samples, 6_260);
        assert!(too_tight.test_upper_bound.samples > 5_509);
    }

    #[test]
    fn known_variance_bound_rejects_bad_values() {
        for bad in [0.0, -0.5, 1.5] {
            assert!(implicit_variance_plan(
                0.02,
                0.002,
                7,
                Adaptivity::None,
                Pattern2Options {
                    known_variance_bound: Some(bad),
                    ..Default::default()
                },
            )
            .is_err());
        }
    }

    #[test]
    fn pattern2_test_phase_tracks_observed_difference() {
        let plan = implicit_variance_plan(
            0.01,
            0.0001,
            32,
            Adaptivity::Full,
            Pattern2Options::default(),
        )
        .unwrap();
        let small = implicit_variance_test_phase(&plan, 0.02, Tail::TwoSided).unwrap();
        let large = implicit_variance_test_phase(&plan, 0.3, Tail::TwoSided).unwrap();
        assert!(small.samples < large.samples);
        // Observing exactly the a-priori expected difference reproduces
        // the upper bound (both add the probe tolerance on top).
        let at_cap = implicit_variance_test_phase(&plan, 0.1, Tail::TwoSided).unwrap();
        assert_eq!(at_cap.samples, plan.test_upper_bound.samples);
    }

    #[test]
    fn pattern3_beats_baseline_for_high_floor() {
        let plan =
            coarse_to_fine_plan(0.95, 0.01, 0.001, 32, Adaptivity::None, Tail::OneSided).unwrap();
        let baseline = hoeffding_sample_size_from_ln_delta(
            1.0,
            0.01,
            Adaptivity::None.ln_effective_delta(0.001, 32).unwrap(),
            Tail::OneSided,
        )
        .unwrap();
        let total = plan.coarse.samples + plan.fine_upper_bound.samples;
        // Two-phase ≈ 2× cheaper here; the gain grows as the floor → 1.
        assert!(
            (total as f64) < (baseline as f64) * 0.6,
            "total={total} baseline={baseline}"
        );
        let tighter =
            coarse_to_fine_plan(0.99, 0.005, 0.001, 32, Adaptivity::None, Tail::OneSided).unwrap();
        let baseline_tight = hoeffding_sample_size_from_ln_delta(
            1.0,
            0.005,
            Adaptivity::None.ln_effective_delta(0.001, 32).unwrap(),
            Tail::OneSided,
        )
        .unwrap();
        let total_tight = tighter.coarse.samples + tighter.fine_upper_bound.samples;
        assert!(
            (total_tight as f64) < (baseline_tight as f64) / 5.0,
            "total={total_tight} baseline={baseline_tight}"
        );
    }

    #[test]
    fn matcher_recognises_each_pattern() {
        let p1 = parse_formula("d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01").unwrap();
        let p2 = parse_formula("n - o > 0.02 +/- 0.01").unwrap();
        let p3 = parse_formula("n > 0.95 +/- 0.01").unwrap();
        let none = parse_formula("o - n > 0.1 +/- 0.01").unwrap();
        let low_floor = parse_formula("n > 0.5 +/- 0.05").unwrap();
        let opts1 = Pattern1Options::default();
        let opts2 = Pattern2Options::default();
        let m = |f| match_patterns(f, 0.001, 32, Adaptivity::None, opts1, opts2).unwrap();
        assert!(matches!(m(&p1), Some(OptimizedPlan::Hierarchical(_))));
        assert!(matches!(m(&p2), Some(OptimizedPlan::ImplicitVariance(_))));
        assert!(matches!(m(&p3), Some(OptimizedPlan::CoarseToFine(_))));
        assert!(m(&none).is_none());
        assert!(m(&low_floor).is_none());
    }

    #[test]
    fn clause_order_does_not_matter_for_pattern1() {
        let a = parse_formula("d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01").unwrap();
        let b = parse_formula("n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01").unwrap();
        let opts1 = Pattern1Options::default();
        let opts2 = Pattern2Options::default();
        let pa = match_patterns(&a, 0.001, 32, Adaptivity::None, opts1, opts2).unwrap();
        let pb = match_patterns(&b, 0.001, 32, Adaptivity::None, opts1, opts2).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn rejects_bad_limits() {
        assert!(hierarchical_plan(
            0.0,
            0.01,
            0.01,
            0.001,
            32,
            Adaptivity::None,
            Pattern1Options::default()
        )
        .is_err());
        assert!(implicit_variance_plan(
            0.01,
            0.001,
            32,
            Adaptivity::None,
            Pattern2Options {
                expected_difference: 0.0,
                ..Default::default()
            }
        )
        .is_err());
    }
}

//! Baseline sample-size estimation (§3.1): Hoeffding plus the clause /
//! formula recursion with ε- and δ-budget allocation.
//!
//! * single variable: `n(v, r, ε, δ) = r² (−ln δ) / 2ε²`;
//! * scaling: `n(c·v, ε, δ) = n(v, ε/|c|, δ)`;
//! * sums: `n(e₁ ± e₂, ε, δ) = max(n(e₁, ε₁, δ/2), n(e₂, ε₂, δ/2))`
//!   with `ε₁ + ε₂ = ε`;
//! * conjunction: `n(C₁ ∧ … ∧ C_k, δ) = maxᵢ n(Cᵢ, εᵢ, δ/k)`.
//!
//! Two allocation strategies are provided. [`Allocation::EqualSplit`]
//! follows the recursion literally (each binary node halves both budgets) —
//! this reproduces Figure 2. [`Allocation::Proportional`] flattens the
//! expression into its linear form, merges repeated variables, and assigns
//! `εᵢ ∝ |αᵢ|`, which solves the paper's §3.1 min-max optimization
//! exactly when every leaf uses the same bound.

use crate::cache::{BoundKind, BoundsCache, CachePolicy};
use crate::dsl::{Clause, Expr, Formula, LinearForm, Var};
use crate::error::{CiError, Result};
use easeml_bounds::{
    exact_binomial_sample_size, hoeffding_sample_size_from_ln_delta,
    mcdiarmid_sample_size_from_ln_delta, Tail,
};

/// How the per-clause `ε` budget is divided among the variables of a
/// compound expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Allocation {
    /// Follow the paper's recursion with an even split at every `+`/`-`
    /// node (`ε/2`, `δ/2` each side). Reproduces Figure 2 exactly.
    EqualSplit,
    /// Flatten to the linear form, merge repeated variables, and allocate
    /// `εᵢ ∝ |αᵢ|` with an even `δ/m` split — the optimum of the §3.1
    /// min-max problem under a common bound.
    #[default]
    Proportional,
}

/// Which concentration bound backs each leaf estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LeafBound {
    /// Hoeffding's inequality — the paper's baseline.
    #[default]
    Hoeffding,
    /// Exact binomial tail inversion (§4.3). Only sound for leaves that
    /// are plain Bernoulli means (single unscaled variables); compound
    /// leaves silently fall back to Hoeffding.
    ExactBinomial,
}

/// Bounded-difference sensitivities for the metric-qualified variables,
/// used to size their McDiarmid leaves (§2.2 extensions).
///
/// Metric statistics are not sample means: changing one test point can
/// move them by more than `1/n`. McDiarmid's inequality needs the
/// per-point sensitivity bound `β/n`:
///
/// * binary F1 — `β = 2 / π₊` where `π₊` is the positive-class rate of
///   the testset (see [`crate::extensions::f1::F1Sensitivity`]);
/// * top-k restricted accuracy — `β = 1 / ρ_k` where `ρ_k` is the
///   testset mass of the k most frequent classes (the statistic is a
///   mean over that `ρ_k` fraction of the points).
///
/// The defaults (`0.5` each) are the conservative knobs used when a
/// deployment registers a script before its testset composition is
/// known; the serve layer can tighten them from the actual testset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSensitivity {
    /// Positive-class rate `π₊ ∈ (0, 1]` backing the F1 sensitivity.
    pub f1_positive_rate: f64,
    /// Top-k testset mass `ρ_k ∈ (0, 1]` backing the top-k sensitivity.
    pub topk_mass: f64,
}

impl Default for MetricSensitivity {
    fn default() -> Self {
        MetricSensitivity {
            f1_positive_rate: 0.5,
            topk_mass: 0.5,
        }
    }
}

impl MetricSensitivity {
    /// The McDiarmid `β` for a metric variable; `None` for plain ones.
    ///
    /// # Errors
    ///
    /// Returns an error when the relevant rate is outside `(0, 1]`.
    pub fn beta(&self, var: Var) -> Result<Option<f64>> {
        let rate_check = |rate: f64, what: &str| {
            if rate > 0.0 && rate <= 1.0 {
                Ok(rate)
            } else {
                Err(CiError::Semantic(format!(
                    "{what} must be in (0, 1], got {rate}"
                )))
            }
        };
        match var {
            Var::N | Var::O | Var::D => Ok(None),
            Var::F1N | Var::F1O => Ok(Some(
                2.0 / rate_check(self.f1_positive_rate, "F1 positive-class rate")?,
            )),
            Var::TopKN(_) | Var::TopKO(_) => Ok(Some(
                1.0 / rate_check(self.topk_mass, "top-k testset mass")?,
            )),
        }
    }
}

/// Sample-size requirement for one variable inside one clause.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafEstimate {
    /// The variable being estimated.
    pub var: Var,
    /// Absolute coefficient of the variable in the clause expression.
    pub coefficient: f64,
    /// Tolerance allocated to this variable.
    pub epsilon: f64,
    /// `ln δ` allocated to this variable.
    pub ln_delta: f64,
    /// Samples needed for this leaf alone.
    pub samples: u64,
}

/// Sample-size requirement for one clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseEstimate {
    /// Rendering of the clause (for reports).
    pub clause: String,
    /// Per-variable requirements; the clause requirement is their max.
    pub leaves: Vec<LeafEstimate>,
    /// Samples needed to evaluate this clause.
    pub samples: u64,
}

/// Estimate the samples needed for one clause at a per-test budget of
/// `ln_delta` (already adjusted for steps/adaptivity by the caller).
///
/// # Errors
///
/// Returns an error if the clause is semantically invalid (zero
/// expression, vacuous tolerance) or a bound computation fails.
pub fn clause_sample_size(
    clause: &Clause,
    ln_delta: f64,
    allocation: Allocation,
    leaf_bound: LeafBound,
    tail: Tail,
) -> Result<ClauseEstimate> {
    clause_sample_size_with_cache(
        clause,
        ln_delta,
        allocation,
        leaf_bound,
        tail,
        CachePolicy::Shared,
    )
}

/// [`clause_sample_size`] with explicit control over the shared
/// [`BoundsCache`] (benches and property tests use
/// [`CachePolicy::Bypass`] to measure/validate the uncached path).
///
/// # Errors
///
/// Same conditions as [`clause_sample_size`].
pub fn clause_sample_size_with_cache(
    clause: &Clause,
    ln_delta: f64,
    allocation: Allocation,
    leaf_bound: LeafBound,
    tail: Tail,
    cache: CachePolicy,
) -> Result<ClauseEstimate> {
    clause_sample_size_with_options(
        clause,
        ln_delta,
        allocation,
        leaf_bound,
        tail,
        cache,
        MetricSensitivity::default(),
    )
}

/// [`clause_sample_size_with_cache`] with explicit metric sensitivities
/// for McDiarmid leaves (metric-free clauses ignore them).
///
/// # Errors
///
/// Same conditions as [`clause_sample_size`], plus invalid sensitivities
/// on metric clauses.
pub fn clause_sample_size_with_options(
    clause: &Clause,
    ln_delta: f64,
    allocation: Allocation,
    leaf_bound: LeafBound,
    tail: Tail,
    cache: CachePolicy,
    metric: MetricSensitivity,
) -> Result<ClauseEstimate> {
    let leaves = match allocation {
        Allocation::EqualSplit => equal_split_leaves(&clause.expr, clause.tolerance, ln_delta)?,
        Allocation::Proportional => proportional_leaves(clause, ln_delta)?,
    };
    let mut out = Vec::with_capacity(leaves.len());
    let mut max_samples = 0u64;
    for (var, coefficient, epsilon, leaf_ln_delta) in leaves {
        let samples = leaf_samples(
            var,
            coefficient,
            epsilon,
            leaf_ln_delta,
            leaf_bound,
            tail,
            cache,
            metric,
        )?;
        max_samples = max_samples.max(samples);
        out.push(LeafEstimate {
            var,
            coefficient,
            epsilon,
            ln_delta: leaf_ln_delta,
            samples,
        });
    }
    Ok(ClauseEstimate {
        clause: clause.to_string(),
        leaves: out,
        samples: max_samples,
    })
}

/// Estimate the samples needed for a whole formula at a per-test budget of
/// `ln_delta`: the conjunction rule `maxᵢ n(Cᵢ, δ/k)`.
///
/// # Errors
///
/// Propagates the per-clause error conditions.
pub fn formula_sample_size(
    formula: &Formula,
    ln_delta: f64,
    allocation: Allocation,
    leaf_bound: LeafBound,
    tail: Tail,
) -> Result<(u64, Vec<ClauseEstimate>)> {
    formula_sample_size_with_cache(
        formula,
        ln_delta,
        allocation,
        leaf_bound,
        tail,
        CachePolicy::Shared,
    )
}

/// [`formula_sample_size`] with explicit control over the shared
/// [`BoundsCache`].
///
/// # Errors
///
/// Propagates the per-clause error conditions.
pub fn formula_sample_size_with_cache(
    formula: &Formula,
    ln_delta: f64,
    allocation: Allocation,
    leaf_bound: LeafBound,
    tail: Tail,
    cache: CachePolicy,
) -> Result<(u64, Vec<ClauseEstimate>)> {
    formula_sample_size_with_options(
        formula,
        ln_delta,
        allocation,
        leaf_bound,
        tail,
        cache,
        MetricSensitivity::default(),
    )
}

/// [`formula_sample_size_with_cache`] with explicit metric sensitivities
/// for McDiarmid leaves (metric-free formulas ignore them).
///
/// # Errors
///
/// Propagates the per-clause error conditions.
pub fn formula_sample_size_with_options(
    formula: &Formula,
    ln_delta: f64,
    allocation: Allocation,
    leaf_bound: LeafBound,
    tail: Tail,
    cache: CachePolicy,
    metric: MetricSensitivity,
) -> Result<(u64, Vec<ClauseEstimate>)> {
    if formula.is_empty() {
        return Err(CiError::Semantic("formula has no clauses".into()));
    }
    let k = formula.len() as f64;
    let per_clause_ln_delta = ln_delta - k.ln();
    let mut estimates = Vec::with_capacity(formula.len());
    let mut max_samples = 0u64;
    for clause in formula.clauses() {
        let est = clause_sample_size_with_options(
            clause,
            per_clause_ln_delta,
            allocation,
            leaf_bound,
            tail,
            cache,
            metric,
        )?;
        max_samples = max_samples.max(est.samples);
        estimates.push(est);
    }
    Ok((max_samples, estimates))
}

/// Samples to estimate one variable with coefficient `c` to tolerance
/// `eps` — the paper's rule 1: scale the tolerance down by `|c|`.
///
/// Metric-qualified variables always use McDiarmid with the
/// [`MetricSensitivity`] `β`, regardless of `leaf_bound`: both Hoeffding
/// (as written for range-1 means) and exact binomial inversion assume a
/// Bernoulli sample mean, which metric statistics are not.
#[allow(clippy::too_many_arguments)]
fn leaf_samples(
    var: Var,
    coefficient: f64,
    epsilon: f64,
    ln_delta: f64,
    leaf_bound: LeafBound,
    tail: Tail,
    cache: CachePolicy,
    metric: MetricSensitivity,
) -> Result<u64> {
    let effective_eps = epsilon / coefficient.abs();
    if let Some(beta) = metric.beta(var)? {
        return Ok(mcdiarmid_sample_size_from_ln_delta(
            beta,
            effective_eps,
            ln_delta,
            tail,
        )?);
    }
    match leaf_bound {
        LeafBound::Hoeffding => {
            // Closed-form and nanosecond-scale: cheaper than a cache probe.
            Ok(hoeffding_sample_size_from_ln_delta(
                var.range(),
                effective_eps,
                ln_delta,
                tail,
            )?)
        }
        LeafBound::ExactBinomial => {
            // Exact inversion needs a linear-space δ; fall back to
            // Hoeffding when the adaptive budget underflows.
            let delta = ln_delta.exp();
            if delta > 0.0 && effective_eps < 1.0 {
                let invert = || exact_binomial_sample_size(effective_eps, delta, tail);
                Ok(match cache {
                    CachePolicy::Shared => BoundsCache::global().sample_size_with(
                        BoundKind::ExactBinomialSampleSize,
                        tail,
                        effective_eps,
                        ln_delta,
                        invert,
                    )?,
                    CachePolicy::Bypass => invert()?,
                })
            } else {
                Ok(hoeffding_sample_size_from_ln_delta(
                    var.range(),
                    effective_eps,
                    ln_delta,
                    tail,
                )?)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wire encoding of the per-clause breakdown for the plan cache
// (`crate::PlanCache`).
//
// A clause estimate is one `,`-separated token (no spaces, no `;`, no
// `:`): the clause's rendered text as hex bytes, its sample count, then
// its leaves as `.`-separated sub-tokens. Exact and strict, like the
// plan encoding in `pattern.rs`.
// ---------------------------------------------------------------------

use super::{hex_f64, parse_hex_f64};

fn hex_bytes(text: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(text.len() * 2);
    for b in text.bytes() {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn unhex_bytes(hex: &str) -> Option<String> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for i in (0..hex.len()).step_by(2) {
        bytes.push(u8::from_str_radix(hex.get(i..i + 2)?, 16).ok()?);
    }
    String::from_utf8(bytes).ok()
}

/// `<var_token>.<coefficient_bits>.<epsilon_bits>.<ln_delta_bits>.<samples>`.
///
/// Variable tokens are [`Var::token`]: the plain letters plus `f1n`,
/// `f1o`, `tkn<k>`, `tko<k>` for metric leaves — all alphanumeric, so
/// the `.`-separated field structure is unambiguous.
fn encode_leaf(leaf: &LeafEstimate) -> String {
    format!(
        "{}.{}.{}.{}.{}",
        leaf.var.token(),
        hex_f64(leaf.coefficient),
        hex_f64(leaf.epsilon),
        hex_f64(leaf.ln_delta),
        leaf.samples,
    )
}

fn decode_var_token(token: &str) -> Option<Var> {
    match token {
        "n" => Some(Var::N),
        "o" => Some(Var::O),
        "d" => Some(Var::D),
        "f1n" => Some(Var::F1N),
        "f1o" => Some(Var::F1O),
        _ => {
            let (prefix, k) = token.split_at_checked(3)?;
            let k: u32 = k.parse().ok()?;
            if k == 0 {
                return None;
            }
            match prefix {
                "tkn" => Some(Var::TopKN(k)),
                "tko" => Some(Var::TopKO(k)),
                _ => None,
            }
        }
    }
}

fn decode_leaf(s: &str) -> Option<LeafEstimate> {
    let mut fields = s.split('.');
    let var = decode_var_token(fields.next()?)?;
    let coefficient = parse_hex_f64(fields.next()?)?;
    let epsilon = parse_hex_f64(fields.next()?)?;
    let ln_delta = parse_hex_f64(fields.next()?)?;
    let samples = fields.next()?.parse().ok()?;
    if fields.next().is_some() {
        return None;
    }
    Some(LeafEstimate {
        var,
        coefficient,
        epsilon,
        ln_delta,
        samples,
    })
}

/// `<clause_text_hex>,<samples>,<leaf_count>(,<leaf>)*`.
pub(crate) fn encode_clause_estimate(est: &ClauseEstimate) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{},{},{}",
        hex_bytes(&est.clause),
        est.samples,
        est.leaves.len()
    );
    for leaf in &est.leaves {
        let _ = write!(out, ",{}", encode_leaf(leaf));
    }
    out
}

pub(crate) fn decode_clause_estimate(s: &str) -> Option<ClauseEstimate> {
    let mut fields = s.split(',');
    let clause = unhex_bytes(fields.next()?)?;
    let samples = fields.next()?.parse().ok()?;
    let count: usize = fields.next()?.parse().ok()?;
    // A clause has at most a handful of leaves; reject absurd counts
    // before trusting them for an allocation.
    if count > 4_096 {
        return None;
    }
    let mut leaves = Vec::with_capacity(count);
    for _ in 0..count {
        leaves.push(decode_leaf(fields.next()?)?);
    }
    if fields.next().is_some() {
        return None;
    }
    Some(ClauseEstimate {
        clause,
        samples,
        leaves,
    })
}

type Leaf = (Var, f64, f64, f64); // var, |coef|, epsilon, ln_delta

/// Literal tree recursion: each `+`/`-` halves ε and δ; each scale node
/// multiplies the coefficient.
fn equal_split_leaves(expr: &Expr, eps: f64, ln_delta: f64) -> Result<Vec<Leaf>> {
    fn walk(expr: &Expr, coef: f64, eps: f64, ln_delta: f64, out: &mut Vec<Leaf>) -> Result<()> {
        match expr {
            Expr::Var(v) => {
                if coef == 0.0 {
                    return Err(CiError::Semantic(
                        "variable with zero coefficient in expression".into(),
                    ));
                }
                out.push((*v, coef.abs(), eps, ln_delta));
                Ok(())
            }
            Expr::Scale(c, e) => walk(e, coef * c, eps, ln_delta, out),
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                let half_ln_delta = ln_delta - std::f64::consts::LN_2;
                walk(a, coef, eps / 2.0, half_ln_delta, out)?;
                walk(b, coef, eps / 2.0, half_ln_delta, out)
            }
        }
    }
    let mut out = Vec::new();
    walk(expr, 1.0, eps, ln_delta, &mut out)?;
    Ok(out)
}

/// Flattened allocation: merge repeated variables via the linear form,
/// then `εᵢ = ε·|αᵢ|/Σ|α|` and `δᵢ = δ/m`.
fn proportional_leaves(clause: &Clause, ln_delta: f64) -> Result<Vec<Leaf>> {
    let form = LinearForm::from_expr(&clause.expr);
    let active = form.active_variables();
    if active.is_empty() {
        return Err(CiError::Semantic(format!(
            "clause `{clause}` has an identically-zero expression"
        )));
    }
    let m = active.len() as f64;
    let total_weight: f64 = active.iter().map(|&v| form.coefficient(v).abs()).sum();
    let leaf_ln_delta = ln_delta - m.ln();
    Ok(active
        .into_iter()
        .map(|v| {
            let coef = form.coefficient(v).abs();
            let eps = clause.tolerance * coef / total_weight;
            (v, coef, eps, leaf_ln_delta)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{parse_clause, parse_formula};
    use easeml_bounds::Adaptivity;

    fn ln_delta_for(delta: f64, steps: u32, adaptivity: Adaptivity) -> f64 {
        adaptivity.ln_effective_delta(delta, steps).unwrap()
    }

    /// Figure 2, F2/F3 columns (`n - o > c ± ε`, equal split, one-sided).
    #[test]
    fn figure2_f2_columns() {
        let cases = [
            // (delta, eps, adaptivity, expected)
            (0.01, 0.1, Adaptivity::None, 1_753u64),
            (0.01, 0.05, Adaptivity::None, 7_012),
            (0.01, 0.025, Adaptivity::None, 28_045),
            (0.01, 0.01, Adaptivity::None, 175_282),
            (0.01, 0.1, Adaptivity::Full, 5_496),
            (0.0001, 0.05, Adaptivity::Full, 25_668),
            (0.0001, 0.01, Adaptivity::None, 267_385),
            (0.0001, 0.01, Adaptivity::Full, 641_684),
            (0.00001, 0.01, Adaptivity::Full, 687_736),
        ];
        for (delta, eps, adaptivity, want) in cases {
            let clause_src = format!("n - o > 0.02 +/- {eps}");
            let clause = parse_clause(&clause_src).unwrap();
            let est = clause_sample_size(
                &clause,
                ln_delta_for(delta, 32, adaptivity),
                Allocation::EqualSplit,
                LeafBound::Hoeffding,
                Tail::OneSided,
            )
            .unwrap();
            assert_eq!(est.samples, want, "delta={delta} eps={eps} {adaptivity:?}");
        }
    }

    /// Figure 2, F1/F4 columns (single variable, no split).
    #[test]
    fn figure2_f1_via_clause_estimator() {
        let clause = parse_clause("n > 0.9 +/- 0.05").unwrap();
        let est = clause_sample_size(
            &clause,
            ln_delta_for(0.0001, 32, Adaptivity::Full),
            Allocation::EqualSplit,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .unwrap();
        assert_eq!(est.samples, 6_279);
        assert_eq!(est.leaves.len(), 1);
    }

    /// Proportional and equal allocation agree for symmetric coefficients.
    #[test]
    fn allocations_agree_on_symmetric_difference() {
        let clause = parse_clause("n - o > 0.02 +/- 0.01").unwrap();
        let ln_delta = ln_delta_for(0.001, 32, Adaptivity::None);
        let equal = clause_sample_size(
            &clause,
            ln_delta,
            Allocation::EqualSplit,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .unwrap();
        let prop = clause_sample_size(
            &clause,
            ln_delta,
            Allocation::Proportional,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .unwrap();
        assert_eq!(equal.samples, prop.samples);
    }

    /// §3.1 example: proportional allocation beats the equal split for the
    /// asymmetric expression `n - 1.1 * o`.
    #[test]
    fn proportional_beats_equal_for_asymmetric_coefficients() {
        let clause = parse_clause("n - 1.1 * o > 0.01 +/- 0.01").unwrap();
        let ln_delta = (0.0001f64).ln();
        let equal = clause_sample_size(
            &clause,
            ln_delta,
            Allocation::EqualSplit,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .unwrap();
        let prop = clause_sample_size(
            &clause,
            ln_delta,
            Allocation::Proportional,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .unwrap();
        assert!(
            prop.samples < equal.samples,
            "{} !< {}",
            prop.samples,
            equal.samples
        );
        // Optimal max = (Σ|α|)² L / 2ε²  with Σ|α| = 2.1.
        let l = -(ln_delta - 2f64.ln()); // δ/2 per leaf
        let want = (2.1f64 * 2.1 * l / (2.0 * 0.01 * 0.01)).ceil() as u64;
        assert_eq!(prop.samples, want);
    }

    /// Repeated variables are merged by the proportional allocator but
    /// double-counted by the literal recursion.
    #[test]
    fn proportional_merges_repeated_variables() {
        let clause = parse_clause("n + n > 1.0 +/- 0.1").unwrap();
        let ln_delta = (0.001f64).ln();
        let prop = clause_sample_size(
            &clause,
            ln_delta,
            Allocation::Proportional,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .unwrap();
        assert_eq!(prop.leaves.len(), 1);
        assert_eq!(prop.leaves[0].coefficient, 2.0);
        let equal = clause_sample_size(
            &clause,
            ln_delta,
            Allocation::EqualSplit,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .unwrap();
        assert_eq!(equal.leaves.len(), 2);
        // Merging wins: one estimate at (ε/2 effective) and full δ beats
        // two estimates at ε/2 and δ/2.
        assert!(prop.samples <= equal.samples);
    }

    /// Formula conjunction takes the max over clauses at δ/k.
    #[test]
    fn formula_is_max_over_clauses() {
        let formula = parse_formula("n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01").unwrap();
        let ln_delta = (0.0001f64).ln();
        let (total, per_clause) = formula_sample_size(
            &formula,
            ln_delta,
            Allocation::EqualSplit,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .unwrap();
        assert_eq!(per_clause.len(), 2);
        assert_eq!(total, per_clause.iter().map(|c| c.samples).max().unwrap());
        // The difference clause dominates: two variables at ε/2 each.
        assert!(per_clause[0].samples > per_clause[1].samples);
    }

    /// §3.1 worked example: the full optimization problem for
    /// `n - 1.1*o > 0.01 ± 0.01 ∧ d < 0.1 ± 0.01`.
    #[test]
    fn section31_example_structure() {
        let formula = parse_formula("n - 1.1 * o > 0.01 +/- 0.01 /\\ d < 0.1 +/- 0.01").unwrap();
        let delta: f64 = 0.001;
        let (total, per_clause) = formula_sample_size(
            &formula,
            delta.ln(),
            Allocation::Proportional,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .unwrap();
        // Clause 1 leaves get δ/4 (δ/2 for the clause, /2 for two vars);
        // clause 2 gets δ/2 with the full ε.
        let l4 = -(delta / 4.0).ln();
        let c1_opt = (2.1f64 * 2.1 * l4 / (2.0 * 0.0001)).ceil() as u64;
        let l2 = -(delta / 2.0).ln();
        let c2 = (l2 / (2.0 * 0.0001)).ceil() as u64;
        assert_eq!(per_clause[0].samples, c1_opt);
        assert_eq!(per_clause[1].samples, c2);
        assert_eq!(total, c1_opt.max(c2));
    }

    #[test]
    fn exact_binomial_leaf_beats_hoeffding_leaf() {
        let clause = parse_clause("n > 0.8 +/- 0.05").unwrap();
        let ln_delta = (0.001f64).ln();
        let hoeff = clause_sample_size(
            &clause,
            ln_delta,
            Allocation::Proportional,
            LeafBound::Hoeffding,
            Tail::TwoSided,
        )
        .unwrap();
        let exact = clause_sample_size(
            &clause,
            ln_delta,
            Allocation::Proportional,
            LeafBound::ExactBinomial,
            Tail::TwoSided,
        )
        .unwrap();
        assert!(exact.samples < hoeff.samples);
    }

    #[test]
    fn f1_leaf_matches_extensions_reference_bound() {
        // A bare `f1(n)` clause must reproduce `extensions::f1`'s
        // McDiarmid sizing exactly, at every sensitivity we expose.
        use crate::extensions::{f1_sample_size, F1Sensitivity};
        for (rate, eps, delta) in [
            (0.5f64, 0.05f64, 0.001f64),
            (0.1, 0.02, 0.0001),
            (0.25, 0.01, 0.01),
        ] {
            let clause = parse_clause(&format!("f1(n) > 0.5 +/- {eps}")).unwrap();
            let ln_delta = delta.ln();
            let metric = MetricSensitivity {
                f1_positive_rate: rate,
                ..MetricSensitivity::default()
            };
            for tail in [Tail::OneSided, Tail::TwoSided] {
                let est = clause_sample_size_with_options(
                    &clause,
                    ln_delta,
                    Allocation::Proportional,
                    LeafBound::Hoeffding,
                    tail,
                    CachePolicy::Shared,
                    metric,
                )
                .unwrap();
                let want = f1_sample_size(&F1Sensitivity::new(rate).unwrap(), eps, ln_delta, tail)
                    .unwrap();
                assert_eq!(est.samples, want, "rate={rate} eps={eps} {tail:?}");
            }
        }
    }

    #[test]
    fn metric_leaves_ignore_exact_binomial_bound() {
        // Exact binomial inversion is unsound for non-Bernoulli
        // statistics; metric leaves must size identically either way.
        let clause = parse_clause("f1(n) - f1(o) > -0.02 +/- 0.01").unwrap();
        let ln_delta = (0.001f64).ln();
        let run = |leaf_bound| {
            clause_sample_size_with_options(
                &clause,
                ln_delta,
                Allocation::Proportional,
                leaf_bound,
                Tail::OneSided,
                CachePolicy::Shared,
                MetricSensitivity::default(),
            )
            .unwrap()
        };
        assert_eq!(
            run(LeafBound::Hoeffding).samples,
            run(LeafBound::ExactBinomial).samples
        );
    }

    #[test]
    fn topk_leaf_scales_with_mass_and_beats_f1() {
        // β(topk) = 1/ρ vs β(f1) = 2/π: at equal rates the top-k leaf
        // needs 4× fewer samples (n ∝ β²).
        let ln_delta = (0.001f64).ln();
        let size = |src: &str, metric| {
            clause_sample_size_with_options(
                &parse_clause(src).unwrap(),
                ln_delta,
                Allocation::Proportional,
                LeafBound::Hoeffding,
                Tail::OneSided,
                CachePolicy::Shared,
                metric,
            )
            .unwrap()
            .samples
        };
        let m = MetricSensitivity::default();
        let f1 = size("f1(n) > 0.5 +/- 0.05", m);
        let topk = size("topk(n, 5) > 0.5 +/- 0.05", m);
        // β ratio 2 ⇒ sample ratio 4, up to the per-size ceil.
        assert!(f1.abs_diff(4 * topk) <= 4, "{f1} vs 4×{topk}");
        // Halving the mass doubles β; β = 4 then matches the F1 leaf.
        let thin = MetricSensitivity {
            topk_mass: 0.25,
            ..m
        };
        assert_eq!(size("topk(n, 5) > 0.5 +/- 0.05", thin), f1);
        // Degenerate sensitivities are loud errors.
        let bad = MetricSensitivity {
            f1_positive_rate: 0.0,
            ..m
        };
        assert!(clause_sample_size_with_options(
            &parse_clause("f1(n) > 0.5 +/- 0.05").unwrap(),
            ln_delta,
            Allocation::Proportional,
            LeafBound::Hoeffding,
            Tail::OneSided,
            CachePolicy::Shared,
            bad,
        )
        .is_err());
    }

    #[test]
    fn metric_leaf_round_trips_through_wire_codec() {
        let clause = parse_clause("f1(n) - f1(o) > -0.02 +/- 0.01").unwrap();
        let est = clause_sample_size_with_options(
            &clause,
            (0.001f64).ln(),
            Allocation::Proportional,
            LeafBound::Hoeffding,
            Tail::OneSided,
            CachePolicy::Shared,
            MetricSensitivity::default(),
        )
        .unwrap();
        let wire = encode_clause_estimate(&est);
        assert_eq!(decode_clause_estimate(&wire).unwrap(), est);

        let topk = parse_clause("topk(n, 12) - topk(o, 12) > 0 +/- 0.02").unwrap();
        let est = clause_sample_size_with_options(
            &topk,
            (0.001f64).ln(),
            Allocation::EqualSplit,
            LeafBound::Hoeffding,
            Tail::OneSided,
            CachePolicy::Shared,
            MetricSensitivity::default(),
        )
        .unwrap();
        let wire = encode_clause_estimate(&est);
        assert_eq!(decode_clause_estimate(&wire).unwrap(), est);
        assert!(wire.contains("tkn12") && wire.contains("tko12"));
    }

    #[test]
    fn empty_formula_is_rejected() {
        let formula = Formula::new(vec![]);
        assert!(formula_sample_size(
            &formula,
            (0.01f64).ln(),
            Allocation::EqualSplit,
            LeafBound::Hoeffding,
            Tail::OneSided,
        )
        .is_err());
    }
}

//! The sample-size estimator utility (§2.3, §3, §4).
//!
//! Given a [`CiScript`], [`SampleSizeEstimator`] answers "how many test
//! examples must the user provide?" It first tries the §4 pattern
//! optimizations (unless configured baseline-only) and falls back to the
//! §3 Hoeffding recursion.
//!
//! ```
//! use easeml_ci_core::{CiScript, SampleSizeEstimator};
//!
//! # fn main() -> Result<(), easeml_ci_core::CiError> {
//! let script = CiScript::builder()
//!     .condition_str("n > 0.8 +/- 0.05")?
//!     .reliability(0.9999)
//!     .adaptivity(easeml_bounds::Adaptivity::Full)
//!     .steps(32)
//!     .build()?;
//! let estimate = SampleSizeEstimator::new().estimate(&script)?;
//! assert_eq!(estimate.labeled_samples, 6_279); // §3.3 worked example
//! # Ok(())
//! # }
//! ```

mod baseline;
mod pattern;

pub use baseline::{
    clause_sample_size, clause_sample_size_with_cache, clause_sample_size_with_options,
    formula_sample_size, formula_sample_size_with_cache, formula_sample_size_with_options,
    Allocation, ClauseEstimate, LeafBound, LeafEstimate, MetricSensitivity,
};
pub use pattern::{
    coarse_to_fine_plan, hierarchical_plan, implicit_variance_plan, implicit_variance_test_phase,
    match_patterns, ActiveLabelingSchedule, CoarseToFinePlan, HierarchicalPlan,
    ImplicitVariancePlan, OptimizedPlan, Pattern1Options, Pattern2Options, PhaseEstimate,
};

use crate::cache::{BoundKind, BoundsCache, CachePolicy, PlanCache, PlanFingerprint};
use crate::error::Result;
use crate::logic::Mode;
use crate::script::CiScript;
use easeml_bounds::{Adaptivity, Tail};
use easeml_par::Pool;

/// Exact `f64` transport for the plan-cache wire format: 16 lowercase
/// hex digits of the bit pattern (round-trips NaN/∞ and every payload).
pub(crate) fn hex_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

pub(crate) fn parse_hex_f64(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Strategy the estimator is allowed to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimatorStrategy {
    /// Pattern optimizations when they apply, baseline otherwise.
    #[default]
    Auto,
    /// Baseline Hoeffding recursion only (§3) — the ablation reference.
    BaselineOnly,
}

/// Configuration of the sample-size estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Which strategies may be used.
    pub strategy: EstimatorStrategy,
    /// ε-budget allocation for compound expressions.
    pub allocation: Allocation,
    /// Bound backing baseline leaves.
    pub leaf_bound: LeafBound,
    /// Tail sidedness (the paper's tables use one-sided).
    pub tail: Tail,
    /// Pattern 1 knobs.
    pub pattern1: Pattern1Options,
    /// Pattern 2 knobs.
    pub pattern2: Pattern2Options,
    /// Whether estimation consults the shared caches: leaf inversions
    /// go through [`crate::BoundsCache`] and whole plan-search results
    /// through [`crate::PlanCache`] (both on by default;
    /// [`CachePolicy::Bypass`] recomputes everything at every layer).
    pub cache: CachePolicy,
    /// Bounded-difference sensitivities backing McDiarmid leaves for
    /// metric-qualified variables (`f1(...)`, `topk(...)`); ignored by
    /// metric-free formulas.
    pub metric: MetricSensitivity,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            strategy: EstimatorStrategy::Auto,
            allocation: Allocation::EqualSplit,
            leaf_bound: LeafBound::Hoeffding,
            tail: Tail::OneSided,
            pattern1: Pattern1Options::default(),
            pattern2: Pattern2Options::default(),
            cache: CachePolicy::Shared,
            metric: MetricSensitivity::default(),
        }
    }
}

/// The estimator's answer for a script.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSizeEstimate {
    /// Labelled examples the user must provide.
    pub labeled_samples: u64,
    /// Additional unlabeled examples (filter/probe phases).
    pub unlabeled_samples: u64,
    /// `ln δ` allocated to each individual test after adaptivity
    /// accounting.
    pub ln_delta_per_test: f64,
    /// Which path produced the estimate.
    pub provenance: EstimateProvenance,
    /// Per-clause breakdown when the baseline estimator ran.
    pub per_clause: Vec<ClauseEstimate>,
}

impl SampleSizeEstimate {
    /// Total examples (labelled + unlabeled) the user must provide.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.labeled_samples.saturating_add(self.unlabeled_samples)
    }

    /// One-token wire encoding for [`PlanCache`] persistence:
    /// `labeled;unlabeled;ln_delta_bits;provenance;clause_count(;clause)*`
    /// with the provenance either `B` (baseline) or `O=<plan>`
    /// (optimized; see `pattern::encode_plan`). No spaces, every `f64`
    /// as exact bits, so `decode_wire` reproduces a `==` estimate.
    pub(crate) fn encode_wire(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{};{};{};",
            self.labeled_samples,
            self.unlabeled_samples,
            hex_f64(self.ln_delta_per_test),
        );
        match &self.provenance {
            EstimateProvenance::Baseline => out.push('B'),
            EstimateProvenance::Optimized(plan) => {
                out.push_str("O=");
                out.push_str(&pattern::encode_plan(plan));
            }
        }
        let _ = write!(out, ";{}", self.per_clause.len());
        for clause in &self.per_clause {
            out.push(';');
            out.push_str(&baseline::encode_clause_estimate(clause));
        }
        out
    }

    /// Strict inverse of [`Self::encode_wire`]; `None` on any malformed
    /// field (the plan cache rejects the whole dump in that case).
    pub(crate) fn decode_wire(s: &str) -> Option<SampleSizeEstimate> {
        let mut fields = s.split(';');
        let labeled_samples = fields.next()?.parse().ok()?;
        let unlabeled_samples = fields.next()?.parse().ok()?;
        let ln_delta_per_test = parse_hex_f64(fields.next()?)?;
        let prov = fields.next()?;
        let provenance = if prov == "B" {
            EstimateProvenance::Baseline
        } else {
            EstimateProvenance::Optimized(pattern::decode_plan(prov.strip_prefix("O=")?)?)
        };
        let count: usize = fields.next()?.parse().ok()?;
        // Formulas have a handful of clauses; reject absurd counts
        // before trusting them for an allocation.
        if count > 4_096 {
            return None;
        }
        let mut per_clause = Vec::with_capacity(count);
        for _ in 0..count {
            per_clause.push(baseline::decode_clause_estimate(fields.next()?)?);
        }
        if fields.next().is_some() {
            return None;
        }
        Some(SampleSizeEstimate {
            labeled_samples,
            unlabeled_samples,
            ln_delta_per_test,
            provenance,
            per_clause,
        })
    }
}

/// Canonicalized fingerprint of one plan-search query — the key of the
/// cross-layer [`PlanCache`].
///
/// Covers everything the estimate depends on: the formula's canonical
/// rendering (structure, thresholds, tolerances, coefficients — the
/// `Display` form is shortest-round-trip, hence injective on values, and
/// identical for differently-formatted source scripts that parse to the
/// same condition), `δ`, the step budget, adaptivity, decision mode, and
/// every estimator knob (strategy, allocation, leaf bound, tail, pattern
/// options). Two queries with equal fingerprints would run the exact
/// same plan search.
///
/// Mode does not influence today's sample-size arithmetic, but it is
/// part of the script's semantic identity and keying on it keeps the
/// cache trivially correct if a future mode-aware estimate lands.
#[must_use]
pub fn plan_fingerprint(script: &CiScript, config: &EstimatorConfig) -> PlanFingerprint {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(192);
    let _ = write!(
        s,
        "formula={};delta={};steps={};adaptivity={};mode={};",
        script.condition(),
        hex_f64(script.delta()),
        script.steps(),
        match script.adaptivity() {
            Adaptivity::None => 0,
            Adaptivity::Full => 1,
            Adaptivity::FirstChange => 2,
        },
        match script.mode() {
            Mode::FpFree => 0,
            Mode::FnFree => 1,
        },
    );
    let _ = write!(
        s,
        "strategy={};allocation={};leaf={};tail={};",
        match config.strategy {
            EstimatorStrategy::Auto => 0,
            EstimatorStrategy::BaselineOnly => 1,
        },
        match config.allocation {
            Allocation::EqualSplit => 0,
            Allocation::Proportional => 1,
        },
        match config.leaf_bound {
            LeafBound::Hoeffding => 0,
            LeafBound::ExactBinomial => 1,
        },
        config.tail.code(),
    );
    let _ = write!(
        s,
        "p1={},{};p2={},{},{};metric={},{}",
        u8::from(config.pattern1.conservative_variance),
        config.pattern1.tail.code(),
        hex_f64(config.pattern2.expected_difference),
        config
            .pattern2
            .known_variance_bound
            .map_or_else(|| "-".to_owned(), hex_f64),
        config.pattern2.tail.code(),
        hex_f64(config.metric.f1_positive_rate),
        hex_f64(config.metric.topk_mass),
    );
    PlanFingerprint::of(&s)
}

/// Which estimation path produced the final numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateProvenance {
    /// Baseline recursion (§3).
    Baseline,
    /// One of the §4 pattern plans (attached).
    Optimized(OptimizedPlan),
}

/// The sample-size estimator utility.
///
/// Stateless apart from its configuration; cheap to construct per query.
#[derive(Debug, Clone, Default)]
pub struct SampleSizeEstimator {
    config: EstimatorConfig,
}

impl SampleSizeEstimator {
    /// Estimator with the default configuration (auto strategy, paper
    /// tail conventions).
    #[must_use]
    pub fn new() -> Self {
        SampleSizeEstimator {
            config: EstimatorConfig::default(),
        }
    }

    /// Estimator with an explicit configuration.
    #[must_use]
    pub fn with_config(config: EstimatorConfig) -> Self {
        SampleSizeEstimator { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Estimate the testset size a script requires.
    ///
    /// Under [`CachePolicy::Shared`] (the default) the full plan-search
    /// result is memoized in the cross-layer [`PlanCache`], keyed by
    /// [`plan_fingerprint`]: repeated estimates of a known script —
    /// every `easeml-serve` re-registration, every engine construction
    /// against a popular script shape — collapse to a map lookup instead
    /// of re-running pattern matching and the bound inversions. A hit
    /// returns a clone of the stored estimate, so cached and freshly
    /// computed answers are identical down to the bit patterns.
    ///
    /// # Errors
    ///
    /// Returns an error when the condition is semantically invalid or a
    /// bound computation rejects its parameters. Errors are never
    /// cached.
    pub fn estimate(&self, script: &CiScript) -> Result<SampleSizeEstimate> {
        match self.config.cache {
            CachePolicy::Shared => {
                let fingerprint = plan_fingerprint(script, &self.config);
                if let Some(estimate) = PlanCache::global().lookup(fingerprint) {
                    return Ok(estimate);
                }
                let estimate = self.estimate_uncached(script)?;
                PlanCache::global().store(fingerprint, estimate.clone());
                Ok(estimate)
            }
            CachePolicy::Bypass => self.estimate_uncached(script),
        }
    }

    /// The actual plan search behind [`Self::estimate`] (pattern
    /// matching, then the baseline recursion).
    fn estimate_uncached(&self, script: &CiScript) -> Result<SampleSizeEstimate> {
        let delta = script.delta();
        let adaptivity = script.adaptivity();
        let steps = script.steps();
        let ln_delta = adaptivity.ln_effective_delta(delta, steps)?;

        if self.config.strategy == EstimatorStrategy::Auto {
            if let Some(plan) = match_patterns(
                script.condition(),
                delta,
                steps,
                adaptivity,
                self.config.pattern1,
                self.config.pattern2,
            )? {
                return Ok(SampleSizeEstimate {
                    labeled_samples: plan.labeled_samples(),
                    unlabeled_samples: plan.unlabeled_samples(),
                    ln_delta_per_test: ln_delta,
                    provenance: EstimateProvenance::Optimized(plan),
                    per_clause: Vec::new(),
                });
            }
        }

        let (samples, per_clause) = baseline::formula_sample_size_with_options(
            script.condition(),
            ln_delta,
            self.config.allocation,
            self.config.leaf_bound,
            self.config.tail,
            self.config.cache,
            self.config.metric,
        )?;
        let needs_labels = script.condition().needs_labels();
        Ok(SampleSizeEstimate {
            labeled_samples: if needs_labels { samples } else { 0 },
            unlabeled_samples: if needs_labels { 0 } else { samples },
            ln_delta_per_test: ln_delta,
            provenance: EstimateProvenance::Baseline,
            per_clause,
        })
    }

    /// Baseline-only estimate, regardless of the configured strategy
    /// (used by benches to compute the optimization's saving factor).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::estimate`].
    pub fn estimate_baseline(&self, script: &CiScript) -> Result<SampleSizeEstimate> {
        let mut cfg = self.config;
        cfg.strategy = EstimatorStrategy::BaselineOnly;
        SampleSizeEstimator::with_config(cfg).estimate(script)
    }

    /// Figure-2-style table of §4.3 exact-binomial sample sizes:
    /// `result[i][j]` is the smallest `n` for `(epsilons[i], deltas[j])`
    /// at the given tail convention.
    ///
    /// The batch entry point of the serving stack: each cell first
    /// consults the shared [`BoundsCache`] (under the configured
    /// [`CachePolicy`]), and only the misses are dispatched — as one
    /// batch sharing search state per `ε`-column, columns in parallel on
    /// [`Pool::global`] — to
    /// [`easeml_bounds::exact_binomial_sample_size_batch`]'s cell API.
    /// Fresh inversions are stored back, so a warm cache turns the whole
    /// table into map lookups.
    ///
    /// # Errors
    ///
    /// Returns an error for any invalid `ε` or `δ`.
    pub fn exact_sample_size_grid(
        &self,
        epsilons: &[f64],
        deltas: &[f64],
        tail: Tail,
    ) -> Result<Vec<Vec<u64>>> {
        self.exact_sample_size_grid_with_pool(epsilons, deltas, tail, Pool::global())
    }

    /// [`Self::exact_sample_size_grid`] on an explicit pool (benches and
    /// determinism tests pin the thread count).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::exact_sample_size_grid`].
    pub fn exact_sample_size_grid_with_pool(
        &self,
        epsilons: &[f64],
        deltas: &[f64],
        tail: Tail,
        pool: &Pool,
    ) -> Result<Vec<Vec<u64>>> {
        let cache = match self.config.cache {
            CachePolicy::Shared => Some(BoundsCache::global()),
            CachePolicy::Bypass => None,
        };
        let mut grid = vec![vec![0u64; deltas.len()]; epsilons.len()];
        let mut miss_cells: Vec<(f64, f64)> = Vec::new();
        let mut miss_slots: Vec<(usize, usize)> = Vec::new();
        for (i, &eps) in epsilons.iter().enumerate() {
            for (j, &delta) in deltas.iter().enumerate() {
                // Invalid δ skips the probe and surfaces its error from
                // the batch dispatch below.
                let hit = match cache {
                    Some(c) if delta > 0.0 => {
                        c.lookup(BoundKind::ExactBinomialSampleSize, tail, eps, delta.ln())
                    }
                    _ => None,
                };
                match hit {
                    Some(n) => grid[i][j] = n,
                    None => {
                        miss_cells.push((eps, delta));
                        miss_slots.push((i, j));
                    }
                }
            }
        }
        if !miss_cells.is_empty() {
            let inverted =
                easeml_bounds::exact_binomial_sample_size_cells_with_pool(&miss_cells, tail, pool)?;
            for (((i, j), &(eps, delta)), &n) in miss_slots.iter().zip(&miss_cells).zip(&inverted) {
                grid[*i][*j] = n;
                if let Some(c) = cache {
                    c.store(BoundKind::ExactBinomialSampleSize, tail, eps, delta.ln(), n);
                }
            }
        }
        Ok(grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Mode;
    use easeml_bounds::Adaptivity;

    fn script(condition: &str, reliability: f64, adaptivity: Adaptivity, steps: u32) -> CiScript {
        CiScript::builder()
            .condition_str(condition)
            .unwrap()
            .reliability(reliability)
            .mode(Mode::FpFree)
            .adaptivity(adaptivity)
            .steps(steps)
            .build()
            .unwrap()
    }

    #[test]
    fn single_variable_baseline_matches_paper() {
        let s = script("n > 0.8 +/- 0.05", 0.9999, Adaptivity::Full, 32);
        let est = SampleSizeEstimator::new().estimate(&s).unwrap();
        assert_eq!(est.labeled_samples, 6_279);
        assert!(matches!(est.provenance, EstimateProvenance::Baseline));
    }

    #[test]
    fn pattern1_is_selected_automatically() {
        let s = script(
            "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
            0.9999,
            Adaptivity::None,
            32,
        );
        let est = SampleSizeEstimator::new().estimate(&s).unwrap();
        assert!(matches!(
            est.provenance,
            EstimateProvenance::Optimized(OptimizedPlan::Hierarchical(_))
        ));
        assert_eq!(est.labeled_samples, 29_048);
        assert!(est.unlabeled_samples > 0);

        let baseline = SampleSizeEstimator::new().estimate_baseline(&s).unwrap();
        assert!(matches!(baseline.provenance, EstimateProvenance::Baseline));
        assert!(baseline.labeled_samples > 8 * est.labeled_samples);
    }

    #[test]
    fn unlabeled_only_condition_requires_no_labels() {
        let s = script("d < 0.1 +/- 0.01", 0.9999, Adaptivity::None, 32);
        let est = SampleSizeEstimator::new().estimate(&s).unwrap();
        assert_eq!(est.labeled_samples, 0);
        assert!(est.unlabeled_samples > 0);
        // Matches the Figure 2 F4 column.
        assert_eq!(est.unlabeled_samples, 63_381);
    }

    #[test]
    fn total_samples_adds_both_pools() {
        let s = script(
            "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
            0.9999,
            Adaptivity::None,
            32,
        );
        let est = SampleSizeEstimator::new().estimate(&s).unwrap();
        assert_eq!(
            est.total_samples(),
            est.labeled_samples + est.unlabeled_samples
        );
    }

    #[test]
    fn grid_entry_point_matches_per_cell_and_fills_cache() {
        let epsilons = [0.1, 0.05];
        let deltas = [0.01, 0.001];
        let estimator = SampleSizeEstimator::new();
        let grid = estimator
            .exact_sample_size_grid(&epsilons, &deltas, Tail::TwoSided)
            .unwrap();
        for (i, &eps) in epsilons.iter().enumerate() {
            for (j, &delta) in deltas.iter().enumerate() {
                let single =
                    easeml_bounds::exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
                assert_eq!(grid[i][j], single, "eps={eps} delta={delta}");
            }
        }
        // A second pass must be pure cache hits: bypassing the cache and
        // hitting it must agree, and the shared map now holds the cells.
        let again = estimator
            .exact_sample_size_grid(&epsilons, &deltas, Tail::TwoSided)
            .unwrap();
        assert_eq!(grid, again);
        let bypass = SampleSizeEstimator::with_config(EstimatorConfig {
            cache: crate::cache::CachePolicy::Bypass,
            ..EstimatorConfig::default()
        })
        .exact_sample_size_grid(&epsilons, &deltas, Tail::TwoSided)
        .unwrap();
        assert_eq!(grid, bypass);
    }

    #[test]
    fn grid_entry_point_is_thread_count_invariant() {
        let epsilons = [0.08, 0.06, 0.12];
        let deltas = [0.02, 0.005];
        // Bypass the shared cache so every width recomputes.
        let estimator = SampleSizeEstimator::with_config(EstimatorConfig {
            cache: crate::cache::CachePolicy::Bypass,
            ..EstimatorConfig::default()
        });
        let one = estimator
            .exact_sample_size_grid_with_pool(&epsilons, &deltas, Tail::OneSided, &Pool::new(1))
            .unwrap();
        for threads in [2, 8] {
            let wide = estimator
                .exact_sample_size_grid_with_pool(
                    &epsilons,
                    &deltas,
                    Tail::OneSided,
                    &Pool::new(threads),
                )
                .unwrap();
            assert_eq!(one, wide, "threads={threads}");
        }
    }

    #[test]
    fn grid_entry_point_rejects_bad_cells() {
        let estimator = SampleSizeEstimator::new();
        assert!(estimator
            .exact_sample_size_grid(&[0.1], &[0.0], Tail::TwoSided)
            .is_err());
        assert!(estimator
            .exact_sample_size_grid(&[1.2], &[0.01], Tail::TwoSided)
            .is_err());
    }

    /// The wire encoding reproduces every estimate shape the estimator
    /// can emit — all three optimized plans and a multi-clause baseline
    /// with per-leaf breakdowns — bit for bit.
    #[test]
    fn wire_encoding_round_trips_every_plan_shape() {
        let estimator = SampleSizeEstimator::new();
        let scripts = [
            // Pattern 1 (hierarchical), Pattern 2 (implicit variance),
            // Pattern 3 (coarse-to-fine), baseline with clauses.
            script(
                "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
                0.9999,
                Adaptivity::None,
                32,
            ),
            script("n - o > 0.02 +/- 0.01", 0.999, Adaptivity::Full, 16),
            script("n > 0.9 +/- 0.02", 0.999, Adaptivity::None, 8),
            script(
                "n - 1.1 * o > 0.01 +/- 0.01 /\\ d < 0.1 +/- 0.01 /\\ n > 0.5 +/- 0.05",
                0.99,
                Adaptivity::FirstChange,
                4,
            ),
        ];
        for s in &scripts {
            for est in [
                estimator.estimate(s).unwrap(),
                estimator.estimate_baseline(s).unwrap(),
            ] {
                let wire = est.encode_wire();
                assert!(
                    !wire.contains(' ') && !wire.contains('\n'),
                    "wire token must fit one space-separated field: {wire}"
                );
                let back = SampleSizeEstimate::decode_wire(&wire).unwrap();
                assert_eq!(back, est, "round trip changed the estimate: {wire}");
            }
        }
        assert!(SampleSizeEstimate::decode_wire("garbage").is_none());
        assert!(SampleSizeEstimate::decode_wire("").is_none());
    }

    /// Plan-cache-served estimates are indistinguishable from fresh
    /// computation, and `estimate()` populates the shared cache under
    /// the fingerprint key.
    #[test]
    fn estimate_is_identical_with_and_without_plan_cache() {
        use crate::cache::{CachePolicy, PlanCache};
        for condition in [
            "n > 0.8 +/- 0.05",
            "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
            "n - o > 0.02 +/- 0.01",
            "n > 0.9 +/- 0.02",
        ] {
            // A reliability digit unique to this test keeps the
            // fingerprints disjoint from other tests sharing the global
            // cache.
            let s = script(condition, 0.99931, Adaptivity::Full, 12);
            let shared = SampleSizeEstimator::new();
            let bypass = SampleSizeEstimator::with_config(EstimatorConfig {
                cache: CachePolicy::Bypass,
                ..EstimatorConfig::default()
            });
            let cold = shared.estimate(&s).unwrap(); // miss: compute + store
            let warm = shared.estimate(&s).unwrap(); // hit: served from cache
            let fresh = bypass.estimate(&s).unwrap();
            assert_eq!(cold, warm, "{condition}");
            assert_eq!(warm, fresh, "{condition}");
            let fp = plan_fingerprint(&s, shared.config());
            assert_eq!(
                PlanCache::global().lookup(fp),
                Some(fresh),
                "{condition}: estimate() must have stored the plan"
            );
        }
    }

    /// The fingerprint canonicalizes formatting but separates semantics:
    /// the same condition written differently shares a key; any knob
    /// change gets its own.
    #[test]
    fn plan_fingerprint_canonicalizes_and_separates() {
        let a = script("n - o > 0.02 +/- 0.01", 0.999, Adaptivity::Full, 32);
        let b = CiScript::builder()
            .condition_str("n-o>0.02+/-0.01")
            .unwrap()
            .reliability(0.999)
            .mode(Mode::FpFree)
            .adaptivity(Adaptivity::Full)
            .steps(32)
            .build()
            .unwrap();
        let config = EstimatorConfig::default();
        assert_eq!(plan_fingerprint(&a, &config), plan_fingerprint(&b, &config));

        let mut variants = vec![
            plan_fingerprint(
                &script("n - o > 0.02 +/- 0.011", 0.999, Adaptivity::Full, 32),
                &config,
            ),
            plan_fingerprint(
                &script("n - o > 0.02 +/- 0.01", 0.9991, Adaptivity::Full, 32),
                &config,
            ),
            plan_fingerprint(
                &script("n - o > 0.02 +/- 0.01", 0.999, Adaptivity::None, 32),
                &config,
            ),
            plan_fingerprint(
                &script("n - o > 0.02 +/- 0.01", 0.999, Adaptivity::Full, 33),
                &config,
            ),
            plan_fingerprint(
                &a,
                &EstimatorConfig {
                    tail: Tail::TwoSided,
                    ..config
                },
            ),
            plan_fingerprint(
                &a,
                &EstimatorConfig {
                    leaf_bound: LeafBound::ExactBinomial,
                    ..config
                },
            ),
            plan_fingerprint(
                &a,
                &EstimatorConfig {
                    strategy: EstimatorStrategy::BaselineOnly,
                    ..config
                },
            ),
            plan_fingerprint(
                &a,
                &EstimatorConfig {
                    metric: MetricSensitivity {
                        f1_positive_rate: 0.25,
                        topk_mass: 0.5,
                    },
                    ..config
                },
            ),
        ];
        variants.push(plan_fingerprint(&a, &config));
        variants.sort();
        variants.dedup();
        assert_eq!(variants.len(), 9, "every knob must change the key");
    }

    #[test]
    fn metric_scripts_route_to_mcdiarmid_baseline_and_round_trip() {
        // Metric conditions never match a §4 pattern: they go through the
        // baseline recursion with McDiarmid leaves, cache cleanly, and
        // wire-encode losslessly.
        for condition in [
            "f1(n) - f1(o) > -0.02 +/- 0.01",
            "topk(n, 5) - topk(o, 5) > -0.02 +/- 0.01",
            "f1(n) > 0.8 +/- 0.05 /\\ d < 0.1 +/- 0.01",
        ] {
            let s = script(condition, 0.9999, Adaptivity::Full, 32);
            let estimator = SampleSizeEstimator::new();
            let est = estimator.estimate(&s).unwrap();
            assert!(
                matches!(est.provenance, EstimateProvenance::Baseline),
                "{condition}"
            );
            assert!(est.labeled_samples > 0, "{condition}");
            let wire = est.encode_wire();
            assert_eq!(
                SampleSizeEstimate::decode_wire(&wire).unwrap(),
                est,
                "{condition}"
            );
            // Cache round trip is bit-exact.
            let warm = estimator.estimate(&s).unwrap();
            assert_eq!(est, warm, "{condition}");
            // Tightening the sensitivity changes the answer (β = 2/π₊
            // shrinks as π₊ grows) — and the fingerprint keeps the two
            // cached plans separate.
            let tight = SampleSizeEstimator::with_config(EstimatorConfig {
                metric: MetricSensitivity {
                    f1_positive_rate: 1.0,
                    topk_mass: 1.0,
                },
                ..EstimatorConfig::default()
            })
            .estimate(&s)
            .unwrap();
            // (When a plain clause dominates the conjunction max, the
            // metric knob cannot shrink the total — only never grow it.)
            if condition.contains('d') {
                assert!(
                    tight.labeled_samples <= est.labeled_samples,
                    "{condition}: {} > {}",
                    tight.labeled_samples,
                    est.labeled_samples
                );
            } else {
                assert!(
                    tight.labeled_samples < est.labeled_samples,
                    "{condition}: {} !< {}",
                    tight.labeled_samples,
                    est.labeled_samples
                );
            }
        }
    }

    #[test]
    fn per_clause_breakdown_present_for_baseline() {
        let s = script(
            "n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01",
            0.999,
            Adaptivity::None,
            32,
        );
        let est = SampleSizeEstimator::new().estimate_baseline(&s).unwrap();
        assert_eq!(est.per_clause.len(), 2);
        assert!(est.per_clause[0].clause.contains("n - o"));
    }
}

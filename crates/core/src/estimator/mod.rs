//! The sample-size estimator utility (§2.3, §3, §4).
//!
//! Given a [`CiScript`], [`SampleSizeEstimator`] answers "how many test
//! examples must the user provide?" It first tries the §4 pattern
//! optimizations (unless configured baseline-only) and falls back to the
//! §3 Hoeffding recursion.
//!
//! ```
//! use easeml_ci_core::{CiScript, SampleSizeEstimator};
//!
//! # fn main() -> Result<(), easeml_ci_core::CiError> {
//! let script = CiScript::builder()
//!     .condition_str("n > 0.8 +/- 0.05")?
//!     .reliability(0.9999)
//!     .adaptivity(easeml_bounds::Adaptivity::Full)
//!     .steps(32)
//!     .build()?;
//! let estimate = SampleSizeEstimator::new().estimate(&script)?;
//! assert_eq!(estimate.labeled_samples, 6_279); // §3.3 worked example
//! # Ok(())
//! # }
//! ```

mod baseline;
mod pattern;

pub use baseline::{
    clause_sample_size, clause_sample_size_with_cache, formula_sample_size,
    formula_sample_size_with_cache, Allocation, ClauseEstimate, LeafBound, LeafEstimate,
};
pub use pattern::{
    coarse_to_fine_plan, hierarchical_plan, implicit_variance_plan, implicit_variance_test_phase,
    match_patterns, ActiveLabelingSchedule, CoarseToFinePlan, HierarchicalPlan,
    ImplicitVariancePlan, OptimizedPlan, Pattern1Options, Pattern2Options, PhaseEstimate,
};

use crate::cache::{BoundKind, BoundsCache, CachePolicy};
use crate::error::Result;
use crate::script::CiScript;
use easeml_bounds::Tail;
use easeml_par::Pool;

/// Strategy the estimator is allowed to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimatorStrategy {
    /// Pattern optimizations when they apply, baseline otherwise.
    #[default]
    Auto,
    /// Baseline Hoeffding recursion only (§3) — the ablation reference.
    BaselineOnly,
}

/// Configuration of the sample-size estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Which strategies may be used.
    pub strategy: EstimatorStrategy,
    /// ε-budget allocation for compound expressions.
    pub allocation: Allocation,
    /// Bound backing baseline leaves.
    pub leaf_bound: LeafBound,
    /// Tail sidedness (the paper's tables use one-sided).
    pub tail: Tail,
    /// Pattern 1 knobs.
    pub pattern1: Pattern1Options,
    /// Pattern 2 knobs.
    pub pattern2: Pattern2Options,
    /// Whether expensive leaf inversions consult the shared
    /// [`crate::BoundsCache`] (on by default; [`CachePolicy::Bypass`]
    /// recomputes everything).
    pub cache: CachePolicy,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            strategy: EstimatorStrategy::Auto,
            allocation: Allocation::EqualSplit,
            leaf_bound: LeafBound::Hoeffding,
            tail: Tail::OneSided,
            pattern1: Pattern1Options::default(),
            pattern2: Pattern2Options::default(),
            cache: CachePolicy::Shared,
        }
    }
}

/// The estimator's answer for a script.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSizeEstimate {
    /// Labelled examples the user must provide.
    pub labeled_samples: u64,
    /// Additional unlabeled examples (filter/probe phases).
    pub unlabeled_samples: u64,
    /// `ln δ` allocated to each individual test after adaptivity
    /// accounting.
    pub ln_delta_per_test: f64,
    /// Which path produced the estimate.
    pub provenance: EstimateProvenance,
    /// Per-clause breakdown when the baseline estimator ran.
    pub per_clause: Vec<ClauseEstimate>,
}

impl SampleSizeEstimate {
    /// Total examples (labelled + unlabeled) the user must provide.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.labeled_samples.saturating_add(self.unlabeled_samples)
    }
}

/// Which estimation path produced the final numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateProvenance {
    /// Baseline recursion (§3).
    Baseline,
    /// One of the §4 pattern plans (attached).
    Optimized(OptimizedPlan),
}

/// The sample-size estimator utility.
///
/// Stateless apart from its configuration; cheap to construct per query.
#[derive(Debug, Clone, Default)]
pub struct SampleSizeEstimator {
    config: EstimatorConfig,
}

impl SampleSizeEstimator {
    /// Estimator with the default configuration (auto strategy, paper
    /// tail conventions).
    #[must_use]
    pub fn new() -> Self {
        SampleSizeEstimator {
            config: EstimatorConfig::default(),
        }
    }

    /// Estimator with an explicit configuration.
    #[must_use]
    pub fn with_config(config: EstimatorConfig) -> Self {
        SampleSizeEstimator { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Estimate the testset size a script requires.
    ///
    /// # Errors
    ///
    /// Returns an error when the condition is semantically invalid or a
    /// bound computation rejects its parameters.
    pub fn estimate(&self, script: &CiScript) -> Result<SampleSizeEstimate> {
        let delta = script.delta();
        let adaptivity = script.adaptivity();
        let steps = script.steps();
        let ln_delta = adaptivity.ln_effective_delta(delta, steps)?;

        if self.config.strategy == EstimatorStrategy::Auto {
            if let Some(plan) = match_patterns(
                script.condition(),
                delta,
                steps,
                adaptivity,
                self.config.pattern1,
                self.config.pattern2,
            )? {
                return Ok(SampleSizeEstimate {
                    labeled_samples: plan.labeled_samples(),
                    unlabeled_samples: plan.unlabeled_samples(),
                    ln_delta_per_test: ln_delta,
                    provenance: EstimateProvenance::Optimized(plan),
                    per_clause: Vec::new(),
                });
            }
        }

        let (samples, per_clause) = baseline::formula_sample_size_with_cache(
            script.condition(),
            ln_delta,
            self.config.allocation,
            self.config.leaf_bound,
            self.config.tail,
            self.config.cache,
        )?;
        let needs_labels = script.condition().needs_labels();
        Ok(SampleSizeEstimate {
            labeled_samples: if needs_labels { samples } else { 0 },
            unlabeled_samples: if needs_labels { 0 } else { samples },
            ln_delta_per_test: ln_delta,
            provenance: EstimateProvenance::Baseline,
            per_clause,
        })
    }

    /// Baseline-only estimate, regardless of the configured strategy
    /// (used by benches to compute the optimization's saving factor).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::estimate`].
    pub fn estimate_baseline(&self, script: &CiScript) -> Result<SampleSizeEstimate> {
        let mut cfg = self.config;
        cfg.strategy = EstimatorStrategy::BaselineOnly;
        SampleSizeEstimator::with_config(cfg).estimate(script)
    }

    /// Figure-2-style table of §4.3 exact-binomial sample sizes:
    /// `result[i][j]` is the smallest `n` for `(epsilons[i], deltas[j])`
    /// at the given tail convention.
    ///
    /// The batch entry point of the serving stack: each cell first
    /// consults the shared [`BoundsCache`] (under the configured
    /// [`CachePolicy`]), and only the misses are dispatched — as one
    /// batch sharing search state per `ε`-column, columns in parallel on
    /// [`Pool::global`] — to
    /// [`easeml_bounds::exact_binomial_sample_size_batch`]'s cell API.
    /// Fresh inversions are stored back, so a warm cache turns the whole
    /// table into map lookups.
    ///
    /// # Errors
    ///
    /// Returns an error for any invalid `ε` or `δ`.
    pub fn exact_sample_size_grid(
        &self,
        epsilons: &[f64],
        deltas: &[f64],
        tail: Tail,
    ) -> Result<Vec<Vec<u64>>> {
        self.exact_sample_size_grid_with_pool(epsilons, deltas, tail, Pool::global())
    }

    /// [`Self::exact_sample_size_grid`] on an explicit pool (benches and
    /// determinism tests pin the thread count).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::exact_sample_size_grid`].
    pub fn exact_sample_size_grid_with_pool(
        &self,
        epsilons: &[f64],
        deltas: &[f64],
        tail: Tail,
        pool: &Pool,
    ) -> Result<Vec<Vec<u64>>> {
        let cache = match self.config.cache {
            CachePolicy::Shared => Some(BoundsCache::global()),
            CachePolicy::Bypass => None,
        };
        let mut grid = vec![vec![0u64; deltas.len()]; epsilons.len()];
        let mut miss_cells: Vec<(f64, f64)> = Vec::new();
        let mut miss_slots: Vec<(usize, usize)> = Vec::new();
        for (i, &eps) in epsilons.iter().enumerate() {
            for (j, &delta) in deltas.iter().enumerate() {
                // Invalid δ skips the probe and surfaces its error from
                // the batch dispatch below.
                let hit = match cache {
                    Some(c) if delta > 0.0 => {
                        c.lookup(BoundKind::ExactBinomialSampleSize, tail, eps, delta.ln())
                    }
                    _ => None,
                };
                match hit {
                    Some(n) => grid[i][j] = n,
                    None => {
                        miss_cells.push((eps, delta));
                        miss_slots.push((i, j));
                    }
                }
            }
        }
        if !miss_cells.is_empty() {
            let inverted =
                easeml_bounds::exact_binomial_sample_size_cells_with_pool(&miss_cells, tail, pool)?;
            for (((i, j), &(eps, delta)), &n) in miss_slots.iter().zip(&miss_cells).zip(&inverted) {
                grid[*i][*j] = n;
                if let Some(c) = cache {
                    c.store(BoundKind::ExactBinomialSampleSize, tail, eps, delta.ln(), n);
                }
            }
        }
        Ok(grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Mode;
    use easeml_bounds::Adaptivity;

    fn script(condition: &str, reliability: f64, adaptivity: Adaptivity, steps: u32) -> CiScript {
        CiScript::builder()
            .condition_str(condition)
            .unwrap()
            .reliability(reliability)
            .mode(Mode::FpFree)
            .adaptivity(adaptivity)
            .steps(steps)
            .build()
            .unwrap()
    }

    #[test]
    fn single_variable_baseline_matches_paper() {
        let s = script("n > 0.8 +/- 0.05", 0.9999, Adaptivity::Full, 32);
        let est = SampleSizeEstimator::new().estimate(&s).unwrap();
        assert_eq!(est.labeled_samples, 6_279);
        assert!(matches!(est.provenance, EstimateProvenance::Baseline));
    }

    #[test]
    fn pattern1_is_selected_automatically() {
        let s = script(
            "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
            0.9999,
            Adaptivity::None,
            32,
        );
        let est = SampleSizeEstimator::new().estimate(&s).unwrap();
        assert!(matches!(
            est.provenance,
            EstimateProvenance::Optimized(OptimizedPlan::Hierarchical(_))
        ));
        assert_eq!(est.labeled_samples, 29_048);
        assert!(est.unlabeled_samples > 0);

        let baseline = SampleSizeEstimator::new().estimate_baseline(&s).unwrap();
        assert!(matches!(baseline.provenance, EstimateProvenance::Baseline));
        assert!(baseline.labeled_samples > 8 * est.labeled_samples);
    }

    #[test]
    fn unlabeled_only_condition_requires_no_labels() {
        let s = script("d < 0.1 +/- 0.01", 0.9999, Adaptivity::None, 32);
        let est = SampleSizeEstimator::new().estimate(&s).unwrap();
        assert_eq!(est.labeled_samples, 0);
        assert!(est.unlabeled_samples > 0);
        // Matches the Figure 2 F4 column.
        assert_eq!(est.unlabeled_samples, 63_381);
    }

    #[test]
    fn total_samples_adds_both_pools() {
        let s = script(
            "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
            0.9999,
            Adaptivity::None,
            32,
        );
        let est = SampleSizeEstimator::new().estimate(&s).unwrap();
        assert_eq!(
            est.total_samples(),
            est.labeled_samples + est.unlabeled_samples
        );
    }

    #[test]
    fn grid_entry_point_matches_per_cell_and_fills_cache() {
        let epsilons = [0.1, 0.05];
        let deltas = [0.01, 0.001];
        let estimator = SampleSizeEstimator::new();
        let grid = estimator
            .exact_sample_size_grid(&epsilons, &deltas, Tail::TwoSided)
            .unwrap();
        for (i, &eps) in epsilons.iter().enumerate() {
            for (j, &delta) in deltas.iter().enumerate() {
                let single =
                    easeml_bounds::exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
                assert_eq!(grid[i][j], single, "eps={eps} delta={delta}");
            }
        }
        // A second pass must be pure cache hits: bypassing the cache and
        // hitting it must agree, and the shared map now holds the cells.
        let again = estimator
            .exact_sample_size_grid(&epsilons, &deltas, Tail::TwoSided)
            .unwrap();
        assert_eq!(grid, again);
        let bypass = SampleSizeEstimator::with_config(EstimatorConfig {
            cache: crate::cache::CachePolicy::Bypass,
            ..EstimatorConfig::default()
        })
        .exact_sample_size_grid(&epsilons, &deltas, Tail::TwoSided)
        .unwrap();
        assert_eq!(grid, bypass);
    }

    #[test]
    fn grid_entry_point_is_thread_count_invariant() {
        let epsilons = [0.08, 0.06, 0.12];
        let deltas = [0.02, 0.005];
        // Bypass the shared cache so every width recomputes.
        let estimator = SampleSizeEstimator::with_config(EstimatorConfig {
            cache: crate::cache::CachePolicy::Bypass,
            ..EstimatorConfig::default()
        });
        let one = estimator
            .exact_sample_size_grid_with_pool(&epsilons, &deltas, Tail::OneSided, &Pool::new(1))
            .unwrap();
        for threads in [2, 8] {
            let wide = estimator
                .exact_sample_size_grid_with_pool(
                    &epsilons,
                    &deltas,
                    Tail::OneSided,
                    &Pool::new(threads),
                )
                .unwrap();
            assert_eq!(one, wide, "threads={threads}");
        }
    }

    #[test]
    fn grid_entry_point_rejects_bad_cells() {
        let estimator = SampleSizeEstimator::new();
        assert!(estimator
            .exact_sample_size_grid(&[0.1], &[0.0], Tail::TwoSided)
            .is_err());
        assert!(estimator
            .exact_sample_size_grid(&[1.2], &[0.01], Tail::TwoSided)
            .is_err());
    }

    #[test]
    fn per_clause_breakdown_present_for_baseline() {
        let s = script(
            "n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01",
            0.999,
            Adaptivity::None,
            32,
        );
        let est = SampleSizeEstimator::new().estimate_baseline(&s).unwrap();
        assert_eq!(est.per_clause.len(), 2);
        assert!(est.per_clause[0].clause.contains("n - o"));
    }
}

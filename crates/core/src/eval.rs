//! Condition evaluation over confidence intervals (§3.5, Appendix A.2).
//!
//! Given point estimates of the three variables, each clause's left-hand
//! side becomes a confidence interval `x̂ ± ε` (with `ε` the clause's
//! tolerance). The clause evaluates to:
//!
//! * `True` when the whole interval clears the threshold,
//! * `False` when the whole interval misses it,
//! * `Unknown` when the interval straddles it.
//!
//! A formula is the Kleene conjunction of its clauses, and the script's
//! [`Mode`] collapses the three-valued result into the final pass/fail bit.

use crate::dsl::{Clause, CmpOp, Expr, Formula};
use crate::interval::Interval;
use crate::logic::{Mode, Tribool};

/// Point estimates of the condition variables for one commit.
///
/// The three plain variables are always present; the metric statistics
/// (`f1(...)`, `topk(...)`) are `Option`s because only prediction-vector
/// measurement over a per-class testset can produce them. Evaluating a
/// metric expression without the matching estimate is a caller bug and
/// panics loudly — the serve layer validates the measurement shape
/// against the formula before calling [`decide`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VariableEstimates {
    /// Estimated accuracy of the new model (`n̂`).
    pub n: f64,
    /// Estimated accuracy of the old model (`ô`).
    pub o: f64,
    /// Estimated fraction of changed predictions (`d̂`).
    pub d: f64,
    /// Estimated binary F1 of the new model, when measured.
    pub f1_n: Option<f64>,
    /// Estimated binary F1 of the old model, when measured.
    pub f1_o: Option<f64>,
    /// Estimated top-k accuracies of the new model as `(k, value)` pairs,
    /// when measured. At most [`MAX_TOPK_ESTIMATES`] distinct `k`s.
    pub topk_n: TopKEstimates,
    /// Estimated top-k accuracies of the old model, same shape.
    pub topk_o: TopKEstimates,
}

/// Maximum number of distinct `topk` class counts a formula may use.
///
/// Keeps [`VariableEstimates`] `Copy` (fixed-size storage); real formulas
/// use one or two `k`s.
pub const MAX_TOPK_ESTIMATES: usize = 4;

/// Fixed-capacity `(k, value)` map for top-k estimates.
pub type TopKEstimates = [Option<(u32, f64)>; MAX_TOPK_ESTIMATES];

impl VariableEstimates {
    /// Create a new set of estimates for the plain variables only.
    #[must_use]
    pub fn new(n: f64, o: f64, d: f64) -> Self {
        VariableEstimates {
            n,
            o,
            d,
            ..Default::default()
        }
    }

    /// Record a top-k estimate for the new (`is_new = true`) or old model.
    ///
    /// # Panics
    ///
    /// Panics when more than [`MAX_TOPK_ESTIMATES`] distinct `k`s are
    /// recorded for one model.
    pub fn set_topk(&mut self, is_new: bool, k: u32, value: f64) {
        let slots = if is_new {
            &mut self.topk_n
        } else {
            &mut self.topk_o
        };
        for slot in slots.iter_mut() {
            match slot {
                Some((existing, v)) if *existing == k => {
                    *v = value;
                    return;
                }
                None => {
                    *slot = Some((k, value));
                    return;
                }
                Some(_) => {}
            }
        }
        panic!("more than {MAX_TOPK_ESTIMATES} distinct topk class counts in one formula");
    }

    fn topk(&self, is_new: bool, k: u32) -> Option<f64> {
        let slots = if is_new { &self.topk_n } else { &self.topk_o };
        slots
            .iter()
            .flatten()
            .find(|&&(existing, _)| existing == k)
            .map(|&(_, v)| v)
    }

    /// Evaluate an expression at these point estimates.
    ///
    /// # Panics
    ///
    /// Panics when the expression references a metric variable whose
    /// estimate was not measured (see the type-level docs).
    #[must_use]
    pub fn evaluate_expr(&self, expr: &Expr) -> f64 {
        match expr {
            Expr::Var(crate::dsl::Var::N) => self.n,
            Expr::Var(crate::dsl::Var::O) => self.o,
            Expr::Var(crate::dsl::Var::D) => self.d,
            Expr::Var(crate::dsl::Var::F1N) => self
                .f1_n
                .expect("formula references f1(n) but no F1 estimate was measured"),
            Expr::Var(crate::dsl::Var::F1O) => self
                .f1_o
                .expect("formula references f1(o) but no F1 estimate was measured"),
            Expr::Var(crate::dsl::Var::TopKN(k)) => self.topk(true, *k).unwrap_or_else(|| {
                panic!("formula references topk(n, {k}) but no such estimate was measured")
            }),
            Expr::Var(crate::dsl::Var::TopKO(k)) => self.topk(false, *k).unwrap_or_else(|| {
                panic!("formula references topk(o, {k}) but no such estimate was measured")
            }),
            Expr::Scale(c, e) => c * self.evaluate_expr(e),
            Expr::Add(a, b) => self.evaluate_expr(a) + self.evaluate_expr(b),
            Expr::Sub(a, b) => self.evaluate_expr(a) - self.evaluate_expr(b),
        }
    }
}

/// The confidence interval of a clause's left-hand side: the point
/// estimate widened by the clause tolerance.
#[must_use]
pub fn clause_interval(clause: &Clause, est: &VariableEstimates) -> Interval {
    Interval::around(est.evaluate_expr(&clause.expr), clause.tolerance)
}

/// Evaluate one clause to a three-valued outcome.
///
/// # Examples
///
/// Appendix A.2's example `x < 0.1 +/- 0.01`:
///
/// ```
/// use easeml_ci_core::{evaluate_clause, Tribool, VariableEstimates};
/// use easeml_ci_core::dsl::parse_clause;
///
/// # fn main() -> Result<(), easeml_ci_core::CiError> {
/// let clause = parse_clause("d < 0.1 +/- 0.01")?;
/// let at = |d| VariableEstimates::new(0.0, 0.0, d);
/// assert_eq!(evaluate_clause(&clause, &at(0.085)), Tribool::True);   // d̂ < 0.09
/// assert_eq!(evaluate_clause(&clause, &at(0.115)), Tribool::False);  // d̂ > 0.11
/// assert_eq!(evaluate_clause(&clause, &at(0.100)), Tribool::Unknown);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn evaluate_clause(clause: &Clause, est: &VariableEstimates) -> Tribool {
    evaluate_clause_at(clause, est.evaluate_expr(&clause.expr))
}

/// Evaluate a clause given a pre-computed left-hand-side point estimate.
///
/// This is the primitive the engine uses when the LHS is measured by a
/// specialised estimator (e.g. the §4.1.2 difference trick measures
/// `n − o` directly without separate `n̂` and `ô`).
#[must_use]
pub fn evaluate_clause_at(clause: &Clause, lhs_estimate: f64) -> Tribool {
    let interval = Interval::around(lhs_estimate, clause.tolerance);
    match clause.cmp {
        CmpOp::Gt => {
            if interval.strictly_above(clause.threshold) {
                Tribool::True
            } else if interval.strictly_below(clause.threshold) {
                Tribool::False
            } else {
                Tribool::Unknown
            }
        }
        CmpOp::Lt => {
            if interval.strictly_below(clause.threshold) {
                Tribool::True
            } else if interval.strictly_above(clause.threshold) {
                Tribool::False
            } else {
                Tribool::Unknown
            }
        }
    }
}

/// Evaluate a formula: the Kleene conjunction of its clause outcomes.
#[must_use]
pub fn evaluate_formula(formula: &Formula, est: &VariableEstimates) -> Tribool {
    Tribool::all(formula.clauses().iter().map(|c| evaluate_clause(c, est)))
}

/// Full decision: evaluate the formula and collapse `Unknown` by mode.
///
/// Returns the pass/fail bit together with the intermediate three-valued
/// outcome (exposed because the engine logs it and the hybrid adaptivity
/// policy needs it).
#[must_use]
pub fn decide(formula: &Formula, est: &VariableEstimates, mode: Mode) -> (bool, Tribool) {
    let outcome = evaluate_formula(formula, est);
    (mode.decide(outcome), outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{parse_clause, parse_formula};

    fn est(n: f64, o: f64, d: f64) -> VariableEstimates {
        VariableEstimates::new(n, o, d)
    }

    #[test]
    fn improvement_clause_three_outcomes() {
        let c = parse_clause("n - o > 0.02 +/- 0.01").unwrap();
        // n - o = 0.05 > 0.03: certainly true.
        assert_eq!(evaluate_clause(&c, &est(0.90, 0.85, 0.0)), Tribool::True);
        // n - o = 0.005 < 0.01: certainly false.
        assert_eq!(evaluate_clause(&c, &est(0.855, 0.85, 0.0)), Tribool::False);
        // n - o = 0.025: straddles.
        assert_eq!(
            evaluate_clause(&c, &est(0.875, 0.85, 0.0)),
            Tribool::Unknown
        );
    }

    #[test]
    fn boundary_is_unknown() {
        // Exactly threshold + tolerance is NOT strictly above.
        let c = parse_clause("n > 0.8 +/- 0.05").unwrap();
        assert_eq!(evaluate_clause(&c, &est(0.85, 0.0, 0.0)), Tribool::Unknown);
        assert_eq!(evaluate_clause(&c, &est(0.850001, 0.0, 0.0)), Tribool::True);
        assert_eq!(evaluate_clause(&c, &est(0.75, 0.0, 0.0)), Tribool::Unknown);
        assert_eq!(
            evaluate_clause(&c, &est(0.749999, 0.0, 0.0)),
            Tribool::False
        );
    }

    #[test]
    fn formula_conjunction() {
        let f = parse_formula("n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01").unwrap();
        // Both certainly true.
        assert_eq!(evaluate_formula(&f, &est(0.9, 0.85, 0.05)), Tribool::True);
        // Improvement true, difference false -> False dominates.
        assert_eq!(evaluate_formula(&f, &est(0.9, 0.85, 0.3)), Tribool::False);
        // Improvement unknown, difference true -> Unknown.
        assert_eq!(
            evaluate_formula(&f, &est(0.875, 0.85, 0.05)),
            Tribool::Unknown
        );
        // Improvement unknown, difference false -> False (Kleene).
        assert_eq!(evaluate_formula(&f, &est(0.875, 0.85, 0.3)), Tribool::False);
    }

    #[test]
    fn decide_applies_mode() {
        let f = parse_formula("n - o > 0.02 +/- 0.01").unwrap();
        let straddling = est(0.875, 0.85, 0.0);
        let (pass_fp, out_fp) = decide(&f, &straddling, Mode::FpFree);
        assert_eq!(out_fp, Tribool::Unknown);
        assert!(!pass_fp, "fp-free must reject Unknown");
        let (pass_fn, _) = decide(&f, &straddling, Mode::FnFree);
        assert!(pass_fn, "fn-free must accept Unknown");
    }

    #[test]
    fn scaled_expression_evaluation() {
        let c = parse_clause("n - 1.1 * o > 0.01 +/- 0.01").unwrap();
        // n - 1.1o = 0.9 - 0.88 = 0.02 -> straddles [0.00, 0.02].
        assert_eq!(evaluate_clause(&c, &est(0.9, 0.8, 0.0)), Tribool::Unknown);
        // n - 1.1o = 0.95 - 0.77 = 0.18 -> certainly true.
        assert_eq!(evaluate_clause(&c, &est(0.95, 0.7, 0.0)), Tribool::True);
    }

    #[test]
    fn metric_expressions_evaluate_from_measured_estimates() {
        let c = parse_clause("f1(n) - f1(o) > -0.02 +/- 0.01").unwrap();
        let mut e = est(0.0, 0.0, 0.0);
        e.f1_n = Some(0.91);
        e.f1_o = Some(0.90);
        // f1(n) - f1(o) = 0.01 > -0.01: certainly true.
        assert_eq!(evaluate_clause(&c, &e), Tribool::True);
        e.f1_n = Some(0.85);
        // 0.85 - 0.90 = -0.05 < -0.03: certainly false.
        assert_eq!(evaluate_clause(&c, &e), Tribool::False);

        let c = parse_clause("topk(n, 5) > 0.9 +/- 0.02").unwrap();
        let mut e = est(0.0, 0.0, 0.0);
        e.set_topk(true, 5, 0.95);
        assert_eq!(evaluate_clause(&c, &e), Tribool::True);
        e.set_topk(true, 5, 0.91);
        assert_eq!(evaluate_clause(&c, &e), Tribool::Unknown);
    }

    #[test]
    #[should_panic(expected = "no F1 estimate")]
    fn metric_expression_without_estimate_panics() {
        let c = parse_clause("f1(n) > 0.8 +/- 0.05").unwrap();
        let _ = evaluate_clause(&c, &est(0.9, 0.9, 0.1));
    }

    #[test]
    fn interval_width_is_twice_tolerance() {
        let c = parse_clause("n > 0.8 +/- 0.05").unwrap();
        let i = clause_interval(&c, &est(0.9, 0.0, 0.0));
        assert!((i.width() - 0.1).abs() < 1e-12);
        assert!((i.midpoint() - 0.9).abs() < 1e-12);
    }
}

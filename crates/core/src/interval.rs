//! Closed-interval arithmetic for confidence-interval evaluation (§3.5).
//!
//! Instead of comparing point estimates against thresholds, ease.ml/ci
//! replaces every estimate by its confidence interval and evaluates the
//! condition with a "simple algebra over intervals" — e.g.
//! `[a, b] + [c, d] = [a + c, b + d]`. The resulting three-valued
//! comparison is handled in [`crate::logic`].

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` on the real line.
///
/// Invariant: `lo <= hi` and both endpoints are finite. Construction
/// enforces the invariant by panicking in debug builds and swapping in
/// release builds (a misordered interval is always a caller bug).
///
/// # Examples
///
/// ```
/// use easeml_ci_core::Interval;
///
/// let n = Interval::around(0.92, 0.01); // estimate ± tolerance
/// let o = Interval::around(0.90, 0.01);
/// let diff = n - o;
/// assert!((diff.lo() - 0.0).abs() < 1e-12);
/// assert!((diff.hi() - 0.04).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Create an interval from its endpoints.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi` or either endpoint is not
    /// finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(
            lo.is_finite() && hi.is_finite(),
            "interval endpoints must be finite"
        );
        debug_assert!(lo <= hi, "interval endpoints out of order: [{lo}, {hi}]");
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The degenerate interval `[x, x]`.
    #[must_use]
    pub fn point(x: f64) -> Self {
        Interval::new(x, x)
    }

    /// The interval `[center - radius, center + radius]` — the natural
    /// encoding of an `(ε, δ)` estimate `x̂ ± ε`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `radius` is negative.
    #[must_use]
    pub fn around(center: f64, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "radius must be non-negative");
        Interval::new(center - radius, center + radius)
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Midpoint of the interval.
    #[must_use]
    pub fn midpoint(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Total width `hi - lo` (twice the tolerance for an `x̂ ± ε`
    /// estimate).
    #[must_use]
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `x` lies in the closed interval.
    #[must_use]
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether the two intervals share at least one point.
    #[must_use]
    pub fn intersects(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection of two intervals, if non-empty.
    #[must_use]
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Smallest interval containing both inputs.
    #[must_use]
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Clamp the interval into `[min, max]` (used to keep accuracy
    /// estimates inside `[0, 1]`).
    #[must_use]
    pub fn clamp_to(self, min: f64, max: f64) -> Interval {
        Interval {
            lo: self.lo.clamp(min, max),
            hi: self.hi.clamp(min, max),
        }
    }

    /// Whether the whole interval is strictly greater than `x`.
    #[must_use]
    pub fn strictly_above(self, x: f64) -> bool {
        self.lo > x
    }

    /// Whether the whole interval is strictly smaller than `x`.
    #[must_use]
    pub fn strictly_below(self, x: f64) -> bool {
        self.hi < x
    }
}

impl Add for Interval {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl Sub for Interval {
    type Output = Interval;

    fn sub(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        }
    }
}

impl Neg for Interval {
    type Output = Interval;

    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl Mul<f64> for Interval {
    type Output = Interval;

    fn mul(self, c: f64) -> Interval {
        if c >= 0.0 {
            Interval {
                lo: self.lo * c,
                hi: self.hi * c,
            }
        } else {
            Interval {
                lo: self.hi * c,
                hi: self.lo * c,
            }
        }
    }
}

impl Mul<Interval> for f64 {
    type Output = Interval;

    fn mul(self, i: Interval) -> Interval {
        i * self
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(0.1, 0.3);
        assert_eq!(i.lo(), 0.1);
        assert_eq!(i.hi(), 0.3);
        assert!((i.midpoint() - 0.2).abs() < 1e-15);
        assert!((i.width() - 0.2).abs() < 1e-15);
        let p = Interval::point(0.5);
        assert_eq!(p.width(), 0.0);
        let a = Interval::around(0.9, 0.02);
        assert!((a.lo() - 0.88).abs() < 1e-15);
        assert!((a.hi() - 0.92).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_is_outward_sound() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(10.0, 20.0);
        assert_eq!(a + b, Interval::new(11.0, 22.0));
        assert_eq!(b - a, Interval::new(8.0, 19.0));
        assert_eq!(-a, Interval::new(-2.0, -1.0));
        assert_eq!(a * 3.0, Interval::new(3.0, 6.0));
        assert_eq!(a * -1.0, Interval::new(-2.0, -1.0));
        assert_eq!(2.0 * a, Interval::new(2.0, 4.0));
    }

    #[test]
    fn subtraction_width_adds() {
        // The width of a difference is the sum of the widths — exactly why
        // estimating n - o to ε needs each variable estimated to ε/2.
        let n = Interval::around(0.92, 0.01);
        let o = Interval::around(0.90, 0.01);
        assert!(((n - o).width() - 0.04).abs() < 1e-15);
    }

    #[test]
    fn containment_queries() {
        let i = Interval::new(0.0, 1.0);
        assert!(i.contains(0.0) && i.contains(1.0) && i.contains(0.5));
        assert!(!i.contains(-0.001) && !i.contains(1.001));
        assert!(i.intersects(Interval::new(0.9, 2.0)));
        assert!(!i.intersects(Interval::new(1.5, 2.0)));
        assert_eq!(
            i.intersection(Interval::new(0.5, 2.0)),
            Some(Interval::new(0.5, 1.0))
        );
        assert_eq!(i.intersection(Interval::new(2.0, 3.0)), None);
        assert_eq!(i.hull(Interval::new(2.0, 3.0)), Interval::new(0.0, 3.0));
    }

    #[test]
    fn strict_comparisons() {
        let i = Interval::new(0.11, 0.2);
        assert!(i.strictly_above(0.1));
        assert!(!i.strictly_above(0.11));
        assert!(i.strictly_below(0.21));
        assert!(!i.strictly_below(0.2));
    }

    #[test]
    fn clamping() {
        let i = Interval::new(-0.05, 1.02);
        assert_eq!(i.clamp_to(0.0, 1.0), Interval::new(0.0, 1.0));
        let j = Interval::new(0.2, 0.4).clamp_to(0.0, 1.0);
        assert_eq!(j, Interval::new(0.2, 0.4));
    }

    #[test]
    fn display() {
        assert_eq!(Interval::new(0.0, 0.5).to_string(), "[0, 0.5]");
    }
}

//! Order-statistics conditions (§2.2, extension 3): "make sure the new
//! model is among the top-k models in the development history".
//!
//! Each historical model carries an accuracy *confidence interval*
//! (measured when it was committed, all at a common per-test budget).
//! Whether the new model ranks in the top-k is then itself three-valued:
//!
//! * `True` — at most `k − 1` historical intervals lie *entirely above*
//!   the new model's interval (no ranking of the unknowns can push it
//!   out of the top k);
//! * `False` — at least `k` intervals lie entirely above it;
//! * `Unknown` — overlapping intervals make the rank undecidable at this
//!   tolerance.

use crate::error::{CiError, Result};
use crate::interval::Interval;
use crate::logic::Tribool;

/// One historical model's measured accuracy interval.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedModel {
    /// Identifier of the commit.
    pub id: String,
    /// Accuracy confidence interval (`estimate ± ε`).
    pub accuracy: Interval,
}

/// Evaluates "the candidate is among the top-k of the history", with the
/// usual fp-free/fn-free collapse left to the caller's [`crate::Mode`].
///
/// # Examples
///
/// ```
/// use easeml_ci_core::extensions::TopKGate;
/// use easeml_ci_core::{Interval, Tribool};
///
/// # fn main() -> Result<(), easeml_ci_core::CiError> {
/// let mut gate = TopKGate::new(2)?;
/// gate.record("m1", Interval::around(0.90, 0.01));
/// gate.record("m2", Interval::around(0.85, 0.01));
/// gate.record("m3", Interval::around(0.80, 0.01));
/// // 0.87 ± 0.01: certainly below m1, certainly above m3, and certainly
/// // above m2's [0.84, 0.86] — rank 2 of 4: in the top 2.
/// assert_eq!(gate.evaluate(Interval::around(0.87, 0.01)), Tribool::True);
/// // 0.82 ± 0.01: m1 and m2 are both certainly above — out of the top 2.
/// assert_eq!(gate.evaluate(Interval::around(0.82, 0.01)), Tribool::False);
/// // 0.85 ± 0.01 overlaps m2: undecidable.
/// assert_eq!(gate.evaluate(Interval::around(0.85, 0.01)), Tribool::Unknown);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TopKGate {
    k: usize,
    history: Vec<RankedModel>,
}

impl TopKGate {
    /// Gate for "among the top `k`" (k ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns an error for `k = 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(CiError::Semantic("top-k requires k >= 1".into()));
        }
        Ok(TopKGate {
            k,
            history: Vec::new(),
        })
    }

    /// The configured `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Record a historical model's measured interval.
    pub fn record(&mut self, id: impl Into<String>, accuracy: Interval) {
        self.history.push(RankedModel {
            id: id.into(),
            accuracy,
        });
    }

    /// Models recorded so far.
    #[must_use]
    pub fn history(&self) -> &[RankedModel] {
        &self.history
    }

    /// Three-valued "is the candidate among the top-k".
    #[must_use]
    pub fn evaluate(&self, candidate: Interval) -> Tribool {
        let certainly_above = self
            .history
            .iter()
            .filter(|m| m.accuracy.lo() > candidate.hi())
            .count();
        let possibly_above = self
            .history
            .iter()
            .filter(|m| m.accuracy.hi() > candidate.lo())
            .count();
        if certainly_above >= self.k {
            Tribool::False
        } else if possibly_above < self.k {
            Tribool::True
        } else {
            Tribool::Unknown
        }
    }

    /// Certain lower/upper bounds on the candidate's rank (1-based):
    /// `(best possible, worst possible)`.
    #[must_use]
    pub fn rank_bounds(&self, candidate: Interval) -> (usize, usize) {
        let certainly_above = self
            .history
            .iter()
            .filter(|m| m.accuracy.lo() > candidate.hi())
            .count();
        let possibly_above = self
            .history
            .iter()
            .filter(|m| m.accuracy.hi() > candidate.lo())
            .count();
        (certainly_above + 1, possibly_above + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> TopKGate {
        let mut g = TopKGate::new(3).unwrap();
        g.record("a", Interval::around(0.95, 0.01));
        g.record("b", Interval::around(0.90, 0.01));
        g.record("c", Interval::around(0.85, 0.01));
        g.record("d", Interval::around(0.80, 0.01));
        g.record("e", Interval::around(0.75, 0.01));
        g
    }

    #[test]
    fn clear_top_and_bottom() {
        let g = gate();
        // Better than everything: certainly top-3.
        assert_eq!(g.evaluate(Interval::around(0.99, 0.005)), Tribool::True);
        // Worse than everything: four models certainly above > k−1.
        assert_eq!(g.evaluate(Interval::around(0.60, 0.01)), Tribool::False);
    }

    #[test]
    fn mid_ranks() {
        let g = gate();
        // Between b and c (0.875 ± 0.005): a, b certainly above; c, d, e
        // certainly below — rank exactly 3: in the top 3.
        assert_eq!(g.evaluate(Interval::around(0.875, 0.005)), Tribool::True);
        // Between c and d: three certainly above -> out.
        assert_eq!(g.evaluate(Interval::around(0.825, 0.005)), Tribool::False);
    }

    #[test]
    fn overlap_is_unknown() {
        let g = gate();
        // Overlapping c (the k-th boundary): undecidable.
        assert_eq!(g.evaluate(Interval::around(0.85, 0.02)), Tribool::Unknown);
    }

    #[test]
    fn rank_bounds_are_consistent() {
        let g = gate();
        let candidate = Interval::around(0.875, 0.005);
        let (best, worst) = g.rank_bounds(candidate);
        assert_eq!((best, worst), (3, 3));
        let fuzzy = Interval::around(0.85, 0.02);
        let (best, worst) = g.rank_bounds(fuzzy);
        assert!(best <= 3 && worst >= 4, "({best}, {worst})");
    }

    #[test]
    fn empty_history_accepts_everything() {
        let g = TopKGate::new(1).unwrap();
        assert_eq!(g.evaluate(Interval::around(0.1, 0.05)), Tribool::True);
    }

    #[test]
    fn k_zero_rejected() {
        assert!(TopKGate::new(0).is_err());
        assert_eq!(gate().k(), 3);
        assert_eq!(gate().history().len(), 5);
    }

    /// Soundness: whenever the gate says True/False with intervals that
    /// contain the true values, the true rank agrees.
    #[test]
    fn verdicts_sound_under_containment() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            let k = rng.random_range(1..4usize);
            let mut g = TopKGate::new(k).unwrap();
            let mut truths = Vec::new();
            for i in 0..6 {
                let truth: f64 = rng.random();
                let eps: f64 = rng.random_range(0.005..0.05);
                let est = (truth + rng.random_range(-1.0..1.0) * eps).clamp(0.0, 1.0);
                g.record(format!("m{i}"), Interval::around(est, eps));
                truths.push(truth);
            }
            let cand_truth: f64 = rng.random();
            let eps: f64 = rng.random_range(0.005..0.05);
            let cand_est = (cand_truth + rng.random_range(-1.0..1.0) * eps).clamp(0.0, 1.0);
            let verdict = g.evaluate(Interval::around(cand_est, eps));
            let true_rank = 1 + truths.iter().filter(|&&t| t > cand_truth).count();
            match verdict {
                Tribool::True => assert!(true_rank <= k, "rank {true_rank} > k {k}"),
                Tribool::False => assert!(true_rank > k, "rank {true_rank} <= k {k}"),
                Tribool::Unknown => {}
            }
        }
    }
}

//! Extensions sketched in the paper's §2.2 "Discussion and Future
//! Extensions": beyond-accuracy metrics via McDiarmid sensitivity
//! analysis, and concept-drift monitoring as the dual of CI.

mod drift;
mod f1;
mod topk;

pub use drift::{DriftMonitor, DriftReport, DriftVerdict};
pub use f1::{f1_sample_size, f1_score, F1Sensitivity};
pub use topk::{RankedModel, TopKGate};

//! Concept-drift monitoring (§2.2): the dual of continuous integration.
//!
//! The paper observes that monitoring concept shift inverts the CI
//! setting: "instead of fixing the test set and testing multiple models,
//! monitoring concept shift is to fix a single model and test its
//! generalization over multiple test sets over time". The same
//! statistical machinery applies — each incoming testset yields an
//! `(ε, δ)`-estimate of the fixed model's accuracy, and a union bound
//! over the monitoring horizon keeps the whole watch reliable.

use crate::error::{CiError, EngineError, Result};
use crate::interval::Interval;
use crate::logic::Tribool;
use easeml_bounds::{hoeffding_epsilon_from_ln_delta, Tail};

/// Verdict for one monitoring window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriftVerdict {
    /// The window's confidence interval stays within tolerance of the
    /// reference accuracy.
    Stable,
    /// The interval straddles the alarm boundary: keep watching.
    Suspect,
    /// The whole interval is below the alarm boundary: drift confirmed
    /// (w.p. `1 − δ`).
    Drifted,
}

/// Report for one monitoring window.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// 1-based window index.
    pub window: u32,
    /// Accuracy estimate on this window.
    pub accuracy: f64,
    /// Confidence half-width achieved by this window's size.
    pub epsilon: f64,
    /// The verdict.
    pub verdict: DriftVerdict,
}

/// Monitors a *fixed* model's accuracy across a stream of testset
/// windows with an overall `(drop, δ)` guarantee over `horizon` windows.
///
/// An alarm (`Drifted`) means: with probability at least `1 − δ` over
/// the whole monitoring horizon, the model's true accuracy on the
/// current distribution is more than `drop` below the reference
/// accuracy.
///
/// # Examples
///
/// ```
/// use easeml_ci_core::extensions::{DriftMonitor, DriftVerdict};
///
/// # fn main() -> Result<(), easeml_ci_core::CiError> {
/// let mut monitor = DriftMonitor::new(0.92, 0.05, 0.001, 12)?;
/// // A healthy window: accuracy near reference.
/// let report = monitor.observe_counts(9_150, 10_000)?;
/// assert_eq!(report.verdict, DriftVerdict::Stable);
/// // A collapsed window: accuracy far below reference.
/// let report = monitor.observe_counts(8_000, 10_000)?;
/// assert_eq!(report.verdict, DriftVerdict::Drifted);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriftMonitor {
    reference_accuracy: f64,
    drop_tolerance: f64,
    ln_delta_per_window: f64,
    horizon: u32,
    windows_seen: u32,
    reports: Vec<DriftReport>,
}

impl DriftMonitor {
    /// Create a monitor.
    ///
    /// * `reference_accuracy` — accuracy certified when the model was
    ///   deployed;
    /// * `drop_tolerance` — the accuracy drop that counts as drift;
    /// * `delta` — failure budget over the whole horizon;
    /// * `horizon` — number of windows the budget must cover.
    ///
    /// # Errors
    ///
    /// Returns an error for parameters outside their domains.
    pub fn new(
        reference_accuracy: f64,
        drop_tolerance: f64,
        delta: f64,
        horizon: u32,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&reference_accuracy) {
            return Err(CiError::Semantic(format!(
                "reference accuracy must be in [0, 1], got {reference_accuracy}"
            )));
        }
        if !(drop_tolerance > 0.0 && drop_tolerance < 1.0) {
            return Err(CiError::Semantic(format!(
                "drop tolerance must be in (0, 1), got {drop_tolerance}"
            )));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CiError::Semantic(format!(
                "delta must be in (0, 1), got {delta}"
            )));
        }
        if horizon == 0 {
            return Err(CiError::Semantic("horizon must be at least 1".into()));
        }
        // Union bound over the monitoring horizon (windows are fresh
        // samples; the fixed model cannot adapt, so δ/H suffices).
        let ln_delta_per_window = delta.ln() - f64::from(horizon).ln();
        Ok(DriftMonitor {
            reference_accuracy,
            drop_tolerance,
            ln_delta_per_window,
            horizon,
            windows_seen: 0,
            reports: Vec::new(),
        })
    }

    /// Observe one window given correct/total counts.
    ///
    /// # Errors
    ///
    /// Returns an error when the horizon is exhausted, the window is
    /// empty, or `correct > total`.
    pub fn observe_counts(&mut self, correct: u64, total: u64) -> Result<DriftReport> {
        if self.windows_seen >= self.horizon {
            return Err(EngineError::BudgetExhausted {
                steps: self.horizon,
            }
            .into());
        }
        if total == 0 || correct > total {
            return Err(CiError::Semantic(format!(
                "invalid window counts: {correct}/{total}"
            )));
        }
        let accuracy = correct as f64 / total as f64;
        let epsilon =
            hoeffding_epsilon_from_ln_delta(1.0, total, self.ln_delta_per_window, Tail::TwoSided)?;
        let interval = Interval::around(accuracy, epsilon);
        let boundary = self.reference_accuracy - self.drop_tolerance;
        let verdict = if interval.strictly_below(boundary) {
            DriftVerdict::Drifted
        } else if interval.strictly_above(boundary) {
            DriftVerdict::Stable
        } else {
            DriftVerdict::Suspect
        };
        self.windows_seen += 1;
        let report = DriftReport {
            window: self.windows_seen,
            accuracy,
            epsilon,
            verdict,
        };
        self.reports.push(report.clone());
        Ok(report)
    }

    /// Observe one window given predictions and labels.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::observe_counts`], plus a length
    /// mismatch error.
    pub fn observe(&mut self, predictions: &[u32], labels: &[u32]) -> Result<DriftReport> {
        if predictions.len() != labels.len() {
            return Err(EngineError::PredictionLengthMismatch {
                got: predictions.len(),
                want: labels.len(),
            }
            .into());
        }
        let correct = predictions
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count() as u64;
        self.observe_counts(correct, labels.len() as u64)
    }

    /// Three-valued "has the model drifted" summary over all windows:
    /// `True` if any window confirmed drift, `False` if every window was
    /// stable, `Unknown` otherwise.
    #[must_use]
    pub fn drifted(&self) -> Tribool {
        if self
            .reports
            .iter()
            .any(|r| r.verdict == DriftVerdict::Drifted)
        {
            Tribool::True
        } else if self
            .reports
            .iter()
            .all(|r| r.verdict == DriftVerdict::Stable)
        {
            Tribool::False
        } else {
            Tribool::Unknown
        }
    }

    /// Reports for the windows observed so far.
    #[must_use]
    pub fn reports(&self) -> &[DriftReport] {
        &self.reports
    }

    /// Windows remaining in the horizon.
    #[must_use]
    pub fn windows_remaining(&self) -> u32 {
        self.horizon - self.windows_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> DriftMonitor {
        DriftMonitor::new(0.9, 0.05, 0.001, 10).unwrap()
    }

    #[test]
    fn stable_window() {
        let mut m = monitor();
        let r = m.observe_counts(8_950, 10_000).unwrap();
        assert_eq!(r.verdict, DriftVerdict::Stable);
        assert_eq!(m.drifted(), Tribool::False);
        assert_eq!(m.windows_remaining(), 9);
    }

    #[test]
    fn drifted_window() {
        let mut m = monitor();
        let r = m.observe_counts(8_000, 10_000).unwrap();
        assert_eq!(r.verdict, DriftVerdict::Drifted);
        assert_eq!(m.drifted(), Tribool::True);
    }

    #[test]
    fn suspect_window_near_boundary() {
        let mut m = monitor();
        // Boundary at 0.85; with 1 000 samples ε ≈ 0.066: straddles.
        let r = m.observe_counts(850, 1_000).unwrap();
        assert_eq!(r.verdict, DriftVerdict::Suspect);
        assert_eq!(m.drifted(), Tribool::Unknown);
    }

    #[test]
    fn bigger_windows_sharpen_the_verdict() {
        let mut m = monitor();
        let small = m.observe_counts(870, 1_000).unwrap();
        let large = m.observe_counts(87_000, 100_000).unwrap();
        assert!(large.epsilon < small.epsilon);
        assert_eq!(small.verdict, DriftVerdict::Suspect);
        assert_eq!(large.verdict, DriftVerdict::Stable);
    }

    #[test]
    fn horizon_is_enforced() {
        let mut m = DriftMonitor::new(0.9, 0.05, 0.001, 2).unwrap();
        m.observe_counts(900, 1_000).unwrap();
        m.observe_counts(900, 1_000).unwrap();
        assert!(m.observe_counts(900, 1_000).is_err());
        assert_eq!(m.windows_remaining(), 0);
        assert_eq!(m.reports().len(), 2);
    }

    #[test]
    fn observe_from_predictions() {
        let mut m = monitor();
        let preds = vec![1u32; 1_000];
        let mut labels = vec![1u32; 1_000];
        for l in labels.iter_mut().take(50) {
            *l = 0;
        }
        let r = m.observe(&preds, &labels).unwrap();
        assert!((r.accuracy - 0.95).abs() < 1e-12);
        assert!(m.observe(&preds[..10], &labels).is_err());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(DriftMonitor::new(1.5, 0.05, 0.001, 10).is_err());
        assert!(DriftMonitor::new(0.9, 0.0, 0.001, 10).is_err());
        assert!(DriftMonitor::new(0.9, 0.05, 0.0, 10).is_err());
        assert!(DriftMonitor::new(0.9, 0.05, 0.001, 0).is_err());
        let mut m = monitor();
        assert!(m.observe_counts(11, 10).is_err());
        assert!(m.observe_counts(0, 0).is_err());
    }
}

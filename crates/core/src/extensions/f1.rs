//! F1-score testing via McDiarmid's inequality (§2.2, extension 1).
//!
//! The paper notes that metrics beyond accuracy (F1, AUC) can be
//! supported by "replacing the Bennett's inequality with the McDiarmid's
//! inequality, together with the sensitivity of F1-score". This module
//! provides exactly that: a bounded-differences sensitivity analysis for
//! the (binary) F1-score and the induced sample-size estimator.
//!
//! # Sensitivity analysis
//!
//! With `TP`, `FP`, `FN` counted over `m` test points,
//! `F1 = 2TP / (2TP + FP + FN)`. Changing a single test point changes
//! each count by at most one, and a one-step change of the counts moves
//! F1 by at most `2 / (2TP + FP + FN + 1)`. Writing `π₊` for a lower
//! bound on the positive-class rate (so `TP + FN ≥ π₊·m`), the
//! denominator is at least `2π₊·m·F1-ish` terms — conservatively,
//! per-sample sensitivity `c ≤ 2 / (π₊ · m)`, i.e. a sensitivity scale
//! `β = 2/π₊` in the `β/m` convention of
//! [`easeml_bounds::mcdiarmid_sample_size`].

use crate::error::{CiError, Result};
use easeml_bounds::{mcdiarmid_sample_size_from_ln_delta, Tail};

/// Sensitivity model of the binary F1-score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Sensitivity {
    /// Lower bound on the positive-class rate `π₊ ∈ (0, 1]`.
    pub positive_rate: f64,
}

impl F1Sensitivity {
    /// Create a sensitivity model.
    ///
    /// # Errors
    ///
    /// Returns an error unless `positive_rate ∈ (0, 1]`.
    pub fn new(positive_rate: f64) -> Result<Self> {
        if !(positive_rate > 0.0 && positive_rate <= 1.0) {
            return Err(CiError::Semantic(format!(
                "positive rate must be in (0, 1], got {positive_rate}"
            )));
        }
        Ok(F1Sensitivity { positive_rate })
    }

    /// Sensitivity scale `β` such that changing one of `m` samples moves
    /// F1 by at most `β/m`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        2.0 / self.positive_rate
    }
}

/// Samples needed to estimate an F1-score to `(ε, δ)` under the
/// sensitivity model, via McDiarmid.
///
/// # Errors
///
/// Returns an error for invalid `eps`/`ln_delta`.
///
/// # Examples
///
/// ```
/// use easeml_ci_core::extensions::{f1_sample_size, F1Sensitivity};
/// use easeml_bounds::Tail;
///
/// # fn main() -> Result<(), easeml_ci_core::CiError> {
/// let sens = F1Sensitivity::new(0.5)?; // balanced classes: β = 4
/// let n = f1_sample_size(&sens, 0.05, (0.001f64).ln(), Tail::TwoSided)?;
/// // 16× the ≈1.5K-sample accuracy requirement at the same (ε, δ).
/// assert!(n > 20_000 && n < 30_000);
/// # Ok(())
/// # }
/// ```
pub fn f1_sample_size(
    sensitivity: &F1Sensitivity,
    eps: f64,
    ln_delta: f64,
    tail: Tail,
) -> Result<u64> {
    Ok(mcdiarmid_sample_size_from_ln_delta(
        sensitivity.beta(),
        eps,
        ln_delta,
        tail,
    )?)
}

/// Compute the binary F1-score of predictions against labels, treating
/// class `positive` as the positive class.
///
/// Returns 0 when there are no true positives (the conventional value
/// when precision + recall = 0).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn f1_score(predictions: &[u32], labels: &[u32], positive: u32) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "prediction/label length mismatch"
    );
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    for (&p, &l) in predictions.iter().zip(labels) {
        match (p == positive, l == positive) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    if tp == 0 {
        return 0.0;
    }
    2.0 * tp as f64 / (2.0 * tp as f64 + fp as f64 + fn_ as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_score_known_cases() {
        // Perfect predictions.
        assert_eq!(f1_score(&[1, 0, 1], &[1, 0, 1], 1), 1.0);
        // No true positives.
        assert_eq!(f1_score(&[0, 0], &[1, 1], 1), 0.0);
        // tp=1, fp=1, fn=1 -> F1 = 2/(2+1+1) = 0.5.
        let f1 = f1_score(&[1, 1, 0], &[1, 0, 1], 1);
        assert!((f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_sensitivity_respects_bound() {
        // Flip each point of a fixed dataset and check |ΔF1| ≤ β/m with
        // β from the true positive rate.
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 2 == 0)).collect();
        let preds: Vec<u32> = (0..40).map(|i| u32::from(i % 3 != 0)).collect();
        let m = labels.len() as f64;
        let pos_rate = labels.iter().filter(|&&l| l == 1).count() as f64 / m;
        let sens = F1Sensitivity::new(pos_rate).unwrap();
        let base = f1_score(&preds, &labels, 1);
        for i in 0..labels.len() {
            // Perturb the prediction at i.
            let mut p2 = preds.clone();
            p2[i] = 1 - p2[i];
            let delta = (f1_score(&p2, &labels, 1) - base).abs();
            assert!(
                delta <= sens.beta() / m + 1e-12,
                "flip {i}: delta={delta} bound={}",
                sens.beta() / m
            );
        }
    }

    #[test]
    fn sample_size_scales_with_imbalance() {
        let balanced = F1Sensitivity::new(0.5).unwrap();
        let skewed = F1Sensitivity::new(0.05).unwrap();
        let ln_delta = (0.001f64).ln();
        let n_bal = f1_sample_size(&balanced, 0.05, ln_delta, Tail::TwoSided).unwrap();
        let n_skew = f1_sample_size(&skewed, 0.05, ln_delta, Tail::TwoSided).unwrap();
        // 10× rarer positives -> 100× more samples.
        let ratio = n_skew as f64 / n_bal as f64;
        assert!((ratio - 100.0).abs() < 1.0, "ratio = {ratio}");
    }

    #[test]
    fn rejects_bad_positive_rate() {
        assert!(F1Sensitivity::new(0.0).is_err());
        assert!(F1Sensitivity::new(1.5).is_err());
        assert!(F1Sensitivity::new(1.0).is_ok());
    }
}

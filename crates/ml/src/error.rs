//! Error type for the ML substrate.

use std::error::Error;
use std::fmt;

/// Error raised by dataset construction or model training/inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Matrix/vector dimensions do not line up.
    ShapeMismatch {
        /// What was being attempted.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Offending dimension.
        got: usize,
    },
    /// The dataset is empty or otherwise unusable for the operation.
    EmptyDataset,
    /// A label is outside `0..num_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: u32,
        /// The declared number of classes.
        num_classes: u32,
    },
    /// The model was asked to predict before being fitted.
    NotFitted,
    /// An invalid hyper-parameter was supplied.
    InvalidHyperparameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch {
                context,
                expected,
                got,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected}, got {got}"
                )
            }
            MlError::EmptyDataset => write!(f, "dataset has no examples"),
            MlError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::InvalidHyperparameter { name, constraint } => {
                write!(f, "hyper-parameter `{name}` must satisfy: {constraint}")
            }
        }
    }
}

impl Error for MlError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MlError::ShapeMismatch {
            context: "matmul",
            expected: 3,
            got: 4,
        };
        assert!(e.to_string().contains("matmul"));
        assert!(MlError::EmptyDataset.to_string().contains("no examples"));
        assert!(MlError::NotFitted.to_string().contains("fitted"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}

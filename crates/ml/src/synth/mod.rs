//! Synthetic data generators.
//!
//! These stand in for the datasets the paper evaluates on (infinite
//! MNIST, the SemEval-2019 Task 3 corpus): the bounds only ever see
//! per-example correctness bits, so distributionally controlled synthetic
//! data exercises the same code paths (see DESIGN.md §3).

pub mod text;

use crate::dataset::Dataset;
use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use rand::Rng;

/// Configuration for the Gaussian-blobs generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlobsConfig {
    /// Number of classes (one blob each).
    pub num_classes: u32,
    /// Feature dimensionality (≥ 2).
    pub dim: usize,
    /// Per-coordinate standard deviation of each blob.
    pub noise: f64,
    /// Fraction of labels flipped to a random class after generation.
    pub label_noise: f64,
}

impl Default for BlobsConfig {
    fn default() -> Self {
        BlobsConfig {
            num_classes: 4,
            dim: 8,
            noise: 0.6,
            label_noise: 0.0,
        }
    }
}

/// Sample a standard normal via Box–Muller (avoids an extra dependency).
pub(crate) fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Generate `n` examples from Gaussian blobs whose means sit on the
/// vertices of a scaled simplex (class `k` has mean `2·e_{k mod dim}`
/// shifted by `k / dim`).
///
/// # Errors
///
/// Returns an error for a zero-class or zero-dimensional request.
///
/// # Examples
///
/// ```
/// use easeml_ml::synth::{blobs, BlobsConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), easeml_ml::MlError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let data = blobs(1_000, &BlobsConfig::default(), &mut rng)?;
/// assert_eq!(data.len(), 1_000);
/// assert_eq!(data.num_classes(), 4);
/// # Ok(())
/// # }
/// ```
pub fn blobs<R: Rng>(n: usize, config: &BlobsConfig, rng: &mut R) -> Result<Dataset> {
    if config.num_classes == 0 {
        return Err(MlError::InvalidHyperparameter {
            name: "num_classes",
            constraint: "must be at least 1",
        });
    }
    if config.dim == 0 {
        return Err(MlError::InvalidHyperparameter {
            name: "dim",
            constraint: "must be at least 1",
        });
    }
    if n == 0 {
        return Err(MlError::EmptyDataset);
    }
    let mut data = Vec::with_capacity(n * config.dim);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = rng.random_range(0..config.num_classes);
        let axis = (class as usize) % config.dim;
        let shift = (class as usize / config.dim) as f64;
        for d in 0..config.dim {
            let mean = if d == axis { 2.0 + shift } else { shift * 0.5 };
            let v = mean + config.noise * sample_standard_normal(rng);
            data.push(v as f32);
        }
        let label = if config.label_noise > 0.0 && rng.random::<f64>() < config.label_noise {
            rng.random_range(0..config.num_classes)
        } else {
            class
        };
        labels.push(label);
    }
    let features = Matrix::from_vec(n, config.dim, data)?;
    Dataset::new(features, labels, config.num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blobs_shape_and_determinism() {
        let cfg = BlobsConfig::default();
        let a = blobs(500, &cfg, &mut StdRng::seed_from_u64(42)).unwrap();
        let b = blobs(500, &cfg, &mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.dim(), cfg.dim);
    }

    #[test]
    fn blobs_cover_all_classes() {
        let cfg = BlobsConfig {
            num_classes: 6,
            ..BlobsConfig::default()
        };
        let data = blobs(3_000, &cfg, &mut StdRng::seed_from_u64(1)).unwrap();
        let counts = data.class_counts();
        assert_eq!(counts.len(), 6);
        assert!(counts.iter().all(|&c| c > 300), "counts = {counts:?}");
    }

    #[test]
    fn blobs_are_separable_when_noise_is_low() {
        // Nearest-mean classification on clean blobs should be near-perfect.
        let cfg = BlobsConfig {
            num_classes: 3,
            dim: 3,
            noise: 0.1,
            label_noise: 0.0,
        };
        let data = blobs(600, &cfg, &mut StdRng::seed_from_u64(2)).unwrap();
        // Compute class means.
        let mut means = vec![vec![0.0f32; 3]; 3];
        let counts = data.class_counts();
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            for (m, &v) in means[y as usize].iter_mut().zip(x) {
                *m += v;
            }
        }
        for (mean, &count) in means.iter_mut().zip(&counts) {
            for v in mean.iter_mut() {
                *v /= count as f32;
            }
        }
        let mut correct = 0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (k, mean) in means.iter().enumerate() {
                let d: f32 = x.iter().zip(mean).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = k;
                }
            }
            if best == y as usize {
                correct += 1;
            }
        }
        let acc = f64::from(correct) / data.len() as f64;
        assert!(acc > 0.99, "accuracy = {acc}");
    }

    #[test]
    fn label_noise_reduces_purity() {
        let clean = BlobsConfig {
            label_noise: 0.0,
            ..BlobsConfig::default()
        };
        let noisy = BlobsConfig {
            label_noise: 0.5,
            ..BlobsConfig::default()
        };
        let a = blobs(2_000, &clean, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = blobs(2_000, &noisy, &mut StdRng::seed_from_u64(3)).unwrap();
        // With 50% flips to a uniform class, labels agree less often.
        let agree = a
            .labels()
            .iter()
            .zip(b.labels())
            .filter(|(x, y)| x == y)
            .count();
        let rate = agree as f64 / 2_000.0;
        assert!(rate < 0.75, "agreement = {rate}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn rejects_bad_configs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(blobs(0, &BlobsConfig::default(), &mut rng).is_err());
        let bad = BlobsConfig {
            num_classes: 0,
            ..BlobsConfig::default()
        };
        assert!(blobs(10, &bad, &mut rng).is_err());
        let bad = BlobsConfig {
            dim: 0,
            ..BlobsConfig::default()
        };
        assert!(blobs(10, &bad, &mut rng).is_err());
    }
}

//! Synthetic emotion-classification corpus.
//!
//! Stands in for SemEval-2019 Task 3 ("EmoContext"): classify a user
//! utterance as Happy, Sad, Angry, or Others. Utterances are token
//! sequences drawn from a Zipf-distributed shared vocabulary mixed with
//! class-specific emotion keywords; features are hashed bags of words.
//! The class priors mirror the competition's skew towards `Others`.

use crate::dataset::Dataset;
use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use rand::Rng;

/// The four EmoContext classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Emotion {
    /// Happy utterances.
    Happy,
    /// Sad utterances.
    Sad,
    /// Angry utterances.
    Angry,
    /// Everything else (the majority class).
    Others,
}

impl Emotion {
    /// All classes in label order.
    pub const ALL: [Emotion; 4] = [
        Emotion::Happy,
        Emotion::Sad,
        Emotion::Angry,
        Emotion::Others,
    ];

    /// Class label index.
    #[must_use]
    pub fn label(self) -> u32 {
        match self {
            Emotion::Happy => 0,
            Emotion::Sad => 1,
            Emotion::Angry => 2,
            Emotion::Others => 3,
        }
    }

    /// Class prior probabilities (Others-heavy, like the competition).
    #[must_use]
    pub fn prior(self) -> f64 {
        match self {
            Emotion::Happy | Emotion::Sad | Emotion::Angry => 0.14,
            Emotion::Others => 0.58,
        }
    }
}

/// Configuration for the synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmotionCorpusConfig {
    /// Shared vocabulary size (background tokens).
    pub vocab_size: u32,
    /// Emotion-keyword tokens per class (appended after the shared
    /// vocabulary in token id space).
    pub keywords_per_class: u32,
    /// Probability that a token of an emotional utterance is drawn from
    /// its class's keyword list rather than the background (higher =
    /// easier task).
    pub keyword_rate: f64,
    /// Utterance length range (inclusive).
    pub min_len: usize,
    /// Maximum utterance length (inclusive).
    pub max_len: usize,
}

impl Default for EmotionCorpusConfig {
    fn default() -> Self {
        EmotionCorpusConfig {
            vocab_size: 2_000,
            keywords_per_class: 40,
            keyword_rate: 0.35,
            min_len: 4,
            max_len: 18,
        }
    }
}

/// A generated corpus: token sequences with emotion labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmotionCorpus {
    /// Token-id sequences.
    pub utterances: Vec<Vec<u32>>,
    /// Emotion label per utterance.
    pub labels: Vec<u32>,
    /// The config that generated it (needed to vectorize consistently).
    config_vocab: u32,
    config_keywords: u32,
}

impl EmotionCorpus {
    /// Generate `n` utterances.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate configurations.
    pub fn generate<R: Rng>(n: usize, config: &EmotionCorpusConfig, rng: &mut R) -> Result<Self> {
        if n == 0 {
            return Err(MlError::EmptyDataset);
        }
        if config.vocab_size == 0 || config.keywords_per_class == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "vocab_size/keywords_per_class",
                constraint: "must be positive",
            });
        }
        if config.min_len == 0 || config.min_len > config.max_len {
            return Err(MlError::InvalidHyperparameter {
                name: "min_len/max_len",
                constraint: "must satisfy 0 < min_len <= max_len",
            });
        }
        if !(0.0..=1.0).contains(&config.keyword_rate) {
            return Err(MlError::InvalidHyperparameter {
                name: "keyword_rate",
                constraint: "must be in [0, 1]",
            });
        }
        let mut utterances = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let emotion = sample_emotion(rng);
            let len = rng.random_range(config.min_len..=config.max_len);
            let mut tokens = Vec::with_capacity(len);
            for _ in 0..len {
                let is_keyword =
                    emotion != Emotion::Others && rng.random::<f64>() < config.keyword_rate;
                if is_keyword {
                    let base = config.vocab_size + emotion.label() * config.keywords_per_class;
                    tokens.push(base + rng.random_range(0..config.keywords_per_class));
                } else {
                    tokens.push(sample_zipf(config.vocab_size, rng));
                }
            }
            utterances.push(tokens);
            labels.push(emotion.label());
        }
        Ok(EmotionCorpus {
            utterances,
            labels,
            config_vocab: config.vocab_size,
            config_keywords: config.keywords_per_class,
        })
    }

    /// Number of utterances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the corpus is empty (never true after generation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total token-id space (background + all keyword blocks).
    #[must_use]
    pub fn token_space(&self) -> u32 {
        self.config_vocab + 4 * self.config_keywords
    }

    /// Vectorize into a hashed bag-of-words [`Dataset`] with `dim`
    /// feature buckets (token counts, folded by multiplicative hashing).
    ///
    /// # Errors
    ///
    /// Returns an error for `dim == 0`.
    pub fn vectorize(&self, dim: usize) -> Result<Dataset> {
        if dim == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "dim",
                constraint: "must be at least 1",
            });
        }
        let mut data = vec![0.0f32; self.len() * dim];
        for (row, tokens) in self.utterances.iter().enumerate() {
            for &t in tokens {
                let bucket = hash_token(t) as usize % dim;
                data[row * dim + bucket] += 1.0;
            }
        }
        let features = Matrix::from_vec(self.len(), dim, data)?;
        Dataset::new(features, self.labels.clone(), 4)
    }
}

fn sample_emotion<R: Rng>(rng: &mut R) -> Emotion {
    let x: f64 = rng.random();
    let mut acc = 0.0;
    for e in Emotion::ALL {
        acc += e.prior();
        if x < acc {
            return e;
        }
    }
    Emotion::Others
}

/// Approximate Zipf(1.1) sampling over `vocab` background tokens via
/// inverse-CDF on the continuous relaxation.
fn sample_zipf<R: Rng>(vocab: u32, rng: &mut R) -> u32 {
    const S: f64 = 1.1;
    let n = f64::from(vocab);
    let u: f64 = rng.random();
    // Inverse of the (continuous) truncated Pareto CDF.
    let exp = 1.0 - S;
    let x = ((n.powf(exp) - 1.0) * u + 1.0).powf(1.0 / exp);
    (x.floor() as u32).min(vocab - 1)
}

/// Multiplicative hash (Knuth) for token folding.
fn hash_token(t: u32) -> u32 {
    t.wrapping_mul(2_654_435_761)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus(n: usize, seed: u64) -> EmotionCorpus {
        EmotionCorpus::generate(
            n,
            &EmotionCorpusConfig::default(),
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(corpus(200, 5), corpus(200, 5));
        assert_ne!(corpus(200, 5), corpus(200, 6));
    }

    #[test]
    fn class_priors_are_respected() {
        let c = corpus(20_000, 1);
        let mut counts = [0usize; 4];
        for &l in &c.labels {
            counts[l as usize] += 1;
        }
        let others_rate = counts[3] as f64 / c.len() as f64;
        assert!((others_rate - 0.58).abs() < 0.02, "others = {others_rate}");
        for (k, &count) in counts.iter().take(3).enumerate() {
            let rate = count as f64 / c.len() as f64;
            assert!((rate - 0.14).abs() < 0.02, "class {k} = {rate}");
        }
    }

    #[test]
    fn utterance_lengths_in_range() {
        let cfg = EmotionCorpusConfig::default();
        let c = corpus(500, 2);
        for u in &c.utterances {
            assert!(u.len() >= cfg.min_len && u.len() <= cfg.max_len);
        }
    }

    #[test]
    fn keywords_only_appear_for_their_class() {
        let cfg = EmotionCorpusConfig::default();
        let c = corpus(5_000, 3);
        for (tokens, &label) in c.utterances.iter().zip(&c.labels) {
            for &t in tokens {
                if t >= cfg.vocab_size {
                    let class = (t - cfg.vocab_size) / cfg.keywords_per_class;
                    assert_eq!(class, label, "keyword {t} in class-{label} utterance");
                    assert_ne!(label, 3, "Others must not use keywords");
                }
            }
        }
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut head = 0usize;
        let n = 10_000;
        for _ in 0..n {
            if sample_zipf(2_000, &mut rng) < 20 {
                head += 1;
            }
        }
        // The 1% head of a Zipf(1.1) vocabulary carries far more than 1%
        // of the mass.
        let rate = head as f64 / n as f64;
        assert!(rate > 0.2, "head rate = {rate}");
    }

    #[test]
    fn vectorization_shape_and_counts() {
        let c = corpus(100, 7);
        let data = c.vectorize(256).unwrap();
        assert_eq!(data.len(), 100);
        assert_eq!(data.dim(), 256);
        // Bag-of-words counts must sum to the utterance length.
        for i in 0..c.len() {
            let total: f32 = data.example(i).0.iter().sum();
            assert_eq!(total as usize, c.utterances[i].len());
        }
        assert!(c.vectorize(0).is_err());
    }

    #[test]
    fn token_space_accounts_for_keywords() {
        let c = corpus(10, 8);
        assert_eq!(c.token_space(), 2_000 + 4 * 40);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(EmotionCorpus::generate(0, &EmotionCorpusConfig::default(), &mut rng).is_err());
        let bad = EmotionCorpusConfig {
            min_len: 5,
            max_len: 3,
            ..Default::default()
        };
        assert!(EmotionCorpus::generate(10, &bad, &mut rng).is_err());
        let bad = EmotionCorpusConfig {
            keyword_rate: 1.5,
            ..Default::default()
        };
        assert!(EmotionCorpus::generate(10, &bad, &mut rng).is_err());
        let bad = EmotionCorpusConfig {
            vocab_size: 0,
            ..Default::default()
        };
        assert!(EmotionCorpus::generate(10, &bad, &mut rng).is_err());
    }
}

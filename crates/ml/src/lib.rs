//! Self-contained machine-learning substrate for the
//! [ease.ml/ci](https://arxiv.org/abs/1903.00278) reproduction.
//!
//! The paper's experiments run real models (GoogLeNet on infinite MNIST,
//! SemEval-2019 Task 3 submissions). This crate rebuilds the minimum ML
//! stack needed to regenerate those experiments from scratch — datasets,
//! synthetic generators, and classic classifiers — with zero external
//! ML dependencies (`rand` is the only dependency).
//!
//! * [`Matrix`] — dense row-major `f32` linear algebra;
//! * [`Dataset`] — labelled examples with splits and batching;
//! * [`synth`] — Gaussian blobs and a synthetic emotion-classification
//!   corpus standing in for SemEval-2019 Task 3;
//! * [`models`] — majority, naive Bayes, averaged perceptron, softmax
//!   regression, and a one-hidden-layer MLP behind one
//!   [`Classifier`](models::Classifier) trait;
//! * [`metrics`] — accuracy, prediction difference (`d`), confusion,
//!   and F1.
//!
//! # Examples
//!
//! ```
//! use easeml_ml::models::{Classifier, LogisticRegression};
//! use easeml_ml::synth::{blobs, BlobsConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), easeml_ml::MlError> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let data = blobs(2_000, &BlobsConfig::default(), &mut rng)?;
//! let (train, test) = data.split(0.8, &mut rng)?;
//! let mut model = LogisticRegression::default();
//! model.fit(&train)?;
//! let preds = model.predict_dataset(&test)?;
//! let acc = easeml_ml::metrics::accuracy(&preds, test.labels());
//! assert!(acc > 0.9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod dataset;
mod error;
mod matrix;
pub mod metrics;
pub mod models;
mod preprocess;
pub mod synth;

pub use dataset::Dataset;
pub use error::{MlError, Result};
pub use matrix::{argmax, dot, softmax_rows, Matrix};
pub use preprocess::FeatureScaler;

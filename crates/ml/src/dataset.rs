//! Labelled datasets: storage, splits, shuffling, and mini-batching.

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled classification dataset: an `n × d` feature matrix plus a
/// label per row.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<u32>,
    num_classes: u32,
}

impl Dataset {
    /// Build a dataset, validating label range and shape agreement.
    ///
    /// # Errors
    ///
    /// Returns an error if the feature row count and label count differ,
    /// any label is `>= num_classes`, or the dataset is empty.
    pub fn new(features: Matrix, labels: Vec<u32>, num_classes: u32) -> Result<Self> {
        if features.rows() != labels.len() {
            return Err(MlError::ShapeMismatch {
                context: "Dataset::new",
                expected: features.rows(),
                got: labels.len(),
            });
        }
        if labels.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(MlError::LabelOutOfRange {
                label: bad,
                num_classes,
            });
        }
        Ok(Dataset {
            features,
            labels,
            num_classes,
        })
    }

    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// The feature matrix.
    #[must_use]
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The label vector.
    #[must_use]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Feature row of example `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn example(&self, i: usize) -> (&[f32], u32) {
        (self.features.row(i), self.labels[i])
    }

    /// Class frequencies (counts per class).
    #[must_use]
    pub fn class_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_classes as usize];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }

    /// A new dataset containing the given example indices, in order.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty selection.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        if indices.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let mut data = Vec::with_capacity(indices.len() * self.dim());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
        let features = Matrix::from_vec(indices.len(), self.dim(), data)?;
        Dataset::new(features, labels, self.num_classes)
    }

    /// Split into `(train, test)` with `train_fraction` of the examples
    /// (shuffled by `rng`) in the first part.
    ///
    /// # Errors
    ///
    /// Returns an error if either side would be empty.
    pub fn split<R: Rng>(&self, train_fraction: f64, rng: &mut R) -> Result<(Dataset, Dataset)> {
        let n = self.len();
        let n_train = ((n as f64) * train_fraction).round() as usize;
        if n_train == 0 || n_train >= n {
            return Err(MlError::InvalidHyperparameter {
                name: "train_fraction",
                constraint: "must leave at least one example on each side",
            });
        }
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(rng);
        let train = self.subset(&indices[..n_train])?;
        let test = self.subset(&indices[n_train..])?;
        Ok((train, test))
    }

    /// Iterate over mini-batches of example indices, shuffled by `rng`.
    pub fn batches<R: Rng>(&self, batch_size: usize, rng: &mut R) -> Vec<Vec<usize>> {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices
            .chunks(batch_size.max(1))
            .map(<[usize]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let features = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[1.0, 1.0],
            &[0.5, 0.5],
            &[0.2, 0.8],
        ])
        .unwrap();
        Dataset::new(features, vec![0, 1, 1, 0, 1, 0], 2).unwrap()
    }

    #[test]
    fn construction_validates() {
        let m = Matrix::zeros(3, 2);
        assert!(Dataset::new(m.clone(), vec![0, 1], 2).is_err()); // count mismatch
        assert!(Dataset::new(m.clone(), vec![0, 1, 5], 2).is_err()); // label range
        assert!(Dataset::new(m, vec![0, 1, 1], 2).is_ok());
        assert!(Dataset::new(Matrix::zeros(0, 2), vec![], 2).is_err());
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 6);
        assert!(!d.is_empty());
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 2);
        let (x, y) = d.example(2);
        assert_eq!(x, &[1.0, 0.0]);
        assert_eq!(y, 1);
        assert_eq!(d.class_counts(), vec![3, 3]);
    }

    #[test]
    fn subset_preserves_order() {
        let d = toy();
        let s = d.subset(&[4, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.example(0).0, &[0.5, 0.5]);
        assert_eq!(s.example(1).1, 0);
        assert!(d.subset(&[]).is_err());
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let (train, test) = d.split(0.5, &mut rng).unwrap();
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.len(), 3);
        assert!(d.split(0.0, &mut rng).is_err());
        assert!(d.split(1.0, &mut rng).is_err());
    }

    #[test]
    fn split_is_seed_deterministic() {
        let d = toy();
        let (a, _) = d.split(0.5, &mut StdRng::seed_from_u64(3)).unwrap();
        let (b, _) = d.split(0.5, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batches_cover_all_examples() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let batches = d.batches(4, &mut rng);
        assert_eq!(batches.len(), 2);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }
}

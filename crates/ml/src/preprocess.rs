//! Feature preprocessing: standardisation and min-max scaling.
//!
//! Fitted on training data, applied to any dataset — the usual
//! train/serve split that a CI'd model pipeline has to keep consistent
//! between commits.

use crate::dataset::Dataset;
use crate::error::{MlError, Result};
use crate::matrix::Matrix;

/// Per-feature affine transform `x ↦ (x − shift) / scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureScaler {
    shift: Vec<f32>,
    scale: Vec<f32>,
}

impl FeatureScaler {
    /// Fit a standardiser (zero mean, unit variance per feature).
    ///
    /// Constant features get scale 1 (they stay constant rather than
    /// dividing by zero).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty input.
    pub fn standardize(data: &Dataset) -> Result<Self> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let d = data.dim();
        let n = data.len() as f64;
        let mut mean = vec![0.0f64; d];
        for i in 0..data.len() {
            for (m, &v) in mean.iter_mut().zip(data.example(i).0) {
                *m += f64::from(v);
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; d];
        for i in 0..data.len() {
            for ((s, &v), m) in var.iter_mut().zip(data.example(i).0).zip(&mean) {
                let c = f64::from(v) - m;
                *s += c * c;
            }
        }
        let scale = var
            .into_iter()
            .map(|s| {
                let sd = (s / n).sqrt();
                if sd > 1e-12 {
                    sd as f32
                } else {
                    1.0
                }
            })
            .collect();
        Ok(FeatureScaler {
            shift: mean.into_iter().map(|m| m as f32).collect(),
            scale,
        })
    }

    /// Fit a min-max scaler mapping each feature into `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty input.
    pub fn min_max(data: &Dataset) -> Result<Self> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let d = data.dim();
        let mut lo = vec![f32::INFINITY; d];
        let mut hi = vec![f32::NEG_INFINITY; d];
        for i in 0..data.len() {
            for ((l, h), &v) in lo.iter_mut().zip(&mut hi).zip(data.example(i).0) {
                *l = l.min(v);
                *h = h.max(v);
            }
        }
        let scale = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h - l > 1e-12 { h - l } else { 1.0 })
            .collect();
        Ok(FeatureScaler { shift: lo, scale })
    }

    /// Transform a dataset (labels pass through).
    ///
    /// # Errors
    ///
    /// Returns a shape error if the dimensionality differs from fit time.
    pub fn transform(&self, data: &Dataset) -> Result<Dataset> {
        if data.dim() != self.shift.len() {
            return Err(MlError::ShapeMismatch {
                context: "FeatureScaler::transform",
                expected: self.shift.len(),
                got: data.dim(),
            });
        }
        let d = data.dim();
        let mut out = Vec::with_capacity(data.len() * d);
        for i in 0..data.len() {
            for ((&v, &s), &c) in data.example(i).0.iter().zip(&self.shift).zip(&self.scale) {
                out.push((v - s) / c);
            }
        }
        let features = Matrix::from_vec(data.len(), d, out)?;
        Dataset::new(features, data.labels().to_vec(), data.num_classes())
    }

    /// Transform a single feature vector in place.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the length differs from fit time.
    pub fn transform_row(&self, features: &mut [f32]) -> Result<()> {
        if features.len() != self.shift.len() {
            return Err(MlError::ShapeMismatch {
                context: "FeatureScaler::transform_row",
                expected: self.shift.len(),
                got: features.len(),
            });
        }
        for ((v, &s), &c) in features.iter_mut().zip(&self.shift).zip(&self.scale) {
            *v = (*v - s) / c;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Matrix::from_rows(&[
            &[0.0, 10.0, 5.0],
            &[2.0, 20.0, 5.0],
            &[4.0, 30.0, 5.0],
            &[6.0, 40.0, 5.0],
        ])
        .unwrap();
        Dataset::new(features, vec![0, 1, 0, 1], 2).unwrap()
    }

    #[test]
    fn standardize_centres_and_scales() {
        let data = toy();
        let scaler = FeatureScaler::standardize(&data).unwrap();
        let out = scaler.transform(&data).unwrap();
        for c in 0..2 {
            let col: Vec<f32> = (0..out.len()).map(|i| out.example(i).0[c]).collect();
            let mean: f32 = col.iter().sum::<f32>() / col.len() as f32;
            let var: f32 =
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / col.len() as f32;
            assert!(mean.abs() < 1e-5, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "col {c} var {var}");
        }
        // Constant column stays constant (no division by ~zero).
        assert!((out.example(0).0[2] - out.example(3).0[2]).abs() < 1e-6);
    }

    #[test]
    fn min_max_maps_to_unit_interval() {
        let data = toy();
        let scaler = FeatureScaler::min_max(&data).unwrap();
        let out = scaler.transform(&data).unwrap();
        for i in 0..out.len() {
            for &v in out.example(i).0 {
                assert!((-1e-6..=1.0 + 1e-6).contains(&v), "value {v}");
            }
        }
        assert_eq!(out.example(0).0[0], 0.0);
        assert_eq!(out.example(3).0[0], 1.0);
    }

    #[test]
    fn transform_row_matches_dataset_transform() {
        let data = toy();
        let scaler = FeatureScaler::standardize(&data).unwrap();
        let out = scaler.transform(&data).unwrap();
        let mut row = data.example(2).0.to_vec();
        scaler.transform_row(&mut row).unwrap();
        assert_eq!(row.as_slice(), out.example(2).0);
    }

    #[test]
    fn shape_errors() {
        let data = toy();
        let scaler = FeatureScaler::standardize(&data).unwrap();
        let other = Dataset::new(Matrix::zeros(2, 5), vec![0, 1], 2).unwrap();
        assert!(scaler.transform(&other).is_err());
        let mut short = vec![0.0f32; 2];
        assert!(scaler.transform_row(&mut short).is_err());
    }

    #[test]
    fn scaling_helps_knn() {
        use crate::models::{Classifier, Knn};
        // One feature dominated by magnitude: unscaled kNN keys on it,
        // scaled kNN recovers the informative one.
        let features = Matrix::from_rows(&[
            &[1000.0, 0.0],
            &[1010.0, 0.0],
            &[990.0, 1.0],
            &[1005.0, 1.0],
            &[995.0, 0.0],
            &[1015.0, 1.0],
        ])
        .unwrap();
        let labels = vec![0, 0, 1, 1, 0, 1];
        let data = Dataset::new(features, labels.clone(), 2).unwrap();
        let scaler = FeatureScaler::standardize(&data).unwrap();
        let scaled = scaler.transform(&data).unwrap();
        let mut knn = Knn::default();
        knn.fit(&scaled).unwrap();
        let preds = knn.predict_dataset(&scaled).unwrap();
        let acc = crate::metrics::accuracy(&preds, &labels);
        assert!(acc > 0.8, "scaled knn accuracy = {acc}");
    }
}

//! Evaluation metrics: accuracy, prediction difference, confusion
//! matrices, and per-class / macro F1.

/// Fraction of predictions equal to the labels.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let acc = easeml_ml::metrics::accuracy(&[1, 0, 1], &[1, 1, 1]);
/// assert!((acc - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn accuracy(predictions: &[u32], labels: &[u32]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Fraction of positions where two prediction vectors differ — the `d`
/// variable of the ease.ml/ci condition language.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn prediction_difference(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let changed = a.iter().zip(b).filter(|(x, y)| x != y).count();
    changed as f64 / a.len() as f64
}

/// `num_classes × num_classes` confusion matrix: `matrix[truth][pred]`.
///
/// # Panics
///
/// Panics on length mismatch or out-of-range labels.
#[must_use]
pub fn confusion_matrix(predictions: &[u32], labels: &[u32], num_classes: u32) -> Vec<Vec<u64>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let k = num_classes as usize;
    let mut m = vec![vec![0u64; k]; k];
    for (&p, &l) in predictions.iter().zip(labels) {
        m[l as usize][p as usize] += 1;
    }
    m
}

/// Per-class precision, recall, and F1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassScores {
    /// Precision `tp / (tp + fp)`; 0 when undefined.
    pub precision: f64,
    /// Recall `tp / (tp + fn)`; 0 when undefined.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when undefined.
    pub f1: f64,
}

/// Per-class scores from a confusion matrix.
#[must_use]
#[allow(clippy::needless_range_loop)] // symmetric row/column walks read best indexed
pub fn class_scores(confusion: &[Vec<u64>]) -> Vec<ClassScores> {
    let k = confusion.len();
    let mut out = Vec::with_capacity(k);
    for c in 0..k {
        let tp = confusion[c][c] as f64;
        let fn_: f64 = (0..k)
            .filter(|&j| j != c)
            .map(|j| confusion[c][j] as f64)
            .sum();
        let fp: f64 = (0..k)
            .filter(|&i| i != c)
            .map(|i| confusion[i][c] as f64)
            .sum();
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        out.push(ClassScores {
            precision,
            recall,
            f1,
        });
    }
    out
}

/// Unweighted mean of the per-class F1 scores.
///
/// # Panics
///
/// Panics on length mismatch or out-of-range labels.
#[must_use]
pub fn macro_f1(predictions: &[u32], labels: &[u32], num_classes: u32) -> f64 {
    let confusion = confusion_matrix(predictions, labels, num_classes);
    let scores = class_scores(&confusion);
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().map(|s| s.f1).sum::<f64>() / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0, 0], &[1, 1, 0, 0]), 0.5);
    }

    #[test]
    fn difference_basics() {
        assert_eq!(prediction_difference(&[], &[]), 0.0);
        assert_eq!(prediction_difference(&[1, 2], &[1, 2]), 0.0);
        assert_eq!(prediction_difference(&[1, 2], &[2, 2]), 0.5);
        // d is symmetric.
        assert_eq!(
            prediction_difference(&[0, 1, 0], &[1, 1, 1]),
            prediction_difference(&[1, 1, 1], &[0, 1, 0])
        );
    }

    #[test]
    fn confusion_and_scores() {
        // truth:  0 0 1 1 1 2
        // pred:   0 1 1 1 0 2
        let labels = [0, 0, 1, 1, 1, 2];
        let preds = [0, 1, 1, 1, 0, 2];
        let m = confusion_matrix(&preds, &labels, 3);
        assert_eq!(m[0], vec![1, 1, 0]);
        assert_eq!(m[1], vec![1, 2, 0]);
        assert_eq!(m[2], vec![0, 0, 1]);
        let scores = class_scores(&m);
        // Class 0: tp=1 fp=1 fn=1 -> p = r = f1 = 0.5.
        assert!((scores[0].f1 - 0.5).abs() < 1e-12);
        // Class 2: perfect.
        assert_eq!(scores[2].f1, 1.0);
    }

    #[test]
    fn macro_f1_aggregates() {
        let labels = [0, 0, 1, 1];
        let perfect = [0, 0, 1, 1];
        assert_eq!(macro_f1(&perfect, &labels, 2), 1.0);
        let inverted = [1, 1, 0, 0];
        assert_eq!(macro_f1(&inverted, &labels, 2), 0.0);
    }

    #[test]
    fn degenerate_class_scores_are_zero_not_nan() {
        // No instances of class 1 at all.
        let m = confusion_matrix(&[0, 0], &[0, 0], 2);
        let scores = class_scores(&m);
        assert_eq!(scores[1], ClassScores::default());
        assert!(!scores[1].f1.is_nan());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_panics_on_mismatch() {
        let _ = accuracy(&[1], &[1, 2]);
    }
}

//! A minimal dense row-major `f32` matrix — just enough linear algebra
//! for the classifiers in this crate, with no external dependencies.

use crate::error::{MlError, Result};
use std::fmt;

/// Dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use easeml_ml::Matrix;
///
/// # fn main() -> Result<(), easeml_ml::MlError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])?;
/// let c = a.matmul(&b)?;
/// assert_eq!(c.row(1), &[3.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MlError::ShapeMismatch {
                context: "Matrix::from_vec",
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from row slices (all rows must have equal length).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on ragged input and
    /// [`MlError::EmptyDataset`] for zero rows.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let Some(first) = rows.first() else {
            return Err(MlError::EmptyDataset);
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(MlError::ShapeMismatch {
                    context: "Matrix::from_rows",
                    expected: cols,
                    got: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Matrix product `self × other`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] unless
    /// `self.cols == other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MlError::ShapeMismatch {
                context: "matmul",
                expected: self.cols,
                got: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: stream through `other` rows for cache locality.
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let o_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on shape disagreement.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MlError::ShapeMismatch {
                context: "axpy",
                expected: self.rows * self.cols,
                got: other.rows * other.cols,
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row = self.row(r);
            let rendered: Vec<String> = row.iter().take(8).map(|v| format!("{v:.3}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", rendered.join(", "), ellipsis)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

/// Row-wise softmax in place: each row becomes a probability vector.
pub fn softmax_rows(m: &mut Matrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            total += *v;
        }
        if total > 0.0 {
            for v in row.iter_mut() {
                *v /= total;
            }
        }
    }
}

/// Dot product of two equally long slices.
///
/// # Panics
///
/// Panics in debug builds on length mismatch.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `argmax` of a slice (first maximum wins); 0 for an empty slice.
#[must_use]
pub fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = 1.0;
        assert_eq!(m.as_slice(), &[1.0, 0.0, 0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_validates() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0][..]]).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.axpy(1.0, &Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn softmax_rows_normalizes() {
        let mut m = Matrix::from_rows(&[&[0.0, 0.0], &[1000.0, 0.0]]).unwrap();
        softmax_rows(&mut m);
        assert!((m.get(0, 0) - 0.5).abs() < 1e-6);
        // Large logits must not overflow.
        assert!((m.get(1, 0) - 1.0).abs() < 1e-6);
        let sum: f32 = m.row(1).iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[1.0, 1.0]), 0); // first max wins
        let m = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn display_is_bounded() {
        let m = Matrix::zeros(20, 20);
        let text = m.to_string();
        assert!(text.contains("Matrix 20x20"));
        assert!(text.contains('…'));
    }
}

//! Multinomial naive Bayes with Laplace smoothing.
//!
//! Operates on non-negative count features (e.g. the hashed bag-of-words
//! of [`crate::synth::text`]); negative feature values are clamped to 0.

use super::Classifier;
use crate::dataset::Dataset;
use crate::error::{MlError, Result};

/// Configuration for [`NaiveBayes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveBayesConfig {
    /// Additive (Laplace) smoothing constant, > 0.
    pub smoothing: f64,
}

impl Default for NaiveBayesConfig {
    fn default() -> Self {
        NaiveBayesConfig { smoothing: 1.0 }
    }
}

/// Multinomial naive Bayes classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayes {
    config: NaiveBayesConfig,
    // log P(class), per class
    log_prior: Vec<f64>,
    // log P(feature | class), row-major [class][feature]
    log_likelihood: Vec<Vec<f64>>,
}

impl NaiveBayes {
    /// New unfitted model with the given configuration.
    #[must_use]
    pub fn new(config: NaiveBayesConfig) -> Self {
        NaiveBayes {
            config,
            log_prior: Vec::new(),
            log_likelihood: Vec::new(),
        }
    }

    fn fitted(&self) -> bool {
        !self.log_prior.is_empty()
    }
}

impl Default for NaiveBayes {
    fn default() -> Self {
        NaiveBayes::new(NaiveBayesConfig::default())
    }
}

impl Classifier for NaiveBayes {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if self.config.smoothing <= 0.0 {
            return Err(MlError::InvalidHyperparameter {
                name: "smoothing",
                constraint: "must be positive",
            });
        }
        let k = data.num_classes() as usize;
        let d = data.dim();
        let counts = data.class_counts();
        let n = data.len() as f64;
        self.log_prior = counts
            .iter()
            .map(|&c| ((c as f64 + 1.0) / (n + k as f64)).ln())
            .collect();
        // Aggregate per-class feature totals.
        let mut totals = vec![vec![0.0f64; d]; k];
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            let row = &mut totals[y as usize];
            for (t, &v) in row.iter_mut().zip(x) {
                *t += f64::from(v.max(0.0));
            }
        }
        let alpha = self.config.smoothing;
        self.log_likelihood = totals
            .into_iter()
            .map(|row| {
                let class_total: f64 = row.iter().sum::<f64>() + alpha * d as f64;
                row.into_iter()
                    .map(|t| ((t + alpha) / class_total).ln())
                    .collect()
            })
            .collect();
        Ok(())
    }

    fn predict_one(&self, features: &[f32]) -> Result<u32> {
        if !self.fitted() {
            return Err(MlError::NotFitted);
        }
        let d = self.log_likelihood[0].len();
        if features.len() != d {
            return Err(MlError::ShapeMismatch {
                context: "NaiveBayes::predict_one",
                expected: d,
                got: features.len(),
            });
        }
        let mut best = 0u32;
        let mut best_score = f64::NEG_INFINITY;
        for (k, (prior, ll)) in self.log_prior.iter().zip(&self.log_likelihood).enumerate() {
            let mut score = *prior;
            for (&x, &l) in features.iter().zip(ll) {
                let x = f64::from(x.max(0.0));
                if x > 0.0 {
                    score += x * l;
                }
            }
            if score > best_score {
                best_score = score;
                best = k as u32;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::text::{EmotionCorpus, EmotionCorpusConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beats_majority_on_emotion_corpus() {
        let mut rng = StdRng::seed_from_u64(77);
        let corpus =
            EmotionCorpus::generate(4_000, &EmotionCorpusConfig::default(), &mut rng).unwrap();
        let data = corpus.vectorize(512).unwrap();
        let (train, test) = data.split(0.8, &mut rng).unwrap();
        let mut nb = NaiveBayes::default();
        nb.fit(&train).unwrap();
        let preds = nb.predict_dataset(&test).unwrap();
        let acc = crate::metrics::accuracy(&preds, test.labels());
        // Majority (Others) would score ≈ 0.58; keywords make NB much better.
        assert!(acc > 0.75, "accuracy = {acc}");
    }

    #[test]
    fn blob_accuracy_is_reasonable() {
        use crate::models::test_support::accuracy_of;
        // Blobs are not counts, but clamped NB still finds structure.
        let mut model = NaiveBayes::default();
        let acc = accuracy_of(&mut model);
        assert!(acc > 0.5, "accuracy = {acc}");
    }

    #[test]
    fn unfitted_and_bad_shape() {
        let model = NaiveBayes::default();
        assert!(matches!(model.predict_one(&[1.0]), Err(MlError::NotFitted)));
        let mut model = NaiveBayes::default();
        let data = Dataset::new(crate::matrix::Matrix::zeros(4, 3), vec![0, 1, 0, 1], 2).unwrap();
        model.fit(&data).unwrap();
        assert!(model.predict_one(&[1.0]).is_err());
        assert!(model.predict_one(&[1.0, 0.0, 0.0]).is_ok());
    }

    #[test]
    fn rejects_nonpositive_smoothing() {
        let mut model = NaiveBayes::new(NaiveBayesConfig { smoothing: 0.0 });
        let data = Dataset::new(crate::matrix::Matrix::zeros(2, 2), vec![0, 1], 2).unwrap();
        assert!(model.fit(&data).is_err());
    }

    #[test]
    fn smoothing_handles_unseen_features() {
        // A feature never seen in training must not produce -inf scores.
        let features = crate::matrix::Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]).unwrap();
        let data = Dataset::new(features, vec![0, 1], 2).unwrap();
        let mut model = NaiveBayes::default();
        model.fit(&data).unwrap();
        // Both features active: still classifies.
        let pred = model.predict_one(&[1.0, 1.0]).unwrap();
        assert!(pred < 2);
    }
}

//! One-hidden-layer multi-layer perceptron (ReLU + softmax) trained by
//! mini-batch SGD with momentum.

use super::Classifier;
use crate::dataset::Dataset;
use crate::error::{MlError, Result};
use crate::matrix::argmax;
use crate::synth::sample_standard_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// Passes over the training data.
    pub epochs: u32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 32,
            learning_rate: 0.05,
            momentum: 0.9,
            epochs: 40,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// One-hidden-layer MLP classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    config: MlpConfig,
    // Layer 1: [hidden][dim + 1]; layer 2: [classes][hidden + 1].
    w1: Vec<Vec<f32>>,
    w2: Vec<Vec<f32>>,
}

impl Mlp {
    /// New unfitted model.
    #[must_use]
    pub fn new(config: MlpConfig) -> Self {
        Mlp {
            config,
            w1: Vec::new(),
            w2: Vec::new(),
        }
    }

    fn forward_hidden(&self, x: &[f32]) -> Vec<f32> {
        let d = x.len();
        self.w1
            .iter()
            .map(|w| {
                let mut a = w[d];
                for (wv, xv) in w[..d].iter().zip(x) {
                    a += wv * xv;
                }
                a.max(0.0) // ReLU
            })
            .collect()
    }

    fn forward_logits(&self, h: &[f32]) -> Vec<f32> {
        let m = h.len();
        self.w2
            .iter()
            .map(|w| {
                let mut a = w[m];
                for (wv, hv) in w[..m].iter().zip(h) {
                    a += wv * hv;
                }
                a
            })
            .collect()
    }

    fn validate(&self) -> Result<()> {
        let c = &self.config;
        if c.hidden == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "hidden",
                constraint: "must be at least 1",
            });
        }
        // NaN-rejecting guard: `!(x > 0.0)` is also true for NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(c.learning_rate > 0.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "learning_rate",
                constraint: "must be positive",
            });
        }
        if !(0.0..1.0).contains(&c.momentum) {
            return Err(MlError::InvalidHyperparameter {
                name: "momentum",
                constraint: "must be in [0, 1)",
            });
        }
        if c.epochs == 0 || c.batch_size == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "epochs/batch_size",
                constraint: "must be at least 1",
            });
        }
        Ok(())
    }
}

impl Default for Mlp {
    fn default() -> Self {
        Mlp::new(MlpConfig::default())
    }
}

impl Classifier for Mlp {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        self.validate()?;
        let k = data.num_classes() as usize;
        let d = data.dim();
        let m = self.config.hidden;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // He initialisation for the ReLU layer, Xavier-ish for the head.
        let scale1 = (2.0 / d as f64).sqrt();
        let scale2 = (1.0 / m as f64).sqrt();
        let mut w1: Vec<Vec<f32>> = (0..m)
            .map(|_| {
                (0..=d)
                    .map(|j| {
                        if j == d {
                            0.0
                        } else {
                            (sample_standard_normal(&mut rng) * scale1) as f32
                        }
                    })
                    .collect()
            })
            .collect();
        let mut w2: Vec<Vec<f32>> = (0..k)
            .map(|_| {
                (0..=m)
                    .map(|j| {
                        if j == m {
                            0.0
                        } else {
                            (sample_standard_normal(&mut rng) * scale2) as f32
                        }
                    })
                    .collect()
            })
            .collect();
        let mut v1 = vec![vec![0.0f32; d + 1]; m];
        let mut v2 = vec![vec![0.0f32; m + 1]; k];
        let lr = self.config.learning_rate;
        let mu = self.config.momentum;

        for _ in 0..self.config.epochs {
            for batch in data.batches(self.config.batch_size, &mut rng) {
                let mut g1 = vec![vec![0.0f32; d + 1]; m];
                let mut g2 = vec![vec![0.0f32; m + 1]; k];
                for &i in &batch {
                    let (x, y) = data.example(i);
                    // Forward.
                    let mut pre: Vec<f32> = Vec::with_capacity(m);
                    let mut h: Vec<f32> = Vec::with_capacity(m);
                    for w in &w1 {
                        let mut a = w[d];
                        for (wv, xv) in w[..d].iter().zip(x) {
                            a += wv * xv;
                        }
                        pre.push(a);
                        h.push(a.max(0.0));
                    }
                    let mut logits: Vec<f32> = Vec::with_capacity(k);
                    for w in &w2 {
                        let mut a = w[m];
                        for (wv, hv) in w[..m].iter().zip(&h) {
                            a += wv * hv;
                        }
                        logits.push(a);
                    }
                    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut total = 0.0f32;
                    for l in &mut logits {
                        *l = (*l - max).exp();
                        total += *l;
                    }
                    // Backward: output error.
                    let mut dh = vec![0.0f32; m];
                    for c in 0..k {
                        let p = logits[c] / total;
                        let err = p - f32::from(u8::from(c as u32 == y));
                        for j in 0..m {
                            g2[c][j] += err * h[j];
                            dh[j] += err * w2[c][j];
                        }
                        g2[c][m] += err;
                    }
                    // Hidden error through ReLU.
                    for j in 0..m {
                        if pre[j] <= 0.0 {
                            continue;
                        }
                        let e = dh[j];
                        for (g, &xv) in g1[j][..d].iter_mut().zip(x) {
                            *g += e * xv;
                        }
                        g1[j][d] += e;
                    }
                }
                let scale = 1.0 / batch.len() as f32;
                for ((wr, vr), gr) in w1.iter_mut().zip(&mut v1).zip(&g1) {
                    for j in 0..=d {
                        vr[j] = mu * vr[j] - lr * gr[j] * scale;
                        wr[j] += vr[j];
                    }
                }
                for ((wr, vr), gr) in w2.iter_mut().zip(&mut v2).zip(&g2) {
                    for j in 0..=m {
                        vr[j] = mu * vr[j] - lr * gr[j] * scale;
                        wr[j] += vr[j];
                    }
                }
            }
        }
        self.w1 = w1;
        self.w2 = w2;
        Ok(())
    }

    fn predict_one(&self, features: &[f32]) -> Result<u32> {
        if self.w1.is_empty() {
            return Err(MlError::NotFitted);
        }
        let d = self.w1[0].len() - 1;
        if features.len() != d {
            return Err(MlError::ShapeMismatch {
                context: "Mlp::predict_one",
                expected: d,
                got: features.len(),
            });
        }
        let h = self.forward_hidden(features);
        let logits = self.forward_logits(&h);
        Ok(argmax(&logits) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::accuracy_of;

    #[test]
    fn learns_blobs_well() {
        let mut model = Mlp::new(MlpConfig {
            epochs: 25,
            ..Default::default()
        });
        let acc = accuracy_of(&mut model);
        assert!(acc > 0.93, "accuracy = {acc}");
    }

    #[test]
    fn solves_xor_unlike_linear_models() {
        use crate::matrix::Matrix;
        // XOR with replication: linearly inseparable.
        let mut rows: Vec<[f32; 2]> = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..50 {
            for (a, b) in [(0.0f32, 0.0f32), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                rows.push([a, b]);
                labels.push(u32::from((a != b) as u8 == 1));
            }
        }
        let slices: Vec<&[f32]> = rows.iter().map(|r| &r[..]).collect();
        let data = Dataset::new(Matrix::from_rows(&slices).unwrap(), labels.clone(), 2).unwrap();
        let mut mlp = Mlp::new(MlpConfig {
            hidden: 16,
            epochs: 200,
            ..Default::default()
        });
        mlp.fit(&data).unwrap();
        let preds = mlp.predict_dataset(&data).unwrap();
        let acc = crate::metrics::accuracy(&preds, &labels);
        assert!(acc > 0.95, "MLP should solve XOR, got {acc}");
        // Logistic regression cannot.
        let mut lin = crate::models::LogisticRegression::default();
        lin.fit(&data).unwrap();
        let lin_acc = crate::metrics::accuracy(&lin.predict_dataset(&data).unwrap(), &labels);
        assert!(
            lin_acc < 0.8,
            "linear model unexpectedly solved XOR: {lin_acc}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, test) = crate::models::test_support::train_test();
        let mut a = Mlp::new(MlpConfig {
            epochs: 5,
            ..Default::default()
        });
        let mut b = Mlp::new(MlpConfig {
            epochs: 5,
            ..Default::default()
        });
        a.fit(&train).unwrap();
        b.fit(&train).unwrap();
        assert_eq!(
            a.predict_dataset(&test).unwrap(),
            b.predict_dataset(&test).unwrap()
        );
    }

    #[test]
    fn unfitted_and_invalid_config() {
        let model = Mlp::default();
        assert!(matches!(model.predict_one(&[0.0]), Err(MlError::NotFitted)));
        let data = Dataset::new(crate::matrix::Matrix::zeros(2, 2), vec![0, 1], 2).unwrap();
        for bad in [
            MlpConfig {
                hidden: 0,
                ..Default::default()
            },
            MlpConfig {
                learning_rate: 0.0,
                ..Default::default()
            },
            MlpConfig {
                momentum: 1.0,
                ..Default::default()
            },
            MlpConfig {
                epochs: 0,
                ..Default::default()
            },
            MlpConfig {
                batch_size: 0,
                ..Default::default()
            },
        ] {
            let mut model = Mlp::new(bad);
            assert!(model.fit(&data).is_err());
        }
    }
}

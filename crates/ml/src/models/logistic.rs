//! Multi-class (softmax) logistic regression trained by mini-batch SGD
//! with momentum and L2 regularisation.

use super::Classifier;
use crate::dataset::Dataset;
use crate::error::{MlError, Result};
use crate::matrix::{argmax, dot};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticRegressionConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// L2 penalty.
    pub l2: f32,
    /// Passes over the training data.
    pub epochs: u32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        LogisticRegressionConfig {
            learning_rate: 0.1,
            momentum: 0.9,
            l2: 1e-4,
            epochs: 30,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// Softmax regression classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    config: LogisticRegressionConfig,
    // [class][feature + 1]; last slot is the bias.
    weights: Vec<Vec<f32>>,
}

impl LogisticRegression {
    /// New unfitted model.
    #[must_use]
    pub fn new(config: LogisticRegressionConfig) -> Self {
        LogisticRegression {
            config,
            weights: Vec::new(),
        }
    }

    /// Class-probability vector for one input.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before fit, or a shape error.
    pub fn predict_proba(&self, features: &[f32]) -> Result<Vec<f32>> {
        if self.weights.is_empty() {
            return Err(MlError::NotFitted);
        }
        let d = self.weights[0].len() - 1;
        if features.len() != d {
            return Err(MlError::ShapeMismatch {
                context: "LogisticRegression::predict_proba",
                expected: d,
                got: features.len(),
            });
        }
        let mut logits: Vec<f32> = self
            .weights
            .iter()
            .map(|w| dot(&w[..d], features) + w[d])
            .collect();
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0f32;
        for l in &mut logits {
            *l = (*l - max).exp();
            total += *l;
        }
        for l in &mut logits {
            *l /= total;
        }
        Ok(logits)
    }

    fn validate(&self) -> Result<()> {
        let c = &self.config;
        // NaN-rejecting guard: `!(x > 0.0)` is also true for NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(c.learning_rate > 0.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "learning_rate",
                constraint: "must be positive",
            });
        }
        if !(0.0..1.0).contains(&c.momentum) {
            return Err(MlError::InvalidHyperparameter {
                name: "momentum",
                constraint: "must be in [0, 1)",
            });
        }
        if c.l2 < 0.0 {
            return Err(MlError::InvalidHyperparameter {
                name: "l2",
                constraint: "must be non-negative",
            });
        }
        if c.epochs == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "epochs",
                constraint: "must be at least 1",
            });
        }
        if c.batch_size == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "batch_size",
                constraint: "must be at least 1",
            });
        }
        Ok(())
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression::new(LogisticRegressionConfig::default())
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        self.validate()?;
        let k = data.num_classes() as usize;
        let d = data.dim();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut w = vec![vec![0.0f32; d + 1]; k];
        let mut velocity = vec![vec![0.0f32; d + 1]; k];
        let lr = self.config.learning_rate;
        let mu = self.config.momentum;
        let l2 = self.config.l2;
        for _ in 0..self.config.epochs {
            for batch in data.batches(self.config.batch_size, &mut rng) {
                let mut grad = vec![vec![0.0f32; d + 1]; k];
                for &i in &batch {
                    let (x, y) = data.example(i);
                    // Softmax forward.
                    let mut logits: Vec<f32> =
                        w.iter().map(|wc| dot(&wc[..d], x) + wc[d]).collect();
                    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut total = 0.0f32;
                    for l in &mut logits {
                        *l = (*l - max).exp();
                        total += *l;
                    }
                    for (c, gc) in grad.iter_mut().enumerate() {
                        let p = logits[c] / total;
                        let err = p - f32::from(u8::from(c as u32 == y));
                        for (g, &xv) in gc[..d].iter_mut().zip(x) {
                            *g += err * xv;
                        }
                        gc[d] += err;
                    }
                }
                let scale = 1.0 / batch.len() as f32;
                for ((wc, vc), gc) in w.iter_mut().zip(&mut velocity).zip(&grad) {
                    for j in 0..=d {
                        // L2 on weights (not bias).
                        let reg = if j < d { l2 * wc[j] } else { 0.0 };
                        vc[j] = mu * vc[j] - lr * (gc[j] * scale + reg);
                        wc[j] += vc[j];
                    }
                }
            }
        }
        self.weights = w;
        Ok(())
    }

    fn predict_one(&self, features: &[f32]) -> Result<u32> {
        let proba = self.predict_proba(features)?;
        Ok(argmax(&proba) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::accuracy_of;

    #[test]
    fn learns_separable_blobs_well() {
        let mut model = LogisticRegression::default();
        let acc = accuracy_of(&mut model);
        assert!(acc > 0.93, "accuracy = {acc}");
    }

    #[test]
    fn probabilities_are_normalized() {
        let (train, test) = crate::models::test_support::train_test();
        let mut model = LogisticRegression::default();
        model.fit(&train).unwrap();
        let p = model.predict_proba(test.example(0).0).unwrap();
        assert_eq!(p.len(), 4);
        let total: f32 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, test) = crate::models::test_support::train_test();
        let mut a = LogisticRegression::default();
        let mut b = LogisticRegression::default();
        a.fit(&train).unwrap();
        b.fit(&train).unwrap();
        assert_eq!(
            a.predict_dataset(&test).unwrap(),
            b.predict_dataset(&test).unwrap()
        );
    }

    #[test]
    fn more_epochs_do_not_hurt_much() {
        let (train, test) = crate::models::test_support::train_test();
        let mut short = LogisticRegression::new(LogisticRegressionConfig {
            epochs: 2,
            ..Default::default()
        });
        let mut long = LogisticRegression::new(LogisticRegressionConfig {
            epochs: 40,
            ..Default::default()
        });
        short.fit(&train).unwrap();
        long.fit(&train).unwrap();
        let acc_short =
            crate::metrics::accuracy(&short.predict_dataset(&test).unwrap(), test.labels());
        let acc_long =
            crate::metrics::accuracy(&long.predict_dataset(&test).unwrap(), test.labels());
        assert!(
            acc_long >= acc_short - 0.05,
            "short={acc_short} long={acc_long}"
        );
    }

    #[test]
    fn unfitted_and_invalid_config() {
        let model = LogisticRegression::default();
        assert!(matches!(model.predict_one(&[0.0]), Err(MlError::NotFitted)));
        let data = Dataset::new(crate::matrix::Matrix::zeros(2, 2), vec![0, 1], 2).unwrap();
        for bad in [
            LogisticRegressionConfig {
                learning_rate: 0.0,
                ..Default::default()
            },
            LogisticRegressionConfig {
                momentum: 1.0,
                ..Default::default()
            },
            LogisticRegressionConfig {
                l2: -1.0,
                ..Default::default()
            },
            LogisticRegressionConfig {
                epochs: 0,
                ..Default::default()
            },
            LogisticRegressionConfig {
                batch_size: 0,
                ..Default::default()
            },
        ] {
            let mut model = LogisticRegression::new(bad);
            assert!(
                model.fit(&data).is_err(),
                "config {bad:?} should be rejected"
            );
        }
    }
}

//! Classifiers: a common trait plus five classic implementations of
//! increasing capacity (majority, naive Bayes, averaged perceptron,
//! softmax regression, one-hidden-layer MLP).
//!
//! The spread of capacities matters for the CI reproduction: a commit
//! history that climbs from a majority baseline through linear models to
//! an MLP produces exactly the gradual-accuracy / small-prediction-diff
//! trajectories the paper's conditions are designed to test.

mod knn;
mod logistic;
mod majority;
mod mlp;
mod naive_bayes;
mod perceptron;

pub use knn::{Knn, KnnConfig};
pub use logistic::{LogisticRegression, LogisticRegressionConfig};
pub use majority::MajorityClassifier;
pub use mlp::{Mlp, MlpConfig};
pub use naive_bayes::{NaiveBayes, NaiveBayesConfig};
pub use perceptron::{AveragedPerceptron, PerceptronConfig};

use crate::dataset::Dataset;
use crate::error::Result;
use crate::matrix::Matrix;

/// A trainable multi-class classifier.
///
/// Implementations are deterministic given their configured seed, so CI
/// simulations are reproducible.
pub trait Classifier {
    /// Fit the model to a dataset.
    ///
    /// # Errors
    ///
    /// Returns an error on shape problems or invalid hyper-parameters.
    fn fit(&mut self, data: &Dataset) -> Result<()>;

    /// Predict the class of a single feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MlError::NotFitted`] before [`Classifier::fit`],
    /// or a shape error for a wrong-length input.
    fn predict_one(&self, features: &[f32]) -> Result<u32>;

    /// Predict every row of a feature matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::predict_one`].
    fn predict(&self, features: &Matrix) -> Result<Vec<u32>> {
        (0..features.rows())
            .map(|r| self.predict_one(features.row(r)))
            .collect()
    }

    /// Predict every example of a dataset.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::predict_one`].
    fn predict_dataset(&self, data: &Dataset) -> Result<Vec<u32>> {
        self.predict(data.features())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::synth::{blobs, BlobsConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A moderately separable 4-class problem shared by the model tests.
    pub fn train_test() -> (Dataset, Dataset) {
        let cfg = BlobsConfig {
            num_classes: 4,
            dim: 6,
            noise: 0.5,
            label_noise: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1234);
        let data = blobs(2_400, &cfg, &mut rng).unwrap();
        data.split(0.75, &mut rng).unwrap()
    }

    /// Train, evaluate, and return test accuracy.
    pub fn accuracy_of(model: &mut dyn Classifier) -> f64 {
        let (train, test) = train_test();
        model.fit(&train).unwrap();
        let preds = model.predict_dataset(&test).unwrap();
        crate::metrics::accuracy(&preds, test.labels())
    }
}

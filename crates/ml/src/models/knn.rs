//! k-nearest-neighbours classifier (brute force, Euclidean).
//!
//! Deliberately simple: the CI experiments need a *memorising* model
//! family whose behaviour contrasts with the parametric ones (perfect on
//! seen data, capacity controlled by `k`), not a fast ANN index.

use super::Classifier;
use crate::dataset::Dataset;
use crate::error::{MlError, Result};

/// Configuration for [`Knn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnConfig {
    /// Number of neighbours to vote (≥ 1).
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 5 }
    }
}

/// Brute-force k-NN with majority voting (ties broken by the nearest
/// neighbour among the tied classes).
#[derive(Debug, Clone, PartialEq)]
pub struct Knn {
    config: KnnConfig,
    train: Option<Dataset>,
}

impl Knn {
    /// New unfitted model.
    #[must_use]
    pub fn new(config: KnnConfig) -> Self {
        Knn {
            config,
            train: None,
        }
    }
}

impl Default for Knn {
    fn default() -> Self {
        Knn::new(KnnConfig::default())
    }
}

impl Classifier for Knn {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if self.config.k == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "k",
                constraint: "must be >= 1",
            });
        }
        self.train = Some(data.clone());
        Ok(())
    }

    fn predict_one(&self, features: &[f32]) -> Result<u32> {
        let train = self.train.as_ref().ok_or(MlError::NotFitted)?;
        if features.len() != train.dim() {
            return Err(MlError::ShapeMismatch {
                context: "Knn::predict_one",
                expected: train.dim(),
                got: features.len(),
            });
        }
        let k = self.config.k.min(train.len());
        // Collect (distance², label) and keep the k smallest by a simple
        // bounded insertion — k is small, n is modest.
        let mut best: Vec<(f32, u32)> = Vec::with_capacity(k + 1);
        for i in 0..train.len() {
            let (x, y) = train.example(i);
            let d2: f32 = x.iter().zip(features).map(|(a, b)| (a - b) * (a - b)).sum();
            let pos = best.partition_point(|&(d, _)| d <= d2);
            if pos < k {
                best.insert(pos, (d2, y));
                best.truncate(k);
            }
        }
        // Majority vote; tie -> nearest among the tied classes.
        let mut counts = std::collections::HashMap::new();
        for &(_, y) in &best {
            *counts.entry(y).or_insert(0usize) += 1;
        }
        let max_count = counts.values().copied().max().unwrap_or(0);
        let winner = best
            .iter()
            .find(|&&(_, y)| counts[&y] == max_count)
            .map(|&(_, y)| y)
            .ok_or(MlError::EmptyDataset)?;
        Ok(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn toy() -> Dataset {
        let features = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[0.0, 0.1],
            &[1.0, 1.0],
            &[0.9, 1.0],
            &[1.0, 0.9],
        ])
        .unwrap();
        Dataset::new(features, vec![0, 0, 0, 1, 1, 1], 2).unwrap()
    }

    #[test]
    fn classifies_clusters() {
        let mut knn = Knn::new(KnnConfig { k: 3 });
        knn.fit(&toy()).unwrap();
        assert_eq!(knn.predict_one(&[0.05, 0.05]).unwrap(), 0);
        assert_eq!(knn.predict_one(&[0.95, 0.95]).unwrap(), 1);
    }

    #[test]
    fn k1_memorises_training_points() {
        let data = toy();
        let mut knn = Knn::new(KnnConfig { k: 1 });
        knn.fit(&data).unwrap();
        let preds = knn.predict_dataset(&data).unwrap();
        assert_eq!(preds, data.labels());
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let mut knn = Knn::new(KnnConfig { k: 100 });
        knn.fit(&toy()).unwrap();
        // Votes over all 6 points: 3 vs 3 tie, nearest wins.
        assert_eq!(knn.predict_one(&[0.0, 0.0]).unwrap(), 0);
    }

    #[test]
    fn blob_accuracy_is_strong() {
        use crate::models::test_support::accuracy_of;
        let mut knn = Knn::default();
        let acc = accuracy_of(&mut knn);
        assert!(acc > 0.9, "accuracy = {acc}");
    }

    #[test]
    fn error_paths() {
        let knn = Knn::default();
        assert!(matches!(
            knn.predict_one(&[0.0, 0.0]),
            Err(MlError::NotFitted)
        ));
        let mut knn = Knn::new(KnnConfig { k: 0 });
        assert!(knn.fit(&toy()).is_err());
        let mut knn = Knn::default();
        knn.fit(&toy()).unwrap();
        assert!(knn.predict_one(&[0.0]).is_err());
    }
}

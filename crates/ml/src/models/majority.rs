//! The majority-class baseline.

use super::Classifier;
use crate::dataset::Dataset;
use crate::error::{MlError, Result};

/// Predicts the most frequent training class for every input — the
/// weakest sensible baseline, useful as commit #1 of a simulated model
/// development history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MajorityClassifier {
    majority: Option<u32>,
}

impl MajorityClassifier {
    /// New unfitted classifier.
    #[must_use]
    pub fn new() -> Self {
        MajorityClassifier { majority: None }
    }

    /// The learned majority class, if fitted.
    #[must_use]
    pub fn majority_class(&self) -> Option<u32> {
        self.majority
    }
}

impl Classifier for MajorityClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        let counts = data.class_counts();
        let best = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(k, _)| k as u32)
            .ok_or(MlError::EmptyDataset)?;
        self.majority = Some(best);
        Ok(())
    }

    fn predict_one(&self, _features: &[f32]) -> Result<u32> {
        self.majority.ok_or(MlError::NotFitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn predicts_most_frequent_class() {
        let features = Matrix::zeros(5, 2);
        let data = Dataset::new(features, vec![2, 0, 2, 1, 2], 3).unwrap();
        let mut model = MajorityClassifier::new();
        model.fit(&data).unwrap();
        assert_eq!(model.majority_class(), Some(2));
        assert_eq!(model.predict_one(&[9.0, 9.0]).unwrap(), 2);
        let preds = model.predict_dataset(&data).unwrap();
        assert_eq!(preds, vec![2; 5]);
    }

    #[test]
    fn unfitted_prediction_fails() {
        let model = MajorityClassifier::new();
        assert!(matches!(model.predict_one(&[1.0]), Err(MlError::NotFitted)));
    }

    #[test]
    fn accuracy_matches_class_prior() {
        use crate::models::test_support::accuracy_of;
        let mut model = MajorityClassifier::new();
        let acc = accuracy_of(&mut model);
        // Four roughly balanced classes: prior ≈ 0.25.
        assert!(acc > 0.15 && acc < 0.40, "accuracy = {acc}");
    }
}

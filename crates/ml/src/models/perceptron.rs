//! Averaged multi-class perceptron.

use super::Classifier;
use crate::dataset::Dataset;
use crate::error::{MlError, Result};
use crate::matrix::{argmax, dot};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for [`AveragedPerceptron`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerceptronConfig {
    /// Passes over the training data.
    pub epochs: u32,
    /// Shuffle seed (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        PerceptronConfig {
            epochs: 10,
            seed: 0,
        }
    }
}

/// Multi-class perceptron with weight averaging (Freund & Schapire
/// style), which stabilises the otherwise order-sensitive updates.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedPerceptron {
    config: PerceptronConfig,
    // [class][feature + 1] (last slot is the bias)
    weights: Vec<Vec<f32>>,
}

impl AveragedPerceptron {
    /// New unfitted model.
    #[must_use]
    pub fn new(config: PerceptronConfig) -> Self {
        AveragedPerceptron {
            config,
            weights: Vec::new(),
        }
    }

    fn score(&self, class: usize, features: &[f32]) -> f32 {
        let w = &self.weights[class];
        dot(&w[..features.len()], features) + w[features.len()]
    }
}

impl Default for AveragedPerceptron {
    fn default() -> Self {
        AveragedPerceptron::new(PerceptronConfig::default())
    }
}

impl Classifier for AveragedPerceptron {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if self.config.epochs == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "epochs",
                constraint: "must be at least 1",
            });
        }
        let k = data.num_classes() as usize;
        let d = data.dim();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut w = vec![vec![0.0f32; d + 1]; k];
        let mut acc = vec![vec![0.0f64; d + 1]; k];
        let mut updates = 0u64;
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (x, y) = data.example(i);
                // Current prediction with the live weights.
                let mut scores = vec![0.0f32; k];
                for (c, s) in scores.iter_mut().enumerate() {
                    *s = dot(&w[c][..d], x) + w[c][d];
                }
                let pred = argmax(&scores) as u32;
                if pred != y {
                    for (j, &v) in x.iter().enumerate() {
                        w[y as usize][j] += v;
                        w[pred as usize][j] -= v;
                    }
                    w[y as usize][d] += 1.0;
                    w[pred as usize][d] -= 1.0;
                }
                // Accumulate for averaging (every step, updated or not).
                for (a_row, w_row) in acc.iter_mut().zip(&w) {
                    for (a, &wv) in a_row.iter_mut().zip(w_row) {
                        *a += f64::from(wv);
                    }
                }
                updates += 1;
            }
        }
        let scale = 1.0 / updates.max(1) as f64;
        self.weights = acc
            .into_iter()
            .map(|row| row.into_iter().map(|v| (v * scale) as f32).collect())
            .collect();
        Ok(())
    }

    fn predict_one(&self, features: &[f32]) -> Result<u32> {
        if self.weights.is_empty() {
            return Err(MlError::NotFitted);
        }
        let d = self.weights[0].len() - 1;
        if features.len() != d {
            return Err(MlError::ShapeMismatch {
                context: "AveragedPerceptron::predict_one",
                expected: d,
                got: features.len(),
            });
        }
        let scores: Vec<f32> = (0..self.weights.len())
            .map(|c| self.score(c, features))
            .collect();
        Ok(argmax(&scores) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::accuracy_of;

    #[test]
    fn learns_separable_blobs() {
        let mut model = AveragedPerceptron::default();
        let acc = accuracy_of(&mut model);
        assert!(acc > 0.9, "accuracy = {acc}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (train, test) = crate::models::test_support::train_test();
        let mut a = AveragedPerceptron::new(PerceptronConfig { epochs: 3, seed: 9 });
        let mut b = AveragedPerceptron::new(PerceptronConfig { epochs: 3, seed: 9 });
        a.fit(&train).unwrap();
        b.fit(&train).unwrap();
        assert_eq!(
            a.predict_dataset(&test).unwrap(),
            b.predict_dataset(&test).unwrap()
        );
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let (train, test) = crate::models::test_support::train_test();
        let mut a = AveragedPerceptron::new(PerceptronConfig { epochs: 1, seed: 1 });
        let mut b = AveragedPerceptron::new(PerceptronConfig { epochs: 1, seed: 2 });
        a.fit(&train).unwrap();
        b.fit(&train).unwrap();
        let pa = a.predict_dataset(&test).unwrap();
        let pb = b.predict_dataset(&test).unwrap();
        let diff = crate::metrics::prediction_difference(&pa, &pb);
        assert!(diff > 0.0, "seeds produced identical models");
        // ... but they are still similar models of the same data.
        assert!(diff < 0.3, "diff = {diff}");
    }

    #[test]
    fn unfitted_and_bad_shape() {
        let model = AveragedPerceptron::default();
        assert!(matches!(model.predict_one(&[0.0]), Err(MlError::NotFitted)));
        let mut model = AveragedPerceptron::default();
        let data = Dataset::new(crate::matrix::Matrix::zeros(4, 3), vec![0, 1, 0, 1], 2).unwrap();
        model.fit(&data).unwrap();
        assert!(model.predict_one(&[0.0]).is_err());
    }

    #[test]
    fn rejects_zero_epochs() {
        let mut model = AveragedPerceptron::new(PerceptronConfig { epochs: 0, seed: 0 });
        let data = Dataset::new(crate::matrix::Matrix::zeros(2, 2), vec![0, 1], 2).unwrap();
        assert!(model.fit(&data).is_err());
    }
}

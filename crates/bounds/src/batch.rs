//! Batched §4.3 inversions for Figure-2-style `(ε, δ)` tables.
//!
//! A sample-size table asks for the exact-binomial inversion at every
//! cell of an `ε × δ` grid. Inverting each cell from scratch wastes the
//! structure of the problem twice over:
//!
//! * the worst-case probe `worst(n)` and the reference acceptance scan
//!   depend only on `(n, ε, tail)` — every cell in an `ε`-**column**
//!   re-evaluates the same quantities; and
//! * the minimal `n` is antitone in `δ`, so a column walked in
//!   decreasing `δ` can floor each search at the previous cell's answer
//!   instead of re-bracketing from scratch.
//!
//! [`exact_binomial_sample_size_batch`] exploits both by giving each
//! column one shared [`crate::exact::InversionContext`] (value-carrying
//! probe memo + acceptance-scan memo + warm-start hint) and walking its
//! cells from the largest `δ` down, while independent columns are fanned
//! out across the [`easeml_par::Pool`]. Results are bit-identical to the
//! per-cell [`crate::exact_binomial_sample_size`] at any thread count —
//! the shared memos cache pure functions of `(n, ε, tail)`, and the
//! final acceptance criterion is the same reference scan either way.

use crate::error::{check_positive, check_probability, BoundsError, Result};
use crate::exact::InversionContext;
use crate::tail::Tail;
use easeml_par::Pool;

/// Invert a full `ε × δ` grid: `result[i][j]` is the exact-binomial
/// sample size for `(epsilons[i], deltas[j], tail)`.
///
/// Columns (fixed `ε`) share one search context and are evaluated in
/// parallel on [`Pool::global`]; see the module docs.
///
/// # Errors
///
/// Returns the first invalid `ε` or `δ` (the whole grid is validated
/// before any inversion runs), or a degenerate empty grid.
pub fn exact_binomial_sample_size_batch(
    epsilons: &[f64],
    deltas: &[f64],
    tail: Tail,
) -> Result<Vec<Vec<u64>>> {
    exact_binomial_sample_size_batch_with_pool(epsilons, deltas, tail, Pool::global())
}

/// [`exact_binomial_sample_size_batch`] on an explicit pool (benches and
/// determinism tests pin the thread count with this).
///
/// # Errors
///
/// Same conditions as [`exact_binomial_sample_size_batch`].
pub fn exact_binomial_sample_size_batch_with_pool(
    epsilons: &[f64],
    deltas: &[f64],
    tail: Tail,
    pool: &Pool,
) -> Result<Vec<Vec<u64>>> {
    if epsilons.is_empty() || deltas.is_empty() {
        return Err(BoundsError::EmptyBatch);
    }
    for &eps in epsilons {
        check_positive("eps", eps)?;
        if eps >= 1.0 {
            return Err(BoundsError::ToleranceExceedsRange {
                epsilon: eps,
                range: 1.0,
            });
        }
    }
    for &delta in deltas {
        check_probability("delta", delta)?;
    }

    // Walk each column from the largest δ down so every answer floors
    // the next (smaller-δ) search. `order` is a pure function of
    // `deltas`, so cell→column assignment is thread-count independent.
    let mut order: Vec<usize> = (0..deltas.len()).collect();
    order.sort_by(|&a, &b| deltas[b].total_cmp(&deltas[a]).then(a.cmp(&b)));

    let columns = pool.par_map(epsilons, |&eps| -> Result<Vec<u64>> {
        let mut ctx = InversionContext::new(eps, tail)?;
        let mut column = vec![0u64; deltas.len()];
        let mut floor = 1u64;
        let mut last: Option<(f64, u64)> = None;
        for &j in &order {
            let delta = deltas[j];
            // Duplicate δ values short-circuit to the previous answer.
            let n = match last {
                Some((d, n)) if d == delta => n,
                _ => ctx.invert(delta, floor)?,
            };
            column[j] = n;
            floor = n;
            last = Some((delta, n));
        }
        Ok(column)
    });
    columns.into_iter().collect()
}

/// Invert an arbitrary set of `(ε, δ)` cells (the cache layer's miss
/// list): cells sharing an `ε` are grouped into one column and share its
/// search context, and columns run in parallel on `pool`. Results come
/// back in input order.
///
/// # Errors
///
/// Returns the first invalid `ε` or `δ` encountered (in input order).
pub fn exact_binomial_sample_size_cells_with_pool(
    cells: &[(f64, f64)],
    tail: Tail,
    pool: &Pool,
) -> Result<Vec<u64>> {
    for &(eps, delta) in cells {
        check_positive("eps", eps)?;
        if eps >= 1.0 {
            return Err(BoundsError::ToleranceExceedsRange {
                epsilon: eps,
                range: 1.0,
            });
        }
        check_probability("delta", delta)?;
    }
    // Group by exact ε bit pattern, preserving first-appearance order.
    let mut column_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut columns: Vec<(f64, Vec<usize>)> = Vec::new();
    for (i, &(eps, _)) in cells.iter().enumerate() {
        let col = *column_of.entry(eps.to_bits()).or_insert_with(|| {
            columns.push((eps, Vec::new()));
            columns.len() - 1
        });
        columns[col].1.push(i);
    }

    let per_column = pool.par_map(&columns, |(eps, members)| -> Result<Vec<(usize, u64)>> {
        let mut ctx = InversionContext::new(*eps, tail)?;
        let mut members = members.clone();
        members.sort_by(|&a, &b| cells[b].1.total_cmp(&cells[a].1).then(a.cmp(&b)));
        let mut out = Vec::with_capacity(members.len());
        let mut floor = 1u64;
        let mut last: Option<(f64, u64)> = None;
        for i in members {
            let delta = cells[i].1;
            let n = match last {
                Some((d, n)) if d == delta => n,
                _ => ctx.invert(delta, floor)?,
            };
            out.push((i, n));
            floor = n;
            last = Some((delta, n));
        }
        Ok(out)
    });
    let mut results = vec![0u64; cells.len()];
    for column in per_column {
        for (i, n) in column? {
            results[i] = n;
        }
    }
    Ok(results)
}

/// [`exact_binomial_sample_size_cells_with_pool`] on [`Pool::global`].
///
/// # Errors
///
/// Same conditions as [`exact_binomial_sample_size_cells_with_pool`].
pub fn exact_binomial_sample_size_cells(cells: &[(f64, f64)], tail: Tail) -> Result<Vec<u64>> {
    exact_binomial_sample_size_cells_with_pool(cells, tail, Pool::global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_binomial_sample_size;

    const EPSILONS: [f64; 3] = [0.1, 0.05, 0.08];
    const DELTAS: [f64; 4] = [0.01, 0.001, 0.05, 0.0001];

    #[test]
    fn batch_matches_per_cell_inversions() {
        let grid = exact_binomial_sample_size_batch(&EPSILONS, &DELTAS, Tail::TwoSided).unwrap();
        for (i, &eps) in EPSILONS.iter().enumerate() {
            for (j, &delta) in DELTAS.iter().enumerate() {
                let single = exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
                assert_eq!(
                    grid[i][j], single,
                    "eps={eps} delta={delta}: batch {} vs single {single}",
                    grid[i][j]
                );
            }
        }
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        for tail in [Tail::TwoSided, Tail::OneSided] {
            let base =
                exact_binomial_sample_size_batch_with_pool(&EPSILONS, &DELTAS, tail, &Pool::new(1))
                    .unwrap();
            for threads in [2, 8] {
                let wide = exact_binomial_sample_size_batch_with_pool(
                    &EPSILONS,
                    &DELTAS,
                    tail,
                    &Pool::new(threads),
                )
                .unwrap();
                assert_eq!(base, wide, "{tail} threads={threads}");
            }
        }
    }

    #[test]
    fn cells_api_matches_grid_api() {
        let grid = exact_binomial_sample_size_batch(&EPSILONS, &DELTAS, Tail::OneSided).unwrap();
        let mut cells = Vec::new();
        for &eps in &EPSILONS {
            for &delta in &DELTAS {
                cells.push((eps, delta));
            }
        }
        let flat = exact_binomial_sample_size_cells(&cells, Tail::OneSided).unwrap();
        for (i, _) in EPSILONS.iter().enumerate() {
            for (j, _) in DELTAS.iter().enumerate() {
                assert_eq!(flat[i * DELTAS.len() + j], grid[i][j]);
            }
        }
    }

    #[test]
    fn duplicate_cells_are_consistent() {
        let cells = [(0.1, 0.01), (0.1, 0.01), (0.1, 0.001), (0.1, 0.01)];
        let out = exact_binomial_sample_size_cells(&cells, Tail::TwoSided).unwrap();
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0], out[3]);
        assert!(out[2] > out[0], "smaller delta needs more samples");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            exact_binomial_sample_size_batch(&[], &[0.01], Tail::TwoSided),
            Err(BoundsError::EmptyBatch)
        ));
        assert!(exact_binomial_sample_size_batch(&[0.1], &[], Tail::TwoSided).is_err());
        assert!(exact_binomial_sample_size_batch(&[1.5], &[0.01], Tail::TwoSided).is_err());
        assert!(exact_binomial_sample_size_batch(&[0.1], &[0.0], Tail::TwoSided).is_err());
        assert!(exact_binomial_sample_size_cells(&[(0.1, 2.0)], Tail::TwoSided).is_err());
    }
}

//! Bennett's inequality: the variance-aware bound behind the §4
//! optimizations.
//!
//! For independent variables with `|Xᵢ| ≤ b` and `Σᵢ E[Xᵢ²] = v`,
//!
//! ```text
//! Pr[ |Σᵢ Xᵢ − E| / n > ε ] ≤ 2 exp( −(v/b²) · h(nbε/v) )
//! ```
//!
//! with `h(u) = (1+u)ln(1+u) − u`. When each sample has second moment at
//! most `p` (so `v = np`), this becomes `2 exp(−n·(p/b²)·h(bε/p))`, and the
//! sample size needed for an `(ε, δ)` estimate is
//! `n = b² ln(2/δ) / (p · h(bε/p))` — the key quantity in §4.1.1.

use crate::error::{check_positive, check_probability, BoundsError, Result};
use crate::numeric::{ceil_to_sample_size, newton_bracketed};
use crate::tail::Tail;

/// The Bennett rate function `h(u) = (1+u)ln(1+u) − u` for `u ≥ 0`.
///
/// Computed via `ln_1p` for accuracy near zero, where `h(u) ≈ u²/2`.
///
/// # Examples
///
/// ```
/// let h = easeml_bounds::bennett_h(0.1);
/// assert!((h - 0.0048412).abs() < 1e-6);
/// ```
#[must_use]
pub fn bennett_h(u: f64) -> f64 {
    debug_assert!(u >= 0.0, "bennett_h domain is u >= 0");
    if u < 1e-8 {
        // Series: u²/2 − u³/6 + …
        0.5 * u * u - u * u * u / 6.0
    } else {
        (1.0 + u) * u.ln_1p() - u
    }
}

/// Derivative `h'(u) = ln(1+u)`, used by the Newton inversion.
#[must_use]
pub fn bennett_h_prime(u: f64) -> f64 {
    u.ln_1p()
}

/// Inverse of [`bennett_h`] on `u ≥ 0`: the unique `u` with `h(u) = y`.
///
/// # Errors
///
/// Returns an error if `y` is negative or not finite.
pub fn bennett_h_inv(y: f64) -> Result<f64> {
    if !y.is_finite() || y < 0.0 {
        return Err(BoundsError::NotPositive {
            name: "y",
            value: y,
        });
    }
    if y == 0.0 {
        return Ok(0.0);
    }
    // Bracket: for small y, u ≈ sqrt(2y); for large y, h(u) ~ u ln u so
    // u ≲ y only once y is large. Grow the upper end until it covers y.
    let mut hi = (2.0 * y).sqrt().max(1.0);
    while bennett_h(hi) < y {
        hi *= 2.0;
        if hi > 1e300 {
            return Err(BoundsError::NoConvergence {
                routine: "bennett_h_inv",
            });
        }
    }
    let x0 = (2.0 * y).sqrt().min(hi);
    newton_bracketed(
        |u| bennett_h(u) - y,
        bennett_h_prime,
        0.0,
        hi,
        x0,
        1e-14,
        200,
    )
}

/// Sample size for an `(ε, δ)` estimate of a mean when every sample has
/// second moment at most `var_bound` and absolute value at most `b`.
///
/// `n = b² (ln factor − ln δ) / (var_bound · h(b·ε/var_bound))`.
///
/// # Errors
///
/// Returns an error for non-positive `var_bound`, `b` or `eps`, or for
/// `delta` outside `(0, 1)`.
///
/// # Examples
///
/// §4.1.1: testing `n − o` to ε = 0.01 under `d < 0.1` (so `p = 0.1`),
/// reliability 0.9999 split as δ/4 per step, 32 non-adaptive steps
/// (the paper's "29K samples"):
///
/// ```
/// use easeml_bounds::{bennett_sample_size, Tail};
///
/// # fn main() -> Result<(), easeml_bounds::BoundsError> {
/// let delta = 0.0001f64;
/// let n = bennett_sample_size(0.1, 1.0, 0.01, delta / 4.0 / 32.0, Tail::OneSided)?;
/// assert_eq!(n, 29_048);
/// # Ok(())
/// # }
/// ```
pub fn bennett_sample_size(
    var_bound: f64,
    b: f64,
    eps: f64,
    delta: f64,
    tail: Tail,
) -> Result<u64> {
    check_probability("delta", delta)?;
    bennett_sample_size_from_ln_delta(var_bound, b, eps, delta.ln(), tail)
}

/// Log-space variant of [`bennett_sample_size`] taking `ln δ` directly.
///
/// # Errors
///
/// Same conditions as [`bennett_sample_size`]; `ln_delta` must be negative.
pub fn bennett_sample_size_from_ln_delta(
    var_bound: f64,
    b: f64,
    eps: f64,
    ln_delta: f64,
    tail: Tail,
) -> Result<u64> {
    check_positive("var_bound", var_bound)?;
    check_positive("b", b)?;
    check_positive("eps", eps)?;
    if !(ln_delta < 0.0) {
        return Err(BoundsError::InvalidProbability {
            name: "delta",
            value: ln_delta.exp(),
        });
    }
    let u = b * eps / var_bound;
    let raw = b * b * (tail.ln_factor() - ln_delta) / (var_bound * bennett_h(u));
    ceil_to_sample_size(raw)
}

/// Error tolerance achieved by `n` samples under a per-sample second-moment
/// bound: the inverse of [`bennett_sample_size`] in `ε`.
///
/// Solves `n = b²(ln factor − ln δ)/(p·h(bε/p))` for `ε` via the numeric
/// inverse of `h`.
///
/// # Errors
///
/// Returns an error for a zero sample size or invalid parameters.
///
/// # Examples
///
/// ```
/// use easeml_bounds::{bennett_epsilon, bennett_sample_size, Tail};
///
/// # fn main() -> Result<(), easeml_bounds::BoundsError> {
/// let n = bennett_sample_size(0.1, 1.0, 0.01, 1e-4, Tail::TwoSided)?;
/// let eps = bennett_epsilon(0.1, 1.0, n, 1e-4, Tail::TwoSided)?;
/// assert!(eps <= 0.01 && eps > 0.0099);
/// # Ok(())
/// # }
/// ```
pub fn bennett_epsilon(var_bound: f64, b: f64, n: u64, delta: f64, tail: Tail) -> Result<f64> {
    check_probability("delta", delta)?;
    bennett_epsilon_from_ln_delta(var_bound, b, n, delta.ln(), tail)
}

/// Log-space variant of [`bennett_epsilon`] taking `ln δ` directly.
///
/// # Errors
///
/// Same conditions as [`bennett_epsilon`].
pub fn bennett_epsilon_from_ln_delta(
    var_bound: f64,
    b: f64,
    n: u64,
    ln_delta: f64,
    tail: Tail,
) -> Result<f64> {
    check_positive("var_bound", var_bound)?;
    check_positive("b", b)?;
    if n == 0 {
        return Err(BoundsError::ZeroSampleSize);
    }
    if !(ln_delta < 0.0) {
        return Err(BoundsError::InvalidProbability {
            name: "delta",
            value: ln_delta.exp(),
        });
    }
    let y = b * b * (tail.ln_factor() - ln_delta) / (var_bound * n as f64);
    let u = bennett_h_inv(y)?;
    Ok(var_bound * u / b)
}

/// Failure probability for `n` samples at tolerance `eps` under a
/// per-sample second-moment bound.
///
/// # Errors
///
/// Returns an error for a zero sample size or invalid parameters.
pub fn bennett_delta(var_bound: f64, b: f64, n: u64, eps: f64, tail: Tail) -> Result<f64> {
    check_positive("var_bound", var_bound)?;
    check_positive("b", b)?;
    check_positive("eps", eps)?;
    if n == 0 {
        return Err(BoundsError::ZeroSampleSize);
    }
    let u = b * eps / var_bound;
    let exponent = -(n as f64) * var_bound / (b * b) * bennett_h(u);
    Ok((tail.factor() * exponent.exp()).min(1.0))
}

/// Per-commit *label* complexity of active labelling (§4.1.2).
///
/// Only the `≈ p` fraction of points whose predictions differ between the
/// two models needs labels, so the expected number of fresh labels per
/// commit is `p` times the Bennett testset size:
/// `labels = b² (ln factor − ln δ) / h(bε/p)`.
///
/// # Errors
///
/// Same conditions as [`bennett_sample_size`].
///
/// # Examples
///
/// The paper's §4.1.2 example: p = 0.1, 1−δ = 0.9999, ε = 0.01 gives
/// 2 188 labels per commit.
///
/// ```
/// use easeml_bounds::{active_labels_per_commit, Tail};
///
/// # fn main() -> Result<(), easeml_bounds::BoundsError> {
/// let labels = active_labels_per_commit(0.1, 1.0, 0.01, 0.0001 / 4.0, Tail::OneSided)?;
/// assert_eq!(labels, 2_189); // paper rounds to 2,188
/// # Ok(())
/// # }
/// ```
pub fn active_labels_per_commit(
    var_bound: f64,
    b: f64,
    eps: f64,
    delta: f64,
    tail: Tail,
) -> Result<u64> {
    let n = bennett_sample_size(var_bound, b, eps, delta, tail)?;
    Ok(((n as f64) * var_bound).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_known_values() {
        assert!((bennett_h(0.1) - 0.004_841_2).abs() < 1e-6);
        assert!((bennett_h(0.2) - 0.018_785_9).abs() < 1e-6);
        assert!((bennett_h(0.22) - 0.022_598_2).abs() < 1e-6);
        assert_eq!(bennett_h(0.0), 0.0);
    }

    #[test]
    fn h_small_u_series() {
        for &u in &[1e-12, 1e-9, 1e-7] {
            let got = bennett_h(u);
            let want = 0.5 * u * u;
            assert!((got - want).abs() <= want * 1e-3, "u={u} got={got}");
        }
    }

    #[test]
    fn h_inv_roundtrip() {
        for &u in &[1e-6, 0.01, 0.1, 0.5, 1.0, 5.0, 100.0] {
            let y = bennett_h(u);
            let back = bennett_h_inv(y).unwrap();
            assert!((back - u).abs() < 1e-8 * u.max(1.0), "u={u} back={back}");
        }
        assert_eq!(bennett_h_inv(0.0).unwrap(), 0.0);
        assert!(bennett_h_inv(-1.0).is_err());
    }

    /// §4.1.1 fully-adaptive example: 67K samples for 32 steps.
    #[test]
    fn section411_fully_adaptive() {
        let ln_delta = (0.0001f64 / 4.0).ln() - 32.0 * std::f64::consts::LN_2;
        let n =
            bennett_sample_size_from_ln_delta(0.1, 1.0, 0.01, ln_delta, Tail::OneSided).unwrap();
        assert_eq!(n, 67_706); // ≈ the paper's "67K samples"
    }

    /// Figure 5: 4 713 samples for `n − o > 0.02 ± 0.02` at δ = 0.002 over
    /// H = 7 steps with p = 0.1 (two-sided Bennett).
    #[test]
    fn figure5_nonadaptive_sample_size() {
        let n = bennett_sample_size(0.1, 1.0, 0.02, 0.002 / 7.0, Tail::TwoSided).unwrap();
        assert_eq!(n, 4_713);
    }

    /// Figure 5 adaptive column: ε = 0.022, δ/2^7, 5 204 samples.
    #[test]
    fn figure5_adaptive_sample_size() {
        let n = bennett_sample_size(0.1, 1.0, 0.022, 0.002 / 128.0, Tail::TwoSided).unwrap();
        assert_eq!(n, 5_204);
    }

    /// Figure 5 discussion: at ε = 0.02 the adaptive query needs > 6K.
    #[test]
    fn figure5_adaptive_at_002_needs_more_than_6k() {
        let n = bennett_sample_size(0.1, 1.0, 0.02, 0.002 / 128.0, Tail::TwoSided).unwrap();
        assert!(n > 6_000, "n = {n}");
        assert_eq!(n, 6_260);
    }

    #[test]
    fn epsilon_inverts_sample_size() {
        for &(p, eps, delta) in &[(0.1, 0.01, 1e-4), (0.25, 0.05, 1e-3), (0.02, 0.005, 0.01)] {
            let n = bennett_sample_size(p, 1.0, eps, delta, Tail::TwoSided).unwrap();
            let achieved = bennett_epsilon(p, 1.0, n, delta, Tail::TwoSided).unwrap();
            assert!(achieved <= eps + 1e-12, "p={p} achieved={achieved}");
            let short = bennett_epsilon(p, 1.0, n - 1, delta, Tail::TwoSided).unwrap();
            assert!(short > eps - 1e-5, "p={p} short={short}");
        }
    }

    #[test]
    fn delta_inverts_sample_size() {
        let n = bennett_sample_size(0.1, 1.0, 0.01, 1e-4, Tail::TwoSided).unwrap();
        let delta = bennett_delta(0.1, 1.0, n, 0.01, Tail::TwoSided).unwrap();
        assert!(delta <= 1e-4 + 1e-16);
        let delta_short = bennett_delta(0.1, 1.0, n / 2, 0.01, Tail::TwoSided).unwrap();
        assert!(delta_short > 1e-4);
    }

    /// Bennett beats Hoeffding when the variance bound is small, and the
    /// advantage disappears as p approaches the worst case.
    #[test]
    fn beats_hoeffding_for_small_variance() {
        use crate::hoeffding::hoeffding_sample_size;
        let hoeffding = hoeffding_sample_size(1.0, 0.01, 1e-4, Tail::TwoSided).unwrap();
        let bennett_small = bennett_sample_size(0.05, 1.0, 0.01, 1e-4, Tail::TwoSided).unwrap();
        // At p = 0.05, ε = 0.01 the gain is 2ε²/(p·h(ε/p)) ≈ 4.7×.
        assert!((bennett_small as f64) < (hoeffding as f64) / 4.0);
        // At p = 1 (no variance information) Bennett is weaker than
        // Hoeffding for small ε — the optimization must be conditional.
        let bennett_large = bennett_sample_size(1.0, 1.0, 0.01, 1e-4, Tail::TwoSided).unwrap();
        assert!(bennett_large > hoeffding / 2);
    }

    #[test]
    fn active_labels_matches_paper() {
        // One-sided, δ/4 split as in §4.1.1/§4.1.2.
        let labels =
            active_labels_per_commit(0.1, 1.0, 0.01, 0.0001 / 4.0, Tail::OneSided).unwrap();
        assert!((labels as i64 - 2_188).abs() <= 1, "labels = {labels}");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(bennett_sample_size(0.0, 1.0, 0.01, 0.01, Tail::TwoSided).is_err());
        assert!(bennett_sample_size(0.1, 0.0, 0.01, 0.01, Tail::TwoSided).is_err());
        assert!(bennett_sample_size(0.1, 1.0, 0.0, 0.01, Tail::TwoSided).is_err());
        assert!(bennett_sample_size(0.1, 1.0, 0.01, 0.0, Tail::TwoSided).is_err());
        assert!(bennett_epsilon(0.1, 1.0, 0, 0.01, Tail::TwoSided).is_err());
    }
}

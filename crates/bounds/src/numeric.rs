//! Numeric building blocks shared by the bound implementations.
//!
//! Everything here is deliberately dependency-free: log-gamma, log-space
//! accumulation, bisection and Newton root finding. The routines favour
//! robustness over raw speed since they sit under sample-size estimators
//! whose outputs are cached by callers.

use crate::error::{BoundsError, Result};
use std::sync::RwLock;

/// Natural log of the gamma function, via the Lanczos approximation (g = 7,
/// 9 coefficients). Accurate to ~15 significant digits for `x > 0`.
///
/// # Examples
///
/// ```
/// let ln6 = easeml_bounds::numeric::ln_gamma(4.0); // Γ(4) = 3! = 6
/// assert!((ln6 - 6f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEF[0];
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Largest index (exclusive) served by the shared log-factorial table.
///
/// `2^20` entries is 8 MiB — enough for every sample size the exact
/// binomial inversion brackets in practice (the Hoeffding upper bracket);
/// larger arguments fall back to the Lanczos evaluation.
pub const LN_FACTORIAL_TABLE_CAP: usize = 1 << 20;

/// Lazily grown table of `ln(k!)`, shared process-wide.
///
/// Reads take a shared lock; growth (amortized, by powers of two) takes
/// the exclusive lock once per doubling. Entries are filled with
/// [`ln_gamma`]`(k + 1)` so the table is consistent with the fallback
/// path by construction.
static LN_FACTORIAL: RwLock<Vec<f64>> = RwLock::new(Vec::new());

/// Grow the shared table to cover index `idx` (< [`LN_FACTORIAL_TABLE_CAP`]).
fn grow_ln_factorial(idx: usize) {
    let mut table = LN_FACTORIAL.write().expect("ln-factorial table poisoned");
    if idx < table.len() {
        return; // another thread grew it while we waited
    }
    let new_len = (idx + 1)
        .next_power_of_two()
        .clamp(1024, LN_FACTORIAL_TABLE_CAP);
    let old_len = table.len();
    table.reserve(new_len - old_len);
    for k in old_len..new_len {
        table.push(if k < 2 { 0.0 } else { ln_gamma(k as f64 + 1.0) });
    }
}

/// Natural log of `n!`, backed by the shared lazily-grown table.
///
/// A lookup costs one shared-lock acquisition and one load; arguments at
/// or above [`LN_FACTORIAL_TABLE_CAP`] are computed with [`ln_gamma`]
/// directly.
///
/// # Examples
///
/// ```
/// let ln120 = easeml_bounds::numeric::ln_factorial(5); // 5! = 120
/// assert!((ln120 - 120f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let idx = n as usize;
    if idx >= LN_FACTORIAL_TABLE_CAP {
        return ln_gamma(n as f64 + 1.0);
    }
    {
        let table = LN_FACTORIAL.read().expect("ln-factorial table poisoned");
        if idx < table.len() {
            return table[idx];
        }
    }
    grow_ln_factorial(idx);
    LN_FACTORIAL.read().expect("ln-factorial table poisoned")[idx]
}

/// Natural log of `n choose k`, valid for `k <= n`.
///
/// For `n` inside the shared table this is three table loads under one
/// shared lock (the hot path of every binomial pmf evaluation); larger
/// `n` falls back to three Lanczos evaluations.
///
/// # Panics
///
/// Panics in debug builds if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n, "ln_choose requires k <= n");
    if k == 0 || k == n {
        return 0.0;
    }
    let idx = n as usize;
    if idx < LN_FACTORIAL_TABLE_CAP {
        {
            let table = LN_FACTORIAL.read().expect("ln-factorial table poisoned");
            if idx < table.len() {
                return table[idx] - table[k as usize] - table[(n - k) as usize];
            }
        }
        grow_ln_factorial(idx);
        let table = LN_FACTORIAL.read().expect("ln-factorial table poisoned");
        return table[idx] - table[k as usize] - table[(n - k) as usize];
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Numerically stable `ln(exp(a) + exp(b))`.
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Stable `ln(1 - exp(x))` for `x < 0`; returns `-inf` at `x = 0`.
pub fn log1m_exp(x: f64) -> f64 {
    debug_assert!(x <= 0.0, "log1m_exp requires x <= 0");
    if x == 0.0 {
        f64::NEG_INFINITY
    } else if x > -std::f64::consts::LN_2 {
        (-x.exp_m1()).ln()
    } else {
        (-(x.exp())).ln_1p()
    }
}

/// Find a root of `f` on `[lo, hi]` by bisection.
///
/// `f(lo)` and `f(hi)` must have opposite signs (or one must be zero).
/// Returns the midpoint after the interval shrinks below `tol` or after
/// `max_iter` halvings, whichever comes first.
///
/// # Errors
///
/// Returns [`BoundsError::NoConvergence`] if the bracket is invalid.
pub fn bisect<F: Fn(f64) -> f64>(
    f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: u32,
) -> Result<f64> {
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() || !flo.is_finite() || !fhi.is_finite() {
        return Err(BoundsError::NoConvergence { routine: "bisect" });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        if (hi - lo).abs() < tol {
            return Ok(mid);
        }
        let fmid = f(mid);
        if fmid == 0.0 {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Newton's method with a bisection fallback bracket.
///
/// Keeps iterates inside `[lo, hi]`; falls back to bisection steps whenever
/// Newton would leave the bracket or the derivative vanishes.
///
/// # Errors
///
/// Returns [`BoundsError::NoConvergence`] if the initial bracket is invalid.
pub fn newton_bracketed<F, D>(
    f: F,
    df: D,
    lo: f64,
    hi: f64,
    x0: f64,
    tol: f64,
    max_iter: u32,
) -> Result<f64>
where
    F: Fn(f64) -> f64,
    D: Fn(f64) -> f64,
{
    let (mut lo, mut hi) = (lo, hi);
    let flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(BoundsError::NoConvergence {
            routine: "newton_bracketed",
        });
    }
    let increasing = fhi > 0.0;
    let mut x = x0.clamp(lo, hi);
    for _ in 0..max_iter {
        let fx = f(x);
        if fx.abs() < tol {
            return Ok(x);
        }
        // Maintain the bracket.
        if (fx > 0.0) == increasing {
            hi = x;
        } else {
            lo = x;
        }
        let d = df(x);
        let mut next = if d != 0.0 { x - fx / d } else { f64::NAN };
        if !next.is_finite() || next <= lo || next >= hi {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() < tol * x.abs().max(1.0) {
            return Ok(next);
        }
        x = next;
    }
    Ok(x)
}

/// Round a fractional sample size up to the next integer, guarding overflow.
///
/// # Errors
///
/// Returns [`BoundsError::SampleSizeOverflow`] when the value exceeds `u64`
/// range (practically: an astronomically impractical requirement).
pub fn ceil_to_sample_size(raw: f64) -> Result<u64> {
    if !raw.is_finite() || !(0.0..9.0e18).contains(&raw) {
        return Err(BoundsError::SampleSizeOverflow { raw });
    }
    Ok(raw.ceil().max(1.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for k in 1..15u32 {
            // Γ(k+1) = k!
            if k > 1 {
                fact *= k as f64;
            }
            let got = ln_gamma(k as f64 + 1.0);
            assert!(
                (got - fact.ln()).abs() < 1e-10,
                "ln_gamma({k}+1) = {got}, want {}",
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-12);
    }

    #[test]
    fn ln_factorial_matches_exact_factorials() {
        let mut fact = 1.0f64;
        for k in 0..=20u64 {
            if k > 1 {
                fact *= k as f64;
            }
            let got = ln_factorial(k);
            assert!(
                (got - fact.ln()).abs() < 1e-10,
                "ln_factorial({k}) = {got}, want {}",
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_factorial_agrees_with_ln_gamma_across_table_growth() {
        // Spot-check across several table doublings and across the cap.
        for &n in &[
            2u64,
            100,
            1_023,
            1_024,
            50_000,
            (1 << 20) - 1,
            1 << 20,
            1 << 21,
        ] {
            let got = ln_factorial(n);
            let want = ln_gamma(n as f64 + 1.0);
            assert!(
                (got - want).abs() <= 1e-10 * want.abs().max(1.0),
                "n={n}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn ln_factorial_table_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let n = (t * 977 + i * 13) % 30_000;
                        let v = ln_factorial(n);
                        assert!(v.is_finite() && v >= 0.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-10);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn ln_choose_large_values_stay_finite() {
        let v = ln_choose(1_000_000, 500_000);
        assert!(v.is_finite());
        // log2(C(n, n/2)) ≈ n - 0.5 log2(n π / 2)
        let bits = v / std::f64::consts::LN_2;
        assert!((bits - 999_989.7).abs() < 1.0, "got {bits} bits");
    }

    #[test]
    fn log_add_exp_basics() {
        let v = log_add_exp(0.0, 0.0); // ln(2)
        assert!((v - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(log_add_exp(f64::NEG_INFINITY, -1.0), -1.0);
        // Extreme imbalance: should return the larger argument.
        assert_eq!(log_add_exp(-1e300, 0.0), 0.0);
    }

    #[test]
    fn log1m_exp_ranges() {
        // ln(1 - e^-1)
        let v = log1m_exp(-1.0);
        assert!((v.exp() - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // Near zero: 1 - e^-x ≈ x
        let v = log1m_exp(-1e-10);
        assert!((v - (1e-10f64).ln()).abs() < 1e-4);
        assert_eq!(log1m_exp(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).is_err());
    }

    #[test]
    fn newton_finds_cube_root() {
        let root = newton_bracketed(
            |x| x * x * x - 27.0,
            |x| 3.0 * x * x,
            0.0,
            10.0,
            5.0,
            1e-12,
            100,
        )
        .unwrap();
        assert!((root - 3.0).abs() < 1e-9);
    }

    #[test]
    fn newton_survives_zero_derivative() {
        // f(x) = x^3 has zero derivative at the initial guess 0, which must
        // trigger the bisection fallback rather than dividing by zero.
        let root = newton_bracketed(
            |x| x * x * x - 8.0,
            |x| 3.0 * x * x,
            -1.0,
            5.0,
            0.0,
            1e-12,
            200,
        )
        .unwrap();
        assert!((root - 2.0).abs() < 1e-8);
    }

    #[test]
    fn ceil_to_sample_size_rounds_up() {
        assert_eq!(ceil_to_sample_size(403.5).unwrap(), 404);
        assert_eq!(ceil_to_sample_size(404.0).unwrap(), 404);
        assert_eq!(ceil_to_sample_size(0.2).unwrap(), 1);
        assert!(ceil_to_sample_size(f64::INFINITY).is_err());
        assert!(ceil_to_sample_size(1e19).is_err());
    }
}

//! The original (pre-optimization) §4.3 implementation, kept verbatim.
//!
//! This module preserves the seed's exact-binomial hot path — three
//! Lanczos `ln_gamma` evaluations per pmf term, log-space tail
//! accumulation, full-grid worst-case scans, and a `[1, Hoeffding]`
//! binary search — so that:
//!
//! * `benches/bounds.rs` and the `repro_bounds_perf` binary can measure
//!   the optimized path against the genuine baseline in one build, and
//! * property tests can cross-validate the optimized inversion against
//!   an independent implementation.
//!
//! It intentionally also retains the seed's *unhardened* integer
//! cut-offs (`floor`/`ceil` without the near-integer snap), so results
//! can differ from the optimized path by one boundary pmf term at
//! measure-zero parameter points; comparisons therefore use tolerances.
//! Do not call this from production paths.

use crate::error::{check_positive, check_probability, BoundsError, Result};
use crate::hoeffding::hoeffding_sample_size;
use crate::numeric::{ln_gamma, log_add_exp};
use crate::tail::Tail;

/// Seed `ln_choose`: three Lanczos evaluations, no table.
fn ln_choose_lanczos(n: u64, k: u64) -> f64 {
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

fn ln_pmf(n: u64, p: f64, k: u64) -> f64 {
    if p == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_choose_lanczos(n, k) + k as f64 * p.ln() + (n - k) as f64 * (-p).ln_1p()
}

/// Seed upper tail: log-space accumulation with a per-term `ln`.
fn ln_upper_tail(n: u64, p: f64, k: u64) -> f64 {
    if k == 0 {
        return 0.0;
    }
    if k > n {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return 0.0;
    }
    let ratio_log = |k: u64| ((n - k) as f64 / (k + 1) as f64).ln() + p.ln() - (-p).ln_1p();
    let mut term = ln_pmf(n, p, k);
    let mut total = term;
    let mut i = k;
    while i < n {
        term += ratio_log(i);
        let new_total = log_add_exp(total, term);
        if new_total == total && term < total - 40.0 {
            break;
        }
        total = new_total;
        i += 1;
    }
    total.min(0.0)
}

fn ln_lower_tail(n: u64, p: f64, k: u64) -> f64 {
    if k >= n {
        return 0.0;
    }
    ln_upper_tail(n, 1.0 - p, n - k)
}

/// Seed two-sided deviation probability (naive integer cut-offs).
pub fn deviation_probability(n: u64, p: f64, eps: f64) -> f64 {
    let nf = n as f64;
    let hi_cut = (nf * (p + eps)).floor() as i128 + 1;
    let upper = if hi_cut > n as i128 {
        f64::NEG_INFINITY
    } else {
        ln_upper_tail(n, p, hi_cut as u64)
    };
    let lo_cut = (nf * (p - eps)).ceil() as i128 - 1;
    let lower = if lo_cut < 0 {
        f64::NEG_INFINITY
    } else {
        ln_lower_tail(n, p, lo_cut as u64)
    };
    log_add_exp(upper, lower).exp().min(1.0)
}

fn deviation_probability_one_sided(n: u64, p: f64, eps: f64) -> f64 {
    let nf = n as f64;
    let hi_cut = (nf * (p + eps)).floor() as i128 + 1;
    if hi_cut > n as i128 {
        0.0
    } else {
        ln_upper_tail(n, p, hi_cut as u64).exp()
    }
}

/// Seed worst-case scan: full coarse grid plus fine refinement.
pub fn worst_case_deviation(n: u64, eps: f64, grid: usize) -> f64 {
    let grid = grid.max(8);
    let mut best = 0.0f64;
    let mut best_p = 0.5;
    for i in 0..=grid {
        let p = i as f64 / grid as f64;
        let d = deviation_probability(n, p, eps);
        if d > best {
            best = d;
            best_p = p;
        }
    }
    let lo = (best_p - 1.0 / grid as f64).max(0.0);
    let hi = (best_p + 1.0 / grid as f64).min(1.0);
    let fine = 64;
    for i in 0..=fine {
        let p = lo + (hi - lo) * i as f64 / fine as f64;
        let d = deviation_probability(n, p, eps);
        if d > best {
            best = d;
        }
    }
    best
}

const DEFAULT_GRID: usize = 64;

/// Seed minimal-`n` inversion: full-grid probes, `[1, Hoeffding]` binary
/// search, linear sawtooth patch.
///
/// # Errors
///
/// Same conditions as [`crate::exact_binomial_sample_size`].
pub fn exact_binomial_sample_size(eps: f64, delta: f64, tail: Tail) -> Result<u64> {
    check_positive("eps", eps)?;
    check_probability("delta", delta)?;
    if eps >= 1.0 {
        return Err(BoundsError::ToleranceExceedsRange {
            epsilon: eps,
            range: 1.0,
        });
    }
    let worst = |n: u64| -> f64 {
        match tail {
            Tail::TwoSided => worst_case_deviation(n, eps, DEFAULT_GRID),
            Tail::OneSided => {
                let mut best = 0.0f64;
                for i in 0..=DEFAULT_GRID {
                    let p = i as f64 / DEFAULT_GRID as f64;
                    let d = deviation_probability_one_sided(n, p, eps);
                    if d > best {
                        best = d;
                    }
                }
                best
            }
        }
    };
    let hi = hoeffding_sample_size(1.0, eps, delta, tail)?;
    if worst(hi) > delta {
        return Ok(hi);
    }
    let mut lo = 1u64;
    let mut hi = hi;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if worst(mid) <= delta {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut n = lo;
    'outer: loop {
        for offset in 0..8u64 {
            if worst(n + offset) > delta {
                n += offset + 1;
                continue 'outer;
            }
        }
        return Ok(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tail_matches_optimized_tail() {
        for &(n, p, k) in &[(100u64, 0.5, 61u64), (500, 0.3, 180), (2_000, 0.5, 1_080)] {
            let reference = ln_upper_tail(n, p, k);
            let optimized = crate::binomial::ln_upper_tail(n, p, k);
            assert!(
                (reference - optimized).abs() < 1e-9 * reference.abs().max(1.0),
                "n={n} p={p} k={k}: {reference} vs {optimized}"
            );
        }
    }

    #[test]
    fn reference_inversion_agrees_with_optimized_inversion() {
        for &(eps, delta) in &[(0.1, 0.01), (0.05, 0.01)] {
            let reference = exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
            let optimized = crate::exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
            // The optimized acceptance is breakpoint-exact: its sup
            // dominates this grid scan's, so its answers sit at or a few
            // sawtooth teeth above the seed's — never below, never far.
            assert!(
                optimized >= reference,
                "eps={eps} delta={delta}: optimized {optimized} below grid-accepted {reference}"
            );
            assert!(
                optimized.abs_diff(reference) as f64 <= (reference as f64 * 0.05).max(8.0),
                "eps={eps} delta={delta}: reference {reference} vs optimized {optimized}"
            );
        }
    }
}

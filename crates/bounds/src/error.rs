//! Error type for the bounds crate.

use std::error::Error;
use std::fmt;

/// Error returned when a bound is queried with invalid parameters.
///
/// All bound computations validate their inputs: probabilities must lie in
/// `(0, 1)`, tolerances must be positive, ranges must be positive and finite.
/// Violations are reported through this type rather than through panics so
/// that callers (e.g. a CI engine fed with a user-written script) can surface
/// the problem to the user.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundsError {
    /// A parameter that must be a probability was outside `(0, 1)`.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter that must be strictly positive and finite was not.
    NotPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The requested error tolerance exceeds the variable's dynamic range,
    /// making the estimate trivially satisfiable (and the query meaningless).
    ToleranceExceedsRange {
        /// Requested tolerance.
        epsilon: f64,
        /// Dynamic range of the variable.
        range: f64,
    },
    /// A sample size of zero was supplied where at least one sample is needed.
    ZeroSampleSize,
    /// The computed sample size overflows the supported maximum.
    SampleSizeOverflow {
        /// The (unrounded) value that overflowed.
        raw: f64,
    },
    /// A numeric routine failed to converge.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
    },
    /// A batch inversion was asked for an empty `(ε, δ)` grid.
    EmptyBatch,
}

impl fmt::Display for BoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsError::InvalidProbability { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must lie strictly in (0, 1), got {value}"
                )
            }
            BoundsError::NotPositive { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be positive and finite, got {value}"
                )
            }
            BoundsError::ToleranceExceedsRange { epsilon, range } => {
                write!(
                    f,
                    "error tolerance {epsilon} is not smaller than the variable range {range}"
                )
            }
            BoundsError::ZeroSampleSize => write!(f, "sample size must be at least 1"),
            BoundsError::SampleSizeOverflow { raw } => {
                write!(
                    f,
                    "computed sample size {raw} overflows the supported maximum"
                )
            }
            BoundsError::NoConvergence { routine } => {
                write!(f, "numeric routine `{routine}` failed to converge")
            }
            BoundsError::EmptyBatch => {
                write!(
                    f,
                    "batch inversion requires at least one epsilon and one delta"
                )
            }
        }
    }
}

impl Error for BoundsError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BoundsError>;

pub(crate) fn check_probability(name: &'static str, value: f64) -> Result<()> {
    if value.is_finite() && value > 0.0 && value < 1.0 {
        Ok(())
    } else {
        Err(BoundsError::InvalidProbability { name, value })
    }
}

pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<()> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(BoundsError::NotPositive { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = BoundsError::InvalidProbability {
            name: "delta",
            value: 1.5,
        };
        let msg = err.to_string();
        assert!(msg.contains("delta"));
        assert!(msg.contains("1.5"));
    }

    #[test]
    fn probability_check_accepts_open_interval() {
        assert!(check_probability("p", 0.5).is_ok());
        assert!(check_probability("p", 1e-300).is_ok());
        assert!(check_probability("p", 0.0).is_err());
        assert!(check_probability("p", 1.0).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
        assert!(check_probability("p", -0.1).is_err());
    }

    #[test]
    fn positive_check() {
        assert!(check_positive("r", 2.0).is_ok());
        assert!(check_positive("r", 0.0).is_err());
        assert!(check_positive("r", f64::INFINITY).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BoundsError>();
    }
}

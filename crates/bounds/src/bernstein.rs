//! Bernstein's inequality, provided as an ablation baseline for Bennett.
//!
//! For independent zero-mean variables with `|Xᵢ| ≤ b` and per-sample
//! second moment at most `p`,
//!
//! ```text
//! Pr[ |Σᵢ Xᵢ| / n > ε ] ≤ 2 exp( − n ε² / (2p + 2bε/3) )
//! ```
//!
//! Bernstein is a weakened, closed-form-invertible version of Bennett: it
//! never needs the numeric inverse of `h`, at the price of a slightly larger
//! constant. The bench suite compares the two (DESIGN.md ablation 3).

use crate::error::{check_positive, check_probability, BoundsError, Result};
use crate::numeric::ceil_to_sample_size;
use crate::tail::Tail;

/// Sample size for an `(ε, δ)` estimate under a second-moment bound, using
/// Bernstein's inequality: `n = (2p + 2bε/3)(ln factor − ln δ) / ε²`.
///
/// # Errors
///
/// Returns an error for non-positive `var_bound`, `b`, `eps`, or a `delta`
/// outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use easeml_bounds::{bennett_sample_size, bernstein_sample_size, Tail};
///
/// # fn main() -> Result<(), easeml_bounds::BoundsError> {
/// let bern = bernstein_sample_size(0.1, 1.0, 0.01, 1e-4, Tail::TwoSided)?;
/// let benn = bennett_sample_size(0.1, 1.0, 0.01, 1e-4, Tail::TwoSided)?;
/// assert!(bern >= benn); // Bennett dominates Bernstein
/// # Ok(())
/// # }
/// ```
pub fn bernstein_sample_size(
    var_bound: f64,
    b: f64,
    eps: f64,
    delta: f64,
    tail: Tail,
) -> Result<u64> {
    check_probability("delta", delta)?;
    bernstein_sample_size_from_ln_delta(var_bound, b, eps, delta.ln(), tail)
}

/// Log-space variant of [`bernstein_sample_size`] taking `ln δ` directly.
///
/// # Errors
///
/// Same conditions as [`bernstein_sample_size`].
pub fn bernstein_sample_size_from_ln_delta(
    var_bound: f64,
    b: f64,
    eps: f64,
    ln_delta: f64,
    tail: Tail,
) -> Result<u64> {
    check_positive("var_bound", var_bound)?;
    check_positive("b", b)?;
    check_positive("eps", eps)?;
    if !(ln_delta < 0.0) {
        return Err(BoundsError::InvalidProbability {
            name: "delta",
            value: ln_delta.exp(),
        });
    }
    let raw = (2.0 * var_bound + 2.0 * b * eps / 3.0) * (tail.ln_factor() - ln_delta) / (eps * eps);
    ceil_to_sample_size(raw)
}

/// Error tolerance achieved by `n` samples under Bernstein's inequality.
///
/// Closed-form inverse via the quadratic formula:
/// `ε = (b·L/3 + sqrt(b²L²/9 + 2pLn)) / n` with `L = ln factor − ln δ`.
///
/// # Errors
///
/// Returns an error for a zero sample size or invalid parameters.
pub fn bernstein_epsilon(var_bound: f64, b: f64, n: u64, delta: f64, tail: Tail) -> Result<f64> {
    check_positive("var_bound", var_bound)?;
    check_positive("b", b)?;
    check_probability("delta", delta)?;
    if n == 0 {
        return Err(BoundsError::ZeroSampleSize);
    }
    let l = tail.ln_factor() - delta.ln();
    let nf = n as f64;
    let bl3 = b * l / 3.0;
    Ok((bl3 + (bl3 * bl3 + 2.0 * var_bound * l * nf).sqrt()) / nf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bennett::bennett_sample_size;

    #[test]
    fn bennett_dominates_bernstein() {
        for &(p, eps, delta) in &[
            (0.1, 0.01, 1e-4),
            (0.02, 0.01, 1e-3),
            (0.5, 0.05, 0.01),
            (0.9, 0.1, 0.001),
        ] {
            let bern = bernstein_sample_size(p, 1.0, eps, delta, Tail::TwoSided).unwrap();
            let benn = bennett_sample_size(p, 1.0, eps, delta, Tail::TwoSided).unwrap();
            assert!(
                benn <= bern,
                "p={p} eps={eps}: bennett={benn} bernstein={bern}"
            );
            // ... but they agree within a small constant factor.
            assert!(bern as f64 / benn as f64 <= 2.0, "p={p} eps={eps}");
        }
    }

    #[test]
    fn epsilon_inverts_sample_size() {
        for &(p, eps, delta) in &[(0.1, 0.01, 1e-4), (0.3, 0.05, 1e-2)] {
            let n = bernstein_sample_size(p, 1.0, eps, delta, Tail::TwoSided).unwrap();
            let achieved = bernstein_epsilon(p, 1.0, n, delta, Tail::TwoSided).unwrap();
            assert!(achieved <= eps + 1e-9, "achieved={achieved}");
            let short = bernstein_epsilon(p, 1.0, n / 2, delta, Tail::TwoSided).unwrap();
            assert!(short > eps);
        }
    }

    #[test]
    fn small_variance_recovers_fast_rate() {
        // When p = O(ε) the label complexity is O(1/ε) instead of O(1/ε²):
        // quadrupling 1/ε with p = ε should scale n by ~4, not ~16.
        let n1 = bernstein_sample_size(0.04, 1.0, 0.04, 1e-4, Tail::TwoSided).unwrap();
        let n2 = bernstein_sample_size(0.01, 1.0, 0.01, 1e-4, Tail::TwoSided).unwrap();
        let ratio = n2 as f64 / n1 as f64;
        assert!(ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(bernstein_sample_size(0.0, 1.0, 0.01, 0.01, Tail::TwoSided).is_err());
        assert!(bernstein_sample_size(0.1, 1.0, 0.01, 1.5, Tail::TwoSided).is_err());
        assert!(bernstein_epsilon(0.1, 1.0, 0, 0.01, Tail::TwoSided).is_err());
    }
}

//! Hoeffding's inequality: the baseline bound of ease.ml/ci (§3.1).
//!
//! For i.i.d. random variables `X₁…X_n` confined to an interval of length
//! `r`, the empirical mean deviates from the true mean by more than `ε` with
//! probability at most `factor · exp(-2nε²/r²)`, where `factor` is 1 for the
//! one-sided bound and 2 for the two-sided bound.
//!
//! Solving for `n` gives the paper's sample-size estimator
//! `n(v, r_v, ε, δ) = -r_v² ln δ / (2ε²)` (one-sided form).

use crate::error::{check_positive, check_probability, BoundsError, Result};
use crate::numeric::ceil_to_sample_size;
use crate::tail::Tail;

/// Number of samples needed to estimate a mean to tolerance `eps` with
/// failure probability at most `delta`, for a variable with dynamic range
/// `range`.
///
/// This is the paper's estimator for a single variable:
/// `n = r² (ln factor − ln δ) / (2 ε²)`, rounded up.
///
/// # Errors
///
/// Returns an error if `range` or `eps` is not positive/finite, if `delta`
/// is not in `(0, 1)`, or if `eps >= range` (the estimate would be vacuous).
///
/// # Examples
///
/// Reproduce the top-left cell of Figure 2 (404 samples for
/// `n > c ± 0.1` at reliability 0.99 over H = 32 non-adaptive steps):
///
/// ```
/// use easeml_bounds::{hoeffding_sample_size, Tail};
///
/// # fn main() -> Result<(), easeml_bounds::BoundsError> {
/// let delta_per_step = 0.01 / 32.0;
/// let n = hoeffding_sample_size(1.0, 0.1, delta_per_step, Tail::OneSided)?;
/// assert_eq!(n, 404);
/// # Ok(())
/// # }
/// ```
pub fn hoeffding_sample_size(range: f64, eps: f64, delta: f64, tail: Tail) -> Result<u64> {
    check_probability("delta", delta)?;
    hoeffding_sample_size_from_ln_delta(range, eps, delta.ln(), tail)
}

/// Log-space variant of [`hoeffding_sample_size`] taking `ln δ` directly.
///
/// The fully-adaptive scenario divides `δ` by `2^H`; for large `H` that
/// quantity underflows `f64`, so the estimator pipeline works with `ln δ`
/// throughout.
///
/// # Errors
///
/// Same conditions as [`hoeffding_sample_size`]; `ln_delta` must be negative.
pub fn hoeffding_sample_size_from_ln_delta(
    range: f64,
    eps: f64,
    ln_delta: f64,
    tail: Tail,
) -> Result<u64> {
    check_positive("range", range)?;
    check_positive("eps", eps)?;
    if !(ln_delta < 0.0) {
        return Err(BoundsError::InvalidProbability {
            name: "delta",
            value: ln_delta.exp(),
        });
    }
    if eps >= range {
        return Err(BoundsError::ToleranceExceedsRange {
            epsilon: eps,
            range,
        });
    }
    let raw = range * range * (tail.ln_factor() - ln_delta) / (2.0 * eps * eps);
    ceil_to_sample_size(raw)
}

/// Error tolerance achieved by `n` samples at failure probability `delta`.
///
/// Inverse of [`hoeffding_sample_size`] in `ε`:
/// `ε = r sqrt((ln factor − ln δ) / (2n))`.
///
/// # Errors
///
/// Returns an error for a zero sample size, non-positive range, or a
/// `delta` outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use easeml_bounds::{hoeffding_epsilon, Tail};
///
/// # fn main() -> Result<(), easeml_bounds::BoundsError> {
/// let eps = hoeffding_epsilon(1.0, 46_052, 0.0001, Tail::OneSided)?;
/// assert!((eps - 0.01).abs() < 1e-4); // the paper's "46K labels" example
/// # Ok(())
/// # }
/// ```
pub fn hoeffding_epsilon(range: f64, n: u64, delta: f64, tail: Tail) -> Result<f64> {
    check_probability("delta", delta)?;
    hoeffding_epsilon_from_ln_delta(range, n, delta.ln(), tail)
}

/// Log-space variant of [`hoeffding_epsilon`] taking `ln δ` directly.
///
/// # Errors
///
/// Same conditions as [`hoeffding_epsilon`].
pub fn hoeffding_epsilon_from_ln_delta(
    range: f64,
    n: u64,
    ln_delta: f64,
    tail: Tail,
) -> Result<f64> {
    check_positive("range", range)?;
    if n == 0 {
        return Err(BoundsError::ZeroSampleSize);
    }
    if !(ln_delta < 0.0) {
        return Err(BoundsError::InvalidProbability {
            name: "delta",
            value: ln_delta.exp(),
        });
    }
    Ok(range * ((tail.ln_factor() - ln_delta) / (2.0 * n as f64)).sqrt())
}

/// Failure probability for `n` samples at tolerance `eps`.
///
/// `δ = factor · exp(-2nε²/r²)`, clamped to `1`.
///
/// # Errors
///
/// Returns an error for a zero sample size or non-positive `range`/`eps`.
pub fn hoeffding_delta(range: f64, n: u64, eps: f64, tail: Tail) -> Result<f64> {
    check_positive("range", range)?;
    check_positive("eps", eps)?;
    if n == 0 {
        return Err(BoundsError::ZeroSampleSize);
    }
    let exponent = -2.0 * n as f64 * eps * eps / (range * range);
    Ok((tail.factor() * exponent.exp()).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every "one-sided, H steps" cell of the paper's Figure 2 for the
    /// F1/F4 column (single variable, range 1).
    #[test]
    fn figure2_f1_nonadaptive_column() {
        let h = 32.0;
        let cases = [
            (0.01, 0.1, 404),
            (0.01, 0.05, 1_615),
            (0.01, 0.025, 6_457),
            (0.01, 0.01, 40_355),
            (0.001, 0.1, 519),
            (0.001, 0.05, 2_075),
            (0.001, 0.025, 8_299),
            (0.001, 0.01, 51_868),
            (0.0001, 0.1, 634),
            (0.0001, 0.05, 2_536),
            (0.0001, 0.025, 10_141),
            (0.0001, 0.01, 63_381),
            (0.00001, 0.1, 749),
            (0.00001, 0.05, 2_996),
            (0.00001, 0.025, 11_983),
            (0.00001, 0.01, 74_894),
        ];
        for (delta, eps, want) in cases {
            let n = hoeffding_sample_size(1.0, eps, delta / h, Tail::OneSided).unwrap();
            assert_eq!(n, want, "delta={delta} eps={eps}");
        }
    }

    /// Fully-adaptive column: δ/2^32.
    #[test]
    fn figure2_f1_fully_adaptive_column() {
        let pow = 2f64.powi(32);
        let cases = [
            (0.01, 0.1, 1_340),
            (0.01, 0.05, 5_358),
            (0.01, 0.025, 21_429),
            (0.01, 0.01, 133_930),
            (0.0001, 0.05, 6_279), // §3.3 worked example
            (0.0001, 0.01, 156_956),
        ];
        for (delta, eps, want) in cases {
            let n = hoeffding_sample_size(1.0, eps, delta / pow, Tail::OneSided).unwrap();
            assert_eq!(n, want, "delta={delta} eps={eps}");
        }
    }

    /// §5.2: H = 7 non-adaptive steps for `n - o` (range 2), ε = 0.02,
    /// δ = 0.002, with the paper's δ/2 clause split: 44 268 samples.
    #[test]
    fn section52_semeval_hoeffding() {
        let delta = 0.002;
        let n = hoeffding_sample_size(2.0, 0.02, delta / 2.0 / 7.0, Tail::OneSided).unwrap();
        assert_eq!(n, 44_269); // paper prints 44,268 via strict `>`; we ceil
    }

    #[test]
    fn log_space_variant_matches_linear_variant() {
        for &delta in &[0.1, 0.01, 1e-4] {
            for &eps in &[0.1, 0.05, 0.01] {
                let a = hoeffding_sample_size(1.0, eps, delta, Tail::TwoSided).unwrap();
                let b = hoeffding_sample_size_from_ln_delta(1.0, eps, delta.ln(), Tail::TwoSided)
                    .unwrap();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn log_space_survives_extreme_adaptivity() {
        // δ / 2^4096 underflows f64 but works in log space.
        let ln_delta = 0.0001f64.ln() - 4096.0 * std::f64::consts::LN_2;
        let n = hoeffding_sample_size_from_ln_delta(1.0, 0.05, ln_delta, Tail::OneSided).unwrap();
        assert!(n > 500_000 && n < 700_000, "n = {n}");
    }

    #[test]
    fn epsilon_inverts_sample_size() {
        let n = hoeffding_sample_size(1.0, 0.03, 0.001, Tail::TwoSided).unwrap();
        let eps = hoeffding_epsilon(1.0, n, 0.001, Tail::TwoSided).unwrap();
        assert!(eps <= 0.03 + 1e-12);
        // One fewer sample must not reach the tolerance.
        let eps_short = hoeffding_epsilon(1.0, n - 1, 0.001, Tail::TwoSided).unwrap();
        assert!(eps_short > 0.03 - 1e-4);
    }

    #[test]
    fn delta_inverts_sample_size() {
        let n = hoeffding_sample_size(1.0, 0.05, 0.01, Tail::TwoSided).unwrap();
        let delta = hoeffding_delta(1.0, n, 0.05, Tail::TwoSided).unwrap();
        assert!(delta <= 0.01 + 1e-12);
    }

    #[test]
    fn two_sided_needs_more_samples() {
        let one = hoeffding_sample_size(1.0, 0.05, 0.01, Tail::OneSided).unwrap();
        let two = hoeffding_sample_size(1.0, 0.05, 0.01, Tail::TwoSided).unwrap();
        assert!(two > one);
    }

    #[test]
    fn range_scales_quadratically() {
        let r1 = hoeffding_sample_size(1.0, 0.05, 0.01, Tail::OneSided).unwrap();
        let r2 = hoeffding_sample_size(2.0, 0.05, 0.01, Tail::OneSided).unwrap();
        let ratio = r2 as f64 / r1 as f64;
        assert!((ratio - 4.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn rejects_vacuous_tolerance() {
        assert!(matches!(
            hoeffding_sample_size(1.0, 1.0, 0.01, Tail::OneSided),
            Err(BoundsError::ToleranceExceedsRange { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(hoeffding_sample_size(0.0, 0.1, 0.01, Tail::OneSided).is_err());
        assert!(hoeffding_sample_size(1.0, 0.0, 0.01, Tail::OneSided).is_err());
        assert!(hoeffding_sample_size(1.0, 0.1, 0.0, Tail::OneSided).is_err());
        assert!(hoeffding_sample_size(1.0, 0.1, 1.0, Tail::OneSided).is_err());
        assert!(hoeffding_epsilon(1.0, 0, 0.01, Tail::OneSided).is_err());
        assert!(hoeffding_delta(1.0, 0, 0.1, Tail::OneSided).is_err());
    }
}

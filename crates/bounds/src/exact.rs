//! Tight numerical sample-size bounds (§4.3).
//!
//! Following Langford's "practical prediction theory" programme, when the
//! tested statistic is a mean of i.i.d. Bernoulli variables one can discard
//! closed-form inequalities entirely and invert the exact binomial tail:
//! the smallest `n` such that `max_p Pr[|Binom(n,p)/n − p| > ε] ≤ δ`.
//!
//! The paper leaves efficient approximations as future work; here the
//! worst case over `p` is evaluated on a refined grid (the maximizer sits
//! near `p = 1/2`) and the search over `n` exploits the (near-)monotone
//! decay of the worst-case deviation probability.

use crate::binomial::{deviation_probability, worst_case_deviation};
use crate::error::{check_positive, check_probability, BoundsError, Result};
use crate::hoeffding::hoeffding_sample_size;
use crate::numeric::bisect;
use crate::tail::Tail;

/// Default grid resolution for the worst-case scan over `p`.
const DEFAULT_GRID: usize = 64;

/// Smallest sample size `n` such that the *exact* binomial deviation
/// probability is at most `delta` for every possible true mean `p`.
///
/// Always at most the Hoeffding sample size (which is used as the initial
/// upper bracket of the search); typically 10–30 % smaller.
///
/// The worst-case probability is not perfectly monotone in `n` (integer
/// cut-offs create a sawtooth), so after the binary search the result is
/// patched by a short linear scan to the first `n` whose *next few*
/// neighbours also satisfy the constraint.
///
/// # Errors
///
/// Returns an error for invalid `eps`/`delta` or if the search fails to
/// bracket (cannot happen while Hoeffding itself is finite).
///
/// # Examples
///
/// ```
/// use easeml_bounds::{exact_binomial_sample_size, hoeffding_sample_size, Tail};
///
/// # fn main() -> Result<(), easeml_bounds::BoundsError> {
/// let exact = exact_binomial_sample_size(0.05, 0.001, Tail::TwoSided)?;
/// let hoeff = hoeffding_sample_size(1.0, 0.05, 0.001, Tail::TwoSided)?;
/// assert!(exact < hoeff);
/// # Ok(())
/// # }
/// ```
pub fn exact_binomial_sample_size(eps: f64, delta: f64, tail: Tail) -> Result<u64> {
    check_positive("eps", eps)?;
    check_probability("delta", delta)?;
    if eps >= 1.0 {
        return Err(BoundsError::ToleranceExceedsRange { epsilon: eps, range: 1.0 });
    }
    let worst = |n: u64| -> f64 {
        match tail {
            Tail::TwoSided => worst_case_deviation(n, eps, DEFAULT_GRID),
            Tail::OneSided => {
                // One-sided worst case, also near p = 1/2.
                let mut best = 0.0f64;
                for i in 0..=DEFAULT_GRID {
                    let p = i as f64 / DEFAULT_GRID as f64;
                    let d =
                        crate::binomial::deviation_probability_one_sided(n, p, eps);
                    if d > best {
                        best = d;
                    }
                }
                best
            }
        }
    };
    // Upper bracket: Hoeffding is a valid (conservative) answer.
    let hi = hoeffding_sample_size(1.0, eps, delta, tail)?;
    if worst(hi) > delta {
        // Sawtooth pushed the boundary past Hoeffding (extremely rare);
        // fall back to the conservative answer.
        return Ok(hi);
    }
    let mut lo = 1u64;
    let mut hi = hi;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if worst(mid) <= delta {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // Patch the sawtooth: step forward until a run of consecutive sizes all
    // satisfy the constraint (so slightly larger testsets remain valid).
    let mut n = lo;
    'outer: loop {
        for offset in 0..8u64 {
            if worst(n + offset) > delta {
                n += offset + 1;
                continue 'outer;
            }
        }
        return Ok(n);
    }
}

/// Exact Clopper–Pearson style confidence half-width: smallest `ε` such
/// that `n` samples give `Pr[|p̂ − p| > ε] ≤ δ` for every `p`.
///
/// This is the exact counterpart of [`crate::hoeffding_epsilon`].
///
/// # Errors
///
/// Returns an error for a zero sample size or invalid `delta`.
pub fn exact_binomial_epsilon(n: u64, delta: f64, tail: Tail) -> Result<f64> {
    check_probability("delta", delta)?;
    if n == 0 {
        return Err(BoundsError::ZeroSampleSize);
    }
    let worst = |eps: f64| -> f64 {
        match tail {
            Tail::TwoSided => worst_case_deviation(n, eps, DEFAULT_GRID),
            Tail::OneSided => {
                let mut best = 0.0f64;
                for i in 0..=DEFAULT_GRID {
                    let p = i as f64 / DEFAULT_GRID as f64;
                    best = best
                        .max(crate::binomial::deviation_probability_one_sided(n, p, eps));
                }
                best
            }
        }
    };
    // worst(eps) decreases in eps; find the crossing with delta.
    let eps = bisect(|e| worst(e) - delta, 1e-9, 1.0 - 1e-9, 1e-9, 200)?;
    // Round outward slightly so the returned tolerance is guaranteed valid.
    Ok((eps + 2e-9).min(1.0))
}

/// Exact deviation probability for a *known* true mean — used by the
/// Monte-Carlo validation harness to compare empirical quantiles with the
/// analytic prediction.
pub fn exact_deviation_at(n: u64, p: f64, eps: f64) -> f64 {
    deviation_probability(n, p, eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_beats_hoeffding() {
        for &(eps, delta) in &[(0.1, 0.01), (0.05, 0.001), (0.05, 0.0001)] {
            let exact = exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
            let hoeff = hoeffding_sample_size(1.0, eps, delta, Tail::TwoSided).unwrap();
            assert!(exact <= hoeff, "eps={eps} delta={delta}: {exact} vs {hoeff}");
            // Tight bounds save a visible margin.
            assert!(
                (exact as f64) < (hoeff as f64) * 0.95,
                "eps={eps} delta={delta}: {exact} vs {hoeff}"
            );
        }
    }

    #[test]
    fn exact_answer_is_actually_valid() {
        let eps = 0.1;
        let delta = 0.01;
        let n = exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
        assert!(worst_case_deviation(n, eps, 128) <= delta * 1.0001);
    }

    #[test]
    fn exact_answer_is_minimal_up_to_sawtooth() {
        let eps = 0.1;
        let delta = 0.01;
        let n = exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
        // A clearly smaller testset must violate the constraint.
        assert!(worst_case_deviation(n / 2, eps, 128) > delta);
    }

    #[test]
    fn one_sided_needs_fewer_samples() {
        let one = exact_binomial_sample_size(0.1, 0.01, Tail::OneSided).unwrap();
        let two = exact_binomial_sample_size(0.1, 0.01, Tail::TwoSided).unwrap();
        assert!(one <= two);
    }

    #[test]
    fn epsilon_inverts_sample_size() {
        let n = exact_binomial_sample_size(0.08, 0.01, Tail::TwoSided).unwrap();
        let eps = exact_binomial_epsilon(n, 0.01, Tail::TwoSided).unwrap();
        assert!(eps <= 0.08 + 5e-3, "eps = {eps}");
        assert!(eps >= 0.04, "eps = {eps}");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(exact_binomial_sample_size(0.0, 0.01, Tail::TwoSided).is_err());
        assert!(exact_binomial_sample_size(1.0, 0.01, Tail::TwoSided).is_err());
        assert!(exact_binomial_sample_size(0.1, 0.0, Tail::TwoSided).is_err());
        assert!(exact_binomial_epsilon(0, 0.01, Tail::TwoSided).is_err());
    }
}

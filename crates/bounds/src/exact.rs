//! Tight numerical sample-size bounds (§4.3).
//!
//! Following Langford's "practical prediction theory" programme, when the
//! tested statistic is a mean of i.i.d. Bernoulli variables one can discard
//! closed-form inequalities entirely and invert the exact binomial tail:
//! the smallest `n` such that `max_p Pr[|Binom(n,p)/n − p| > ε] ≤ δ`.
//!
//! The paper leaves efficient approximations as future work; this module
//! implements the inversion as a three-stage search over `n`:
//!
//! 1. **Galloping bracket.** Empirically the exact answer is never below
//!    ~0.7× the Hoeffding sample size, so the search starts from a cheap
//!    lower bound at 0.55× Hoeffding and gallops upward with doubling
//!    steps until the constraint flips, yielding a bracket a fraction the
//!    width of the seed's `[1, Hoeffding]`.
//! 2. **Binary search with warm-started probes.** Each probe evaluates
//!    the worst case over `p` with
//!    [`crate::binomial::worst_case_deviation_hinted`]: a hill-climb that
//!    starts from the maximizer `p*` of the previous probe (the maximizer
//!    drifts only slightly between nearby `n`) and exits early as soon as
//!    the probe provably exceeds `δ`. Probes are memoized, so the
//!    galloping phase, the binary search, and the patch phase never
//!    re-evaluate an `n`.
//! 3. **Sawtooth patch with reference acceptance.** The worst case is not
//!    perfectly monotone in `n` (integer cut-offs create a sawtooth), so
//!    the final answer must have a run of consecutive valid sizes. This
//!    acceptance uses the breakpoint-exact reference scan
//!    ([`crate::binomial::worst_case_deviation_tail`]) — the supremum
//!    over `p` enumerated at the cut-off jumps, for both tail
//!    conventions — so the fast bracketing can never loosen the returned
//!    guarantee. (The seed's 64-point grid criterion is preserved in
//!    [`crate::reference`]; the exact sup dominates every grid sampling,
//!    so accepted sizes can sit a few sawtooth teeth above the seed's,
//!    never below.)
//!
//! All per-`n` state lives in an [`InversionContext`] keyed by `(ε,
//! tail)`. Probe values are stored, not just compared, so one context can
//! serve a whole *column* of `δ` values: the batch API
//! ([`crate::exact_binomial_sample_size_batch`]) walks each column in
//! decreasing `δ` and re-uses every probe and every acceptance scan
//! across the cells (the minimal `n` is antitone in `δ`, so each answer
//! also floors the next search).

use crate::binomial::{
    deviation_probability, worst_case_deviation_jump, worst_case_deviation_tail, JumpHint,
};
use crate::error::{check_positive, check_probability, BoundsError, Result};
use crate::hoeffding::hoeffding_sample_size;
use crate::numeric::bisect;
use crate::tail::Tail;
use std::cell::Cell;
use std::collections::HashMap;

/// Outcome of one memoized fast probe of `worst(n)`.
///
/// Values — not booleans — are stored so a probe computed against one
/// `δ` can be re-used to decide another.
#[derive(Debug, Clone, Copy)]
enum Probe {
    /// The full hinted search completed; the value is its supremum.
    Exact(f64),
    /// The search early-exited above some `δ`; the value is only a lower
    /// bound on the true worst case (still decisive for any `δ` below
    /// it).
    AtLeast(f64),
}

/// Shared state of one or more minimal-`n` inversions at a fixed
/// `(ε, tail)`: memoized worst-case probes, memoized reference
/// acceptance scans, and the per-family maximizing jump indices
/// threaded across probes.
pub(crate) struct InversionContext {
    eps: f64,
    tail: Tail,
    /// Per-family maximizing jump indices carried across successive
    /// probes, so each breakpoint climb starts from the previous
    /// probe's argmax of *its own* family (~2–3 tail evaluations)
    /// instead of a fresh walk-in.
    jump: JumpHint,
    probes: HashMap<u64, Probe>,
    /// Full-grid reference scans backing the sawtooth acceptance.
    reference: HashMap<u64, f64>,
    /// `(n, hint)` of the most recent reference scan, carried into the
    /// next one when it probes a nearby size. The acceptance window
    /// walks consecutive sizes and adjacent batch cells land a handful
    /// apart, so the maximizer fraction barely drifts — but a far-off
    /// warm start can settle short of the sup, so the carry is gated
    /// to `|n − last_n| ≤ 8` and the scan starts cold otherwise.
    ref_jump: Option<(u64, JumpHint)>,
}

impl InversionContext {
    /// Validates `eps` and builds an empty context.
    pub(crate) fn new(eps: f64, tail: Tail) -> Result<Self> {
        check_positive("eps", eps)?;
        if eps >= 1.0 {
            return Err(BoundsError::ToleranceExceedsRange {
                epsilon: eps,
                range: 1.0,
            });
        }
        Ok(InversionContext {
            eps,
            tail,
            jump: JumpHint::cold(),
            probes: HashMap::new(),
            reference: HashMap::new(),
            ref_jump: None,
        })
    }

    /// Does the worst-case deviation at `n` exceed `delta`?
    fn exceeds(&mut self, n: u64, delta: f64) -> bool {
        match self.probes.get(&n) {
            Some(Probe::Exact(v)) => return *v > delta,
            // A lower bound decides "exceeds" for any smaller budget; a
            // lower bound *below* delta decides nothing and falls through
            // to a fresh (early-exiting) search.
            Some(Probe::AtLeast(v)) if *v > delta => return true,
            _ => {}
        }
        let (worst, _, next) =
            worst_case_deviation_jump(n, self.eps, self.tail, self.jump, Some(delta));
        self.jump = next;
        let probe = if worst > delta {
            Probe::AtLeast(worst)
        } else {
            Probe::Exact(worst)
        };
        self.probes.insert(n, probe);
        worst > delta
    }

    /// Memoized breakpoint-exact reference scan (the acceptance
    /// criterion), warm-started from the previous scan's maximizing
    /// jump indices when that scan probed a nearby size. Within the
    /// `≤ 8` carry window the climb resumes inside the plateau sweep
    /// of its own argmax, so it reaches the same supremum as a cold
    /// [`worst_case_deviation_tail`] — bit-identity the
    /// `reference_scan_warm_carry_is_bit_identical` proptest pins.
    fn reference_worst(&mut self, n: u64) -> f64 {
        if let Some(&worst) = self.reference.get(&n) {
            return worst;
        }
        let hint = match self.ref_jump {
            Some((last_n, hint)) if n.abs_diff(last_n) <= 8 => hint,
            _ => JumpHint::cold(),
        };
        let (worst, _, next) = worst_case_deviation_jump(n, self.eps, self.tail, hint, None);
        self.ref_jump = Some((n, next));
        self.reference.insert(n, worst);
        worst
    }

    /// Smallest `n ≥ floor` whose worst case (and that of the next few
    /// sizes) stays within `delta`. `floor` is a known valid lower bound
    /// on the answer — `1` for a standalone inversion, the previous
    /// (larger-`δ`) cell's answer when walking a batch column.
    pub(crate) fn invert(&mut self, delta: f64, floor: u64) -> Result<u64> {
        check_probability("delta", delta)?;
        // Upper bracket: Hoeffding is a valid (conservative) answer.
        let hoeffding = hoeffding_sample_size(1.0, self.eps, delta, self.tail)?;
        if self.reference_worst(hoeffding) > delta {
            // Sawtooth pushed the boundary past Hoeffding (extremely
            // rare); fall back to the conservative answer.
            return Ok(hoeffding);
        }
        let floor = floor.max(1);
        if floor >= hoeffding {
            return Ok(self.accept_from(hoeffding, delta));
        }

        // Galloping bracket: start from a cheap lower bound (the exact
        // answer sits above ~0.7x Hoeffding empirically; 0.55x leaves
        // margin) and double the step until the constraint flips.
        let mut lo = floor;
        let mut hi = hoeffding;
        let start = ((hoeffding as f64 * 0.55) as u64).clamp(floor, hoeffding);
        if self.exceeds(start, delta) {
            lo = start + 1;
            let mut step = (hoeffding / 64).max(16);
            let mut at = start;
            loop {
                let next = at.saturating_add(step).min(hoeffding);
                if next >= hoeffding {
                    break;
                }
                if self.exceeds(next, delta) {
                    lo = next + 1;
                    at = next;
                    step = step.saturating_mul(2);
                } else {
                    hi = next;
                    break;
                }
            }
        } else {
            hi = start;
        }

        // Binary search on the bracket with memoized, warm-started probes.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.exceeds(mid, delta) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(self.accept_from(lo, delta))
    }

    /// Patch the sawtooth: step forward from `from` until a run of
    /// consecutive sizes all satisfy the constraint (so slightly larger
    /// testsets remain valid). Acceptance uses the breakpoint-exact
    /// reference scan, memoized because consecutive windows — and
    /// adjacent batch cells — overlap.
    fn accept_from(&mut self, from: u64, delta: f64) -> u64 {
        let mut n = from;
        'outer: loop {
            for offset in 0..8u64 {
                if self.reference_worst(n + offset) > delta {
                    n += offset + 1;
                    continue 'outer;
                }
            }
            return n;
        }
    }
}

/// Smallest sample size `n` such that the *exact* binomial deviation
/// probability is at most `delta` for every possible true mean `p`.
///
/// Always at most the Hoeffding sample size (which caps the bracket of
/// the search); typically 10–30 % smaller.
///
/// The worst-case probability is not perfectly monotone in `n` (integer
/// cut-offs create a sawtooth), so after the bracketed binary search the
/// result is patched by a short linear scan to the first `n` whose *next
/// few* neighbours also satisfy the constraint — the patch re-checks with
/// the breakpoint-exact reference scan, so the warm-started fast probes
/// only ever decide *where to look*, never what to accept.
///
/// Inverting a whole `(ε, δ)` table? Use
/// [`crate::exact_binomial_sample_size_batch`], which shares the search
/// state across cells and runs columns in parallel.
///
/// # Errors
///
/// Returns an error for invalid `eps`/`delta` or if the search fails to
/// bracket (cannot happen while Hoeffding itself is finite).
///
/// # Examples
///
/// ```
/// use easeml_bounds::{exact_binomial_sample_size, hoeffding_sample_size, Tail};
///
/// # fn main() -> Result<(), easeml_bounds::BoundsError> {
/// let exact = exact_binomial_sample_size(0.05, 0.001, Tail::TwoSided)?;
/// let hoeff = hoeffding_sample_size(1.0, 0.05, 0.001, Tail::TwoSided)?;
/// assert!(exact < hoeff);
/// # Ok(())
/// # }
/// ```
pub fn exact_binomial_sample_size(eps: f64, delta: f64, tail: Tail) -> Result<u64> {
    InversionContext::new(eps, tail)?.invert(delta, 1)
}

/// Exact Clopper–Pearson style confidence half-width: smallest `ε` such
/// that `n` samples give `Pr[|p̂ − p| > ε] ≤ δ` for every `p`.
///
/// This is the exact counterpart of [`crate::hoeffding_epsilon`].
///
/// # Errors
///
/// Returns an error for a zero sample size or invalid `delta`.
pub fn exact_binomial_epsilon(n: u64, delta: f64, tail: Tail) -> Result<f64> {
    check_probability("delta", delta)?;
    if n == 0 {
        return Err(BoundsError::ZeroSampleSize);
    }
    // worst(eps) decreases in eps; find the crossing with delta. The
    // maximizing jump indices move slowly with eps (n is fixed), so
    // each bisection iteration warm-starts each family's climb from the
    // previous iteration's argmax.
    let hint = Cell::new(JumpHint::cold());
    let eps = bisect(
        |e| {
            let (worst, _, next) = worst_case_deviation_jump(n, e, tail, hint.get(), None);
            hint.set(next);
            worst - delta
        },
        1e-9,
        1.0 - 1e-9,
        1e-9,
        200,
    )?;
    // Round outward so the returned tolerance is guaranteed valid, and
    // certify with the breakpoint-exact reference scan (the warm-started
    // probe inside the bisection can early-exit on a lower bound, so the
    // crossing it finds can sit marginally below the true one; the
    // doubling nudge terminates in at most ~60 scans and almost always
    // passes on the first).
    let mut out = (eps + 2e-9).min(1.0);
    let mut bump = 2e-9;
    while out < 1.0 && worst_case_deviation_tail(n, out, tail) > delta {
        out = (out + bump).min(1.0);
        bump *= 2.0;
    }
    Ok(out)
}

/// Exact deviation probability for a *known* true mean — used by the
/// Monte-Carlo validation harness to compare empirical quantiles with the
/// analytic prediction.
pub fn exact_deviation_at(n: u64, p: f64, eps: f64) -> f64 {
    deviation_probability(n, p, eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::worst_case_deviation;

    #[test]
    fn exact_beats_hoeffding() {
        for &(eps, delta) in &[(0.1, 0.01), (0.05, 0.001), (0.05, 0.0001)] {
            let exact = exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
            let hoeff = hoeffding_sample_size(1.0, eps, delta, Tail::TwoSided).unwrap();
            assert!(
                exact <= hoeff,
                "eps={eps} delta={delta}: {exact} vs {hoeff}"
            );
            // Tight bounds save a visible margin.
            assert!(
                (exact as f64) < (hoeff as f64) * 0.95,
                "eps={eps} delta={delta}: {exact} vs {hoeff}"
            );
        }
    }

    #[test]
    fn exact_answer_is_actually_valid() {
        let eps = 0.1;
        let delta = 0.01;
        let n = exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
        assert!(worst_case_deviation(n, eps) <= delta * 1.0001);
    }

    #[test]
    fn exact_answer_is_minimal_up_to_sawtooth() {
        let eps = 0.1;
        let delta = 0.01;
        let n = exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
        // A clearly smaller testset must violate the constraint.
        assert!(worst_case_deviation(n / 2, eps) > delta);
    }

    #[test]
    fn answers_are_tight_not_just_valid() {
        // The galloping bracket and warm-started probes must not drift
        // the result upward: a modestly smaller n must already violate
        // the constraint (checked against the exact worst case).
        for &(eps, delta) in &[(0.1, 0.01), (0.05, 0.01), (0.08, 0.001)] {
            let n = exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
            let shrunk = (n as f64 * 0.97) as u64;
            assert!(
                worst_case_deviation(shrunk, eps) > delta,
                "eps={eps} delta={delta}: n={n} is not tight (n*0.97 still valid)"
            );
        }
    }

    #[test]
    fn one_sided_needs_fewer_samples() {
        let one = exact_binomial_sample_size(0.1, 0.01, Tail::OneSided).unwrap();
        let two = exact_binomial_sample_size(0.1, 0.01, Tail::TwoSided).unwrap();
        assert!(one <= two);
    }

    #[test]
    fn one_sided_answer_is_valid_and_tight() {
        let eps = 0.07;
        let delta = 0.005;
        let n = exact_binomial_sample_size(eps, delta, Tail::OneSided).unwrap();
        // Validity is breakpoint-exact: the acceptance scan enumerates
        // cut-off jumps instead of a grid.
        assert!(worst_case_deviation_tail(n, eps, Tail::OneSided) <= delta);
        assert!(worst_case_deviation_tail(n / 2, eps, Tail::OneSided) > delta);
    }

    #[test]
    fn epsilon_inverts_sample_size() {
        let n = exact_binomial_sample_size(0.08, 0.01, Tail::TwoSided).unwrap();
        let eps = exact_binomial_epsilon(n, 0.01, Tail::TwoSided).unwrap();
        assert!(eps <= 0.08 + 5e-3, "eps = {eps}");
        assert!(eps >= 0.04, "eps = {eps}");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(exact_binomial_sample_size(0.0, 0.01, Tail::TwoSided).is_err());
        assert!(exact_binomial_sample_size(1.0, 0.01, Tail::TwoSided).is_err());
        assert!(exact_binomial_sample_size(0.1, 0.0, Tail::TwoSided).is_err());
        assert!(exact_binomial_epsilon(0, 0.01, Tail::TwoSided).is_err());
    }

    /// One context serving a falling-δ column must agree with fresh
    /// standalone inversions cell by cell.
    #[test]
    fn shared_context_matches_standalone_inversions() {
        for tail in [Tail::TwoSided, Tail::OneSided] {
            let eps = 0.06;
            let mut ctx = InversionContext::new(eps, tail).unwrap();
            let mut floor = 1;
            for delta in [0.05, 0.01, 0.001, 0.0001] {
                let shared = ctx.invert(delta, floor).unwrap();
                let standalone = exact_binomial_sample_size(eps, delta, tail).unwrap();
                assert_eq!(
                    shared, standalone,
                    "{tail} delta={delta}: shared {shared} vs standalone {standalone}"
                );
                floor = shared;
            }
        }
    }
}

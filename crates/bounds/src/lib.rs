//! Concentration inequalities and sample-size bounds for statistically
//! rigorous testing of machine-learning models.
//!
//! This crate is the mathematical substrate of the
//! [ease.ml/ci](https://arxiv.org/abs/1903.00278) reproduction. It answers
//! one question in several increasingly sharp ways: *how many i.i.d. test
//! samples are needed to estimate a statistic to tolerance `ε` with failure
//! probability at most `δ`?*
//!
//! | Bound | When it applies | Module |
//! |---|---|---|
//! | Hoeffding | any bounded variable — the paper's baseline (§3) | [`hoeffding_sample_size`] |
//! | Bennett | per-sample second moment bounded by `p` (§4.1) | [`bennett_sample_size`] |
//! | Bernstein | same, closed-form but slightly looser | [`bernstein_sample_size`] |
//! | Exact binomial | Bernoulli means, numerically tight (§4.3) | [`exact_binomial_sample_size`] |
//! | McDiarmid | bounded-difference statistics such as F1 (§2.2 ext.) | [`mcdiarmid_sample_size`] |
//!
//! Adaptivity accounting ([`Adaptivity`]) converts a whole-process failure
//! budget into the per-test budget demanded by the interaction model
//! (`δ/H` non-adaptive, `δ/2^H` fully adaptive, `δ/H` hybrid), and the
//! [`union`] module splits budgets across compound conditions. Everything
//! can run in log space so that `δ/2^H` never underflows.
//!
//! # Performance architecture
//!
//! The closed-form bounds are nanosecond-scale; the exact binomial
//! inversion is the crate's one genuinely expensive computation, and it
//! sits on the serving path of every estimator query that opts into §4.3
//! tightness. Three layers keep it fast:
//!
//! 1. **Shared log-factorial table** ([`numeric::ln_factorial`]): a
//!    thread-safe, lazily grown table of `ln k!` turns each binomial pmf
//!    evaluation into three table loads instead of three Lanczos
//!    `ln_gamma` evaluations. The table doubles on demand up to
//!    [`numeric::LN_FACTORIAL_TABLE_CAP`] and serves all threads behind a
//!    read-mostly `RwLock`.
//! 2. **Ratio-recurrence tails** ([`binomial`]): a tail evaluation
//!    computes the boundary pmf once and extends it in *linear* space via
//!    `pmf(k+1)/pmf(k) = (n−k)/(k+1)·p/(1−p)` — one multiply-add per term.
//!    Sums always run down the monotone side of the mode (straddling
//!    boundaries go through the complement), so nothing overflows and a
//!    tail costs `O(√n)` flops.
//! 3. **Warm-started worst-case search** ([`exact_binomial_sample_size`]):
//!    the minimal-`n` search brackets with a galloping scan from a cheap
//!    lower bound (~0.7× Hoeffding empirically), probes `worst(n)` with a
//!    hill-climb that warm-starts from the previous probe's maximizer
//!    `p*` and exits early once `δ` is exceeded, and memoizes every
//!    probe. Final acceptance re-checks candidates with the
//!    breakpoint-exact reference scan, so the fast probes only decide
//!    *where to look*, never what to accept.
//!
//! Measured on the paper's `(ε = 0.05, δ = 0.001)` two-sided inversion,
//! this stack is ~100× faster than the preserved seed implementation
//! ([`reference`]); see `results/BENCH_bounds.json` for the tracked
//! trajectory. One layer up, `easeml-ci-core`'s `BoundsCache` memoizes
//! whole inversions across commits and clauses, so steady-state serving
//! degenerates to a sub-microsecond map lookup.
//!
//! Two further layers serve table-shaped traffic:
//!
//! 4. **Breakpoint-exact worst-case scans**
//!    ([`binomial::worst_case_deviation_one_sided_exact`],
//!    [`binomial::worst_case_deviation_two_sided_exact`]): the worst case
//!    over `p` is attained in the limit at the cut-off jumps
//!    `p_j = j/n ∓ ε`, so a hill-climb over the *jump index* — one
//!    breakpoint family one-sided, both tails' families two-sided —
//!    replaces the grid scan entirely, cheaper and exact rather than
//!    grid-resolution approximate.
//! 5. **Batched table inversion** ([`exact_binomial_sample_size_batch`]):
//!    a Figure-2-style `(ε, δ)` grid walks each `ε`-column in decreasing
//!    `δ` through one shared search context (probe and acceptance memos,
//!    floored brackets) and fans independent columns out across the
//!    vendored `easeml_par` thread pool, bit-identical to per-cell
//!    inversion at any thread count.
//!
//! # Examples
//!
//! The paper's §3.3 worked example — `n > 0.8 ± 0.05` at reliability
//! 0.9999 over 32 fully-adaptive steps needs 6 279 samples:
//!
//! ```
//! use easeml_bounds::{hoeffding_sample_size_from_ln_delta, Adaptivity, Tail};
//!
//! # fn main() -> Result<(), easeml_bounds::BoundsError> {
//! let ln_delta = Adaptivity::Full.ln_effective_delta(0.0001, 32)?;
//! let n = hoeffding_sample_size_from_ln_delta(1.0, 0.05, ln_delta, Tail::OneSided)?;
//! assert_eq!(n, 6_279);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// `!(x < 0.0)`-style guards intentionally reject NaN along with the
// out-of-domain sign; `partial_cmp` rewrites would obscure that.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Lanczos coefficients are quoted at full published precision.
#![allow(clippy::excessive_precision)]

mod adaptivity;
mod batch;
mod bennett;
mod bernstein;
pub mod binomial;
mod error;
mod exact;
mod hoeffding;
mod mcdiarmid;
pub mod numeric;
pub mod reference;
mod tail;
mod twosided;
mod union;

pub use adaptivity::{trivial_strategy_total, Adaptivity, ParseAdaptivityError};
pub use batch::{
    exact_binomial_sample_size_batch, exact_binomial_sample_size_batch_with_pool,
    exact_binomial_sample_size_cells, exact_binomial_sample_size_cells_with_pool,
};
pub use bennett::{
    active_labels_per_commit, bennett_delta, bennett_epsilon, bennett_epsilon_from_ln_delta,
    bennett_h, bennett_h_inv, bennett_h_prime, bennett_sample_size,
    bennett_sample_size_from_ln_delta,
};
pub use bernstein::{
    bernstein_epsilon, bernstein_sample_size, bernstein_sample_size_from_ln_delta,
};
pub use error::{BoundsError, Result};
pub use exact::{exact_binomial_epsilon, exact_binomial_sample_size, exact_deviation_at};
pub use hoeffding::{
    hoeffding_delta, hoeffding_epsilon, hoeffding_epsilon_from_ln_delta, hoeffding_sample_size,
    hoeffding_sample_size_from_ln_delta,
};
pub use mcdiarmid::{
    mcdiarmid_epsilon, mcdiarmid_sample_size, mcdiarmid_sample_size_from_ln_delta,
};
pub use tail::Tail;
pub use union::{
    split_delta_evenly, split_delta_weighted, split_epsilon, split_ln_delta_evenly,
    split_ln_delta_weighted,
};

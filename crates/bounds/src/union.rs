//! Union-bound budget splitting for compound conditions (§3.1).
//!
//! Estimating a clause like `n − o > c ± ε` requires estimating both `n`
//! and `o`; a conjunction `C₁ ∧ … ∧ C_k` requires every clause to hold.
//! Both splits consume the failure budget `δ` via the union bound. This
//! module provides the splitting strategies the estimator composes.

use crate::error::{check_probability, BoundsError, Result};

/// Split a failure budget `δ` evenly over `parts` events (`δ/k` each),
/// returned in log space.
///
/// # Errors
///
/// Returns an error if `delta` is invalid or `parts` is zero.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), easeml_bounds::BoundsError> {
/// let parts = easeml_bounds::split_delta_evenly(0.01, 4)?;
/// assert_eq!(parts.len(), 4);
/// assert!((parts[0].exp() - 0.0025).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn split_delta_evenly(delta: f64, parts: usize) -> Result<Vec<f64>> {
    check_probability("delta", delta)?;
    if parts == 0 {
        return Err(BoundsError::ZeroSampleSize);
    }
    let ln_each = delta.ln() - (parts as f64).ln();
    Ok(vec![ln_each; parts])
}

/// Split `ln δ` evenly over `parts` events in log space (never underflows).
#[must_use]
pub fn split_ln_delta_evenly(ln_delta: f64, parts: usize) -> Vec<f64> {
    let parts = parts.max(1);
    vec![ln_delta - (parts as f64).ln(); parts]
}

/// Split a failure budget according to non-negative weights `w` (a weight of
/// 2 receives twice the budget of a weight of 1), in log space.
///
/// Weighted splits let the estimator spend more budget on the clause that
/// dominates the sample size, shrinking the max.
///
/// # Errors
///
/// Returns an error if `delta` is invalid, `weights` is empty, any weight is
/// negative/non-finite, or all weights are zero.
pub fn split_delta_weighted(delta: f64, weights: &[f64]) -> Result<Vec<f64>> {
    check_probability("delta", delta)?;
    split_ln_delta_weighted(delta.ln(), weights)
}

/// Log-space variant of [`split_delta_weighted`].
///
/// # Errors
///
/// Same conditions as [`split_delta_weighted`] (minus the `delta` check).
pub fn split_ln_delta_weighted(ln_delta: f64, weights: &[f64]) -> Result<Vec<f64>> {
    if weights.is_empty() {
        return Err(BoundsError::ZeroSampleSize);
    }
    let mut total = 0.0;
    for &w in weights {
        if !w.is_finite() || w < 0.0 {
            return Err(BoundsError::NotPositive {
                name: "weight",
                value: w,
            });
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(BoundsError::NotPositive {
            name: "weight_sum",
            value: total,
        });
    }
    Ok(weights
        .iter()
        .map(|&w| {
            if w == 0.0 {
                // Zero weight: that event receives (essentially) no budget;
                // callers treat -inf as "must hold surely" and will reject.
                f64::NEG_INFINITY
            } else {
                ln_delta + (w / total).ln()
            }
        })
        .collect())
}

/// Split an error tolerance `ε` into `parts` positive tolerances summing to
/// `ε` according to `fractions` (which must sum to 1).
///
/// # Errors
///
/// Returns an error if any fraction is outside `(0, 1)` or the fractions do
/// not sum to 1 within floating-point tolerance.
pub fn split_epsilon(eps: f64, fractions: &[f64]) -> Result<Vec<f64>> {
    if !eps.is_finite() || eps <= 0.0 {
        return Err(BoundsError::NotPositive {
            name: "eps",
            value: eps,
        });
    }
    let sum: f64 = fractions.iter().sum();
    if fractions.is_empty() || (sum - 1.0).abs() > 1e-9 {
        return Err(BoundsError::NotPositive {
            name: "fraction_sum",
            value: sum,
        });
    }
    for &f in fractions {
        if !(f > 0.0 && f < 1.0 + 1e-12) {
            return Err(BoundsError::InvalidProbability {
                name: "fraction",
                value: f,
            });
        }
    }
    Ok(fractions.iter().map(|&f| f * eps).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_sums_to_delta() {
        let parts = split_delta_evenly(0.01, 5).unwrap();
        let total: f64 = parts.iter().map(|l| l.exp()).sum();
        assert!((total - 0.01).abs() < 1e-12);
    }

    #[test]
    fn weighted_split_sums_to_delta() {
        let parts = split_delta_weighted(0.02, &[1.0, 2.0, 1.0]).unwrap();
        let total: f64 = parts.iter().map(|l| l.exp()).sum();
        assert!((total - 0.02).abs() < 1e-12);
        assert!((parts[1].exp() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn weighted_split_zero_weight() {
        let parts = split_delta_weighted(0.02, &[1.0, 0.0]).unwrap();
        assert_eq!(parts[1], f64::NEG_INFINITY);
        assert!((parts[0].exp() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn weighted_split_rejects_bad_weights() {
        assert!(split_delta_weighted(0.02, &[]).is_err());
        assert!(split_delta_weighted(0.02, &[-1.0, 2.0]).is_err());
        assert!(split_delta_weighted(0.02, &[0.0, 0.0]).is_err());
        assert!(split_delta_weighted(0.02, &[f64::NAN]).is_err());
    }

    #[test]
    fn log_space_split_never_underflows() {
        let ln_delta = -30_000.0; // δ = e^-30000 underflows linear space
        let parts = split_ln_delta_evenly(ln_delta, 4);
        assert!(parts.iter().all(|p| p.is_finite()));
        assert!((parts[0] - (ln_delta - 4f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn epsilon_split() {
        let eps = split_epsilon(0.01, &[0.5, 0.5]).unwrap();
        assert_eq!(eps, vec![0.005, 0.005]);
        let eps = split_epsilon(0.01, &[0.25, 0.75]).unwrap();
        assert!((eps[0] - 0.0025).abs() < 1e-15);
        assert!((eps[1] - 0.0075).abs() < 1e-15);
        assert!(split_epsilon(0.01, &[0.5, 0.4]).is_err());
        assert!(split_epsilon(0.0, &[1.0]).is_err());
        assert!(split_epsilon(0.01, &[]).is_err());
    }
}

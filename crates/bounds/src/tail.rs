//! Tail sidedness shared by all concentration bounds.

use std::fmt;

/// Whether a deviation bound controls one tail or both tails of the
/// estimator's distribution.
///
/// The ease.ml/ci paper states its sample-size estimator in the *one-sided*
/// form `n = -r² ln δ / (2ε²)` (Figure 2 and the §3.3 worked examples are
/// reproduced with [`Tail::OneSided`]), while the Bennett-based optimized
/// estimators of §4 carry the two-sided factor `2` in front of the
/// exponential (the Figure 5 sample sizes 4 713 and 5 204 are reproduced
/// with [`Tail::TwoSided`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tail {
    /// Control a single tail: `Pr[estimate - truth > ε] ≤ δ`.
    OneSided,
    /// Control both tails: `Pr[|estimate - truth| > ε] ≤ δ`.
    #[default]
    TwoSided,
}

impl Tail {
    /// Multiplicity factor in front of the exponential term: 1 or 2.
    #[must_use]
    pub fn factor(self) -> f64 {
        match self {
            Tail::OneSided => 1.0,
            Tail::TwoSided => 2.0,
        }
    }

    /// `ln` of [`Tail::factor`], used by log-space computations.
    #[must_use]
    pub fn ln_factor(self) -> f64 {
        match self {
            Tail::OneSided => 0.0,
            Tail::TwoSided => std::f64::consts::LN_2,
        }
    }

    /// Stable single-byte wire code for on-disk formats (e.g. the
    /// persisted `BoundsCache`). Codes are part of the serialization
    /// contract: never renumber, only append.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Tail::OneSided => 1,
            Tail::TwoSided => 2,
        }
    }

    /// Inverse of [`Tail::code`]; `None` for unknown codes (a corrupt or
    /// future-version file).
    #[must_use]
    pub fn from_code(code: u8) -> Option<Tail> {
        match code {
            1 => Some(Tail::OneSided),
            2 => Some(Tail::TwoSided),
            _ => None,
        }
    }
}

impl fmt::Display for Tail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tail::OneSided => write!(f, "one-sided"),
            Tail::TwoSided => write!(f, "two-sided"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors() {
        assert_eq!(Tail::OneSided.factor(), 1.0);
        assert_eq!(Tail::TwoSided.factor(), 2.0);
        assert_eq!(Tail::OneSided.ln_factor(), 0.0);
        assert!((Tail::TwoSided.ln_factor() - 2f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn default_is_two_sided() {
        assert_eq!(Tail::default(), Tail::TwoSided);
    }

    #[test]
    fn wire_codes_round_trip() {
        for tail in [Tail::OneSided, Tail::TwoSided] {
            assert_eq!(Tail::from_code(tail.code()), Some(tail));
        }
        assert_eq!(Tail::from_code(0), None);
        assert_eq!(Tail::from_code(3), None);
        assert_eq!(Tail::from_code(255), None);
    }

    #[test]
    fn display() {
        assert_eq!(Tail::OneSided.to_string(), "one-sided");
        assert_eq!(Tail::TwoSided.to_string(), "two-sided");
    }
}

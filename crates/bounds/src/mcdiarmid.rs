//! McDiarmid's bounded-differences inequality.
//!
//! The paper's §2.2 lists "beyond accuracy" metrics (F1, AUC) as an
//! extension enabled by replacing Bennett's inequality with McDiarmid's
//! plus the metric's sensitivity. This module provides that machinery; the
//! F1 sensitivity analysis lives in `easeml-ci-core::extensions`.
//!
//! For a function `f(X₁…X_n)` such that changing any single argument moves
//! `f` by at most `cᵢ`,
//!
//! ```text
//! Pr[ |f − E f| > ε ] ≤ 2 exp( −2ε² / Σᵢ cᵢ² )
//! ```
//!
//! For statistics whose per-sample sensitivity scales as `β/n` (accuracy has
//! `β = 1`, F1-score has `β ≤ 2/π_+` where `π_+` is the positive-class
//! rate), `Σᵢ cᵢ² = β²/n` and the sample size for an `(ε, δ)` estimate is
//! `n = β² (ln factor − ln δ) / (2ε²)` — Hoeffding with an inflated range.

use crate::error::{check_positive, check_probability, BoundsError, Result};
use crate::numeric::ceil_to_sample_size;
use crate::tail::Tail;

/// Sample size for an `(ε, δ)` estimate of a statistic whose per-sample
/// sensitivity is `beta / n`.
///
/// `beta = 1` recovers the Hoeffding estimate for a mean of `[0, 1]`
/// variables.
///
/// # Errors
///
/// Returns an error for non-positive `beta`/`eps` or invalid `delta`.
///
/// # Examples
///
/// ```
/// use easeml_bounds::{mcdiarmid_sample_size, hoeffding_sample_size, Tail};
///
/// # fn main() -> Result<(), easeml_bounds::BoundsError> {
/// let acc = mcdiarmid_sample_size(1.0, 0.05, 0.001, Tail::TwoSided)?;
/// let hoeff = hoeffding_sample_size(1.0, 0.05, 0.001, Tail::TwoSided)?;
/// assert_eq!(acc, hoeff);
/// // An F1-score with positive rate 0.5 needs β = 4 ⇒ 16× the samples.
/// let f1 = mcdiarmid_sample_size(4.0, 0.05, 0.001, Tail::TwoSided)?;
/// assert!(f1 >= 15 * hoeff && f1 <= 17 * hoeff);
/// # Ok(())
/// # }
/// ```
pub fn mcdiarmid_sample_size(beta: f64, eps: f64, delta: f64, tail: Tail) -> Result<u64> {
    check_probability("delta", delta)?;
    mcdiarmid_sample_size_from_ln_delta(beta, eps, delta.ln(), tail)
}

/// Log-space variant of [`mcdiarmid_sample_size`] taking `ln δ` directly.
///
/// # Errors
///
/// Same conditions as [`mcdiarmid_sample_size`].
pub fn mcdiarmid_sample_size_from_ln_delta(
    beta: f64,
    eps: f64,
    ln_delta: f64,
    tail: Tail,
) -> Result<u64> {
    check_positive("beta", beta)?;
    check_positive("eps", eps)?;
    if !(ln_delta < 0.0) {
        return Err(BoundsError::InvalidProbability {
            name: "delta",
            value: ln_delta.exp(),
        });
    }
    let raw = beta * beta * (tail.ln_factor() - ln_delta) / (2.0 * eps * eps);
    ceil_to_sample_size(raw)
}

/// Error tolerance achieved by `n` samples for a statistic with sensitivity
/// scale `beta`.
///
/// # Errors
///
/// Returns an error for a zero sample size or invalid parameters.
pub fn mcdiarmid_epsilon(beta: f64, n: u64, delta: f64, tail: Tail) -> Result<f64> {
    check_positive("beta", beta)?;
    check_probability("delta", delta)?;
    if n == 0 {
        return Err(BoundsError::ZeroSampleSize);
    }
    Ok(beta * ((tail.ln_factor() - delta.ln()) / (2.0 * n as f64)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hoeffding::hoeffding_sample_size;

    #[test]
    fn beta_one_recovers_hoeffding() {
        for &(eps, delta) in &[(0.1, 0.01), (0.01, 1e-4)] {
            assert_eq!(
                mcdiarmid_sample_size(1.0, eps, delta, Tail::TwoSided).unwrap(),
                hoeffding_sample_size(1.0, eps, delta, Tail::TwoSided).unwrap()
            );
        }
    }

    #[test]
    fn quadratic_in_beta() {
        let n1 = mcdiarmid_sample_size(1.0, 0.05, 0.001, Tail::TwoSided).unwrap();
        let n3 = mcdiarmid_sample_size(3.0, 0.05, 0.001, Tail::TwoSided).unwrap();
        let ratio = n3 as f64 / n1 as f64;
        assert!((ratio - 9.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn epsilon_inverts() {
        let n = mcdiarmid_sample_size(2.0, 0.04, 0.001, Tail::TwoSided).unwrap();
        let eps = mcdiarmid_epsilon(2.0, n, 0.001, Tail::TwoSided).unwrap();
        assert!(eps <= 0.04 + 1e-12);
        assert!(mcdiarmid_epsilon(2.0, n - 1, 0.001, Tail::TwoSided).unwrap() > 0.04 - 1e-5);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(mcdiarmid_sample_size(0.0, 0.1, 0.01, Tail::TwoSided).is_err());
        assert!(mcdiarmid_sample_size(1.0, 0.0, 0.01, Tail::TwoSided).is_err());
        assert!(mcdiarmid_sample_size(1.0, 0.1, 0.0, Tail::TwoSided).is_err());
        assert!(mcdiarmid_epsilon(1.0, 0, 0.01, Tail::TwoSided).is_err());
    }
}

//! Exact binomial distribution computations in log space.
//!
//! These underpin the "tight numerical bounds" of §4.3: instead of a
//! closed-form concentration inequality, compute the exact probability that
//! a `Binomial(n, p)/n` estimate deviates from `p` by more than `ε`, and
//! search for the smallest `n` that controls the worst case over `p`.
//!
//! # Hot-path design
//!
//! A tail evaluation computes the *boundary* pmf once (three log-factorial
//! table loads via [`crate::numeric::ln_choose`]) and extends it with the
//! pmf ratio recurrence `pmf(k+1)/pmf(k) = (n−k)/(k+1) · p/(1−p)` in
//! **linear** space relative to the boundary term — one multiply-add per
//! term instead of the `ln`/`exp` pair a log-space accumulation needs.
//! Sums always run down the monotone side of the mode (terms strictly
//! decreasing, so nothing overflows) and stop once a term can no longer
//! move the double-precision total; a tail costs `O(√n)` multiply-adds.
//! Tails that straddle the mode are evaluated through the complement,
//! which is well-conditioned exactly when the direct sum is not.
//!
//! The worst case over the unknown true mean `p` is *breakpoint-exact*
//! for both tail conventions: the supremum is attained in the limit at
//! the sawtooth breakpoints `p_j = j/n ∓ ε` where the integer cut-offs
//! jump, so [`worst_case_deviation_tail`] (the reference used by tests
//! and final acceptance) and [`worst_case_deviation_hinted`] (the same
//! scan warm-started from the previous maximizer `p*`, with early exit,
//! used by the sample-size search in
//! [`crate::exact_binomial_sample_size`]) hill-climb over jump indices —
//! one breakpoint family for the one-sided case, both tails' families
//! for the two-sided case (see [`crate::twosided`]).

use crate::numeric::{ln_choose, log1m_exp, log_add_exp};
use crate::tail::Tail;

pub use crate::twosided::worst_case_deviation_two_sided_exact;

/// Natural log of the binomial probability mass `Pr[X = k]` for
/// `X ~ Binomial(n, p)`.
///
/// Handles the degenerate cases `p = 0` and `p = 1` exactly.
///
/// # Examples
///
/// ```
/// let ln_p = easeml_bounds::binomial::ln_pmf(10, 0.5, 5);
/// assert!((ln_p.exp() - 0.24609375).abs() < 1e-12);
/// ```
pub fn ln_pmf(n: u64, p: f64, k: u64) -> f64 {
    debug_assert!(k <= n);
    debug_assert!((0.0..=1.0).contains(&p));
    if p == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    // (-p).ln_1p() computes ln(1-p) without the cancellation that
    // (1.0 - p).ln() suffers for tiny p.
    ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (-p).ln_1p()
}

/// The mode `floor((n+1)p)` of `Binomial(n, p)`, clamped to `[0, n]`.
///
/// Used to pick the monotone side for tail summation: pmf terms are
/// non-increasing walking away from the mode in either direction.
fn mode(n: u64, p: f64) -> u64 {
    (((n + 1) as f64 * p) as u64).min(n)
}

/// Upper tail `Pr[X >= k]` summed directly downward from the boundary.
///
/// Requires `1 <= k <= n`, `0 < p < 1`, and `k` at or above the mode so
/// the term sequence is non-increasing (no overflow in the linear-space
/// relative sum).
fn ln_upper_tail_direct(n: u64, p: f64, k: u64) -> f64 {
    let ln_base = ln_pmf(n, p, k);
    let odds = p / (1.0 - p);
    let mut term = 1.0f64; // relative to the boundary pmf
    let mut sum = 1.0f64;
    let mut i = k;
    while i < n {
        term *= (n - i) as f64 / (i + 1) as f64 * odds;
        sum += term;
        // Past the mode the ratio is < 1 and decreasing: geometric decay.
        if term <= sum * 1e-17 {
            break;
        }
        i += 1;
    }
    (ln_base + sum.ln()).min(0.0)
}

/// Lower tail `Pr[X <= k]` summed directly downward from the boundary.
///
/// Requires `k < n`, `0 < p < 1`, and `k` at or below the mode.
fn ln_lower_tail_direct(n: u64, p: f64, k: u64) -> f64 {
    let ln_base = ln_pmf(n, p, k);
    let inv_odds = (1.0 - p) / p;
    let mut term = 1.0f64;
    let mut sum = 1.0f64;
    let mut i = k;
    while i > 0 {
        term *= i as f64 / (n - i + 1) as f64 * inv_odds;
        sum += term;
        if term <= sum * 1e-17 {
            break;
        }
        i -= 1;
    }
    (ln_base + sum.ln()).min(0.0)
}

/// Log of the upper tail `Pr[X >= k]` for `X ~ Binomial(n, p)`.
///
/// Boundaries at or above the mode sum directly; boundaries below the
/// mode (where the direct sum would grow through the mode) evaluate the
/// complement `1 − Pr[X <= k−1]`, which is well-conditioned there because
/// the result is large.
pub fn ln_upper_tail(n: u64, p: f64, k: u64) -> f64 {
    if k == 0 {
        return 0.0; // Pr[X >= 0] = 1
    }
    if k > n {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY; // k >= 1 but X = 0 a.s.
    }
    if p == 1.0 {
        return 0.0; // X = n >= k a.s.
    }
    if k > mode(n, p) {
        ln_upper_tail_direct(n, p, k)
    } else {
        // k >= 1 here, and k <= mode implies mode >= 1, so k-1 is a valid
        // lower-tail boundary strictly below the mode.
        log1m_exp(ln_lower_tail_direct(n, p, k - 1).min(0.0))
    }
}

/// Log of the lower tail `Pr[X <= k]` for `X ~ Binomial(n, p)`.
pub fn ln_lower_tail(n: u64, p: f64, k: u64) -> f64 {
    if k >= n {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0; // X = 0 a.s.
    }
    if p == 1.0 {
        return f64::NEG_INFINITY; // X = n > k a.s.
    }
    if k < mode(n, p) {
        ln_lower_tail_direct(n, p, k)
    } else {
        // k >= mode and k < n, so k+1 is a valid upper boundary above the
        // mode.
        log1m_exp(ln_upper_tail_direct(n, p, k + 1).min(0.0))
    }
}

/// Relative slack under which `n·(p±ε)` is snapped to the nearest integer
/// before the tail cut-off is taken.
///
/// The products routinely land within a few ulp of an exact integer when
/// `p` and `ε` are "nice" fractions of `n`; without the snap, `floor`/
/// `ceil` then pick the cut-off on the wrong side of the strict
/// inequality and the deviation probability jumps by one whole pmf term.
///
/// The window must stay at rounding-error scale: computing `n·(p±ε)`
/// accrues at most a few ulp of relative error (~1e-15), so 1e-12 covers
/// every genuinely-integer product with three orders of magnitude to
/// spare, while a product that is *mathematically* non-integer by more
/// than that is left alone — snapping it would wrongly exclude a boundary
/// outcome that really does deviate and understate the tail.
const CUTOFF_SNAP: f64 = 1e-12;

/// Smallest integer `k` with `k > x`, treating values within
/// [`CUTOFF_SNAP`] (relative) of an integer as exactly that integer.
pub(crate) fn strict_upper_cutoff(x: f64) -> i128 {
    let r = x.round();
    if (x - r).abs() <= CUTOFF_SNAP * r.abs().max(1.0) {
        r as i128 + 1
    } else {
        x.floor() as i128 + 1
    }
}

/// Largest integer `k` with `k < x`, with the same integer snapping.
pub(crate) fn strict_lower_cutoff(x: f64) -> i128 {
    let r = x.round();
    if (x - r).abs() <= CUTOFF_SNAP * r.abs().max(1.0) {
        r as i128 - 1
    } else {
        x.ceil() as i128 - 1
    }
}

/// Exact two-sided deviation probability
/// `Pr[ |X/n − p| > ε ]` for `X ~ Binomial(n, p)`.
///
/// # Examples
///
/// ```
/// // With n = 100, p = 0.5, ε = 0.1: Pr[|X/100 - 0.5| > 0.1] ≈ 0.035
/// let pr = easeml_bounds::binomial::deviation_probability(100, 0.5, 0.1);
/// assert!(pr > 0.02 && pr < 0.06);
/// ```
pub fn deviation_probability(n: u64, p: f64, eps: f64) -> f64 {
    debug_assert!(n > 0);
    debug_assert!((0.0..=1.0).contains(&p));
    debug_assert!(eps > 0.0);
    let nf = n as f64;
    // Upper: X/n > p + eps  <=>  X >= strict_upper_cutoff(n(p+eps))
    let hi_cut = strict_upper_cutoff(nf * (p + eps));
    let upper = if hi_cut > n as i128 {
        f64::NEG_INFINITY
    } else {
        ln_upper_tail(n, p, hi_cut as u64)
    };
    // Lower: X/n < p - eps  <=>  X <= strict_lower_cutoff(n(p-eps))
    let lo_cut = strict_lower_cutoff(nf * (p - eps));
    let lower = if lo_cut < 0 {
        f64::NEG_INFINITY
    } else {
        ln_lower_tail(n, p, lo_cut as u64)
    };
    log_add_exp(upper, lower).exp().min(1.0)
}

/// One-sided deviation probability `Pr[X/n − p > ε]`.
pub fn deviation_probability_one_sided(n: u64, p: f64, eps: f64) -> f64 {
    let nf = n as f64;
    let hi_cut = strict_upper_cutoff(nf * (p + eps));
    if hi_cut > n as i128 {
        0.0
    } else {
        ln_upper_tail(n, p, hi_cut as u64).exp()
    }
}

/// Worst-case (over the unknown true mean `p`) deviation probability for
/// a given `n` and `ε`, for either tail convention.
///
/// Both tails are *breakpoint-exact*: the supremum is attained in the
/// limit at the sawtooth breakpoints `p_j = j/n ∓ ε` where the integer
/// cut-offs jump, so the scan enumerates jump indices — one family for
/// the one-sided case ([`worst_case_deviation_one_sided_exact`]), both
/// tails' families for the two-sided case
/// ([`worst_case_deviation_two_sided_exact`]) — instead of sampling a
/// grid. No grid, no resolution error; the seed's 64-point grid scan is
/// preserved in [`crate::reference`].
///
/// This is the *reference* search shared by
/// [`crate::exact_binomial_sample_size`]'s final acceptance,
/// [`crate::exact_binomial_epsilon`], and the test suite; the
/// `n`-search's bracketing probes use the hinted, early-exiting
/// [`worst_case_deviation_hinted`] form of the same scans.
pub fn worst_case_deviation_tail(n: u64, eps: f64, tail: Tail) -> f64 {
    match tail {
        Tail::TwoSided => worst_case_deviation_two_sided_exact(n, eps),
        Tail::OneSided => worst_case_deviation_one_sided_exact(n, eps),
    }
}

/// Breakpoint-exact one-sided worst case: `sup_p Pr[X/n − p > ε]`.
///
/// For fixed cut-off `k`, `Pr_p[X ≥ k]` is increasing in `p`, and the
/// strict cut-off `k(p) = min{k : k > n(p+ε)}` jumps exactly at
/// `p_j = j/n − ε`. The supremum over each constant-cut interval
/// `(p_{j−1}, p_j)` is therefore its right-end limit
/// `Pr_{p_j}[X ≥ j]`, and the global supremum is the maximum of those
/// finitely many candidates — no grid, no resolution error.
///
/// The candidate envelope `j ↦ Pr_{p_j}[X ≥ j]` inherits the
/// unimodality of the continuous worst-case envelope, so the maximum is
/// found by a hill-climb over the jump index (a handful of `O(√n)` tail
/// evaluations), hardened by a ±[`JUMP_PLATEAU`] window sweep against
/// small sawtooth ripples.
pub fn worst_case_deviation_one_sided_exact(n: u64, eps: f64) -> f64 {
    worst_case_one_sided_jump(n, eps, JumpHint::cold(), None).0
}

/// Escape window for the jump-index hill-climb: after a local maximum,
/// this many indices on each side are checked before accepting it.
pub(crate) const JUMP_PLATEAU: u64 = 4;

/// Per-family warm start for the breakpoint hill-climbs, carried across
/// bracketing probes of the minimal-`n` search.
///
/// Each field is the maximizing jump index of one breakpoint family,
/// stored as the fraction `j*/n` so a hint learned at one `n` seeds the
/// climb at a nearby `n'` (the maximizer fraction drifts only slightly
/// between neighbouring sizes). A single scalar `p*` hint cannot do
/// this for the two-sided scan: whichever family *lost* at the previous
/// probe would be re-seeded from the winner's breakpoint, a start that
/// can sit many teeth off its own argmax. With per-family carry each
/// climb resumes from its own previous argmax and typically settles
/// after a couple of tail evaluations.
///
/// `None` means cold: the climb seeds from the centre `p ≈ 0.5`
/// heuristic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JumpHint {
    /// Maximizing fraction `j*/n` of the upper-tail family
    /// (`p_j = j/n − ε`) — the only family of the one-sided scan.
    pub upper: Option<f64>,
    /// Maximizing fraction `i*/n` of the lower-tail family
    /// (`p_i = i/n + ε`); two-sided scans only.
    pub lower: Option<f64>,
}

impl JumpHint {
    /// Cold start: both climbs seed from the centre `p ≈ 0.5` heuristic.
    pub fn cold() -> JumpHint {
        JumpHint::default()
    }

    /// Start index for a family's climb: the carried argmax fraction
    /// rescaled to this `n`, or the cold-start fallback `frac0`.
    pub(crate) fn start_index(carried: Option<f64>, nf: f64, frac0: f64) -> i128 {
        match carried {
            Some(frac) => (frac * nf).round() as i128,
            None => (nf * frac0).round() as i128,
        }
    }
}

/// Hinted, early-exiting form of the one-sided breakpoint scan (the
/// one-sided backend of [`worst_case_deviation_jump`]). Returns
/// `(sup, p_star, next_hint)` where `p_star` is the maximizing
/// breakpoint and `next_hint` carries the maximizing jump index for the
/// next probe's climb.
pub(crate) fn worst_case_one_sided_jump(
    n: u64,
    eps: f64,
    hint: JumpHint,
    stop_above: Option<f64>,
) -> (f64, f64, JumpHint) {
    debug_assert!(n > 0);
    debug_assert!(eps > 0.0 && eps < 1.0);
    let nf = n as f64;
    // Smallest jump index with p_j = j/n − ε > 0. When n·ε is (near-)
    // integral the snap convention puts the first positive breakpoint
    // one index higher.
    let j_min = (strict_upper_cutoff(nf * eps).max(1) as u64).min(n);
    let p_at = |j: u64| (j as f64 / nf - eps).clamp(f64::MIN_POSITIVE, 1.0);
    let start = JumpHint::start_index(hint.upper, nf, 0.5 + eps);
    let (best, best_j) = climb_envelope(j_min, n, start, JUMP_PLATEAU, stop_above, |j| {
        ln_upper_tail(n, p_at(j), j).exp()
    });
    let next = JumpHint {
        upper: Some(best_j as f64 / nf),
        lower: hint.lower,
    };
    (best, p_at(best_j), next)
}

/// Hill-climb over a sawtooth candidate envelope `value(j)` on the
/// inclusive index range `[lo, hi]`, the search shared by the one-sided
/// jump scan and both families of the two-sided one
/// ([`crate::twosided`]).
///
/// Starts from `start` (clamped into range), carries neighbour values so
/// each climb step costs one new envelope evaluation, and — because the
/// envelope is only unimodal *up to* sawtooth ripples — sweeps a
/// ±`plateau` window around every local maximum, resuming the climb from
/// any strictly better index. When `stop_above` is set, returns as soon
/// as any probe exceeds it (the result is then only a lower bound on the
/// true maximum). Returns `(best_value, best_index)`.
pub(crate) fn climb_envelope(
    lo: u64,
    hi: u64,
    start: i128,
    plateau: u64,
    stop_above: Option<f64>,
    mut value: impl FnMut(u64) -> f64,
) -> (f64, u64) {
    debug_assert!(lo <= hi);
    let mut center = start.clamp(lo as i128, hi as i128) as u64;
    let mut cur = value(center);
    let mut best = cur;
    let mut best_j = center;
    if let Some(limit) = stop_above {
        if best > limit {
            return (best, best_j);
        }
    }
    // The cell the climb just left is one of the next step's neighbours,
    // so its value is carried over instead of re-evaluated.
    let mut from: Option<(u64, f64)> = None;
    loop {
        loop {
            let mut eval = |j: u64| match from {
                Some((f, v)) if f == j => v,
                _ => value(j),
            };
            let left = if center > lo {
                eval(center - 1)
            } else {
                f64::NEG_INFINITY
            };
            let right = if center < hi {
                eval(center + 1)
            } else {
                f64::NEG_INFINITY
            };
            if left <= cur && right <= cur {
                break;
            }
            from = Some((center, cur));
            if right > left {
                center += 1;
                cur = right;
            } else {
                center -= 1;
                cur = left;
            }
            if cur > best {
                best = cur;
                best_j = center;
                if let Some(limit) = stop_above {
                    if best > limit {
                        return (best, best_j);
                    }
                }
            }
        }
        // Plateau sweep: look a little further out on both sides; resume
        // climbing from any strictly better index.
        let mut improved = None;
        for d in 2..=plateau {
            for j in [center.saturating_sub(d).max(lo), (center + d).min(hi)] {
                let v = value(j);
                if v > best {
                    best = v;
                    best_j = j;
                    improved = Some((j, v));
                    if let Some(limit) = stop_above {
                        if best > limit {
                            return (best, best_j);
                        }
                    }
                }
            }
        }
        match improved {
            Some((j, v)) => {
                center = j;
                cur = v;
                from = None;
            }
            None => return (best, best_j),
        }
    }
}

/// Two-sided worst-case deviation probability (the historical public
/// entry point; see [`worst_case_deviation_tail`]).
pub fn worst_case_deviation(n: u64, eps: f64) -> f64 {
    worst_case_deviation_tail(n, eps, Tail::TwoSided)
}

/// Breakpoint-exact worst-case search with per-family warm-started
/// jump indices.
///
/// Delegates to the jump-index hill-climbs — the one-sided single-family
/// scan ([`worst_case_deviation_one_sided_exact`]) or the two-sided
/// two-family scan ([`worst_case_deviation_two_sided_exact`]) — each
/// family seeded from its own maximizing jump index found at a nearby
/// `n` (see [`JumpHint`]). Successive `n` probes move each argmax only
/// slightly, so a warm climb typically settles after ~2–3 tail
/// evaluations instead of walking in from a cold start.
///
/// Returns `(worst, p_star, next_hint)`. When `stop_above` is set and
/// any probe exceeds it, the search returns that probe immediately —
/// the result is then only a *lower bound* on the worst case, which is
/// exactly what a `worst(n) > delta` bracketing decision needs. Without
/// `stop_above`, a cold hint reproduces [`worst_case_deviation_tail`]
/// bit for bit; a warm hint evaluates only genuine breakpoint
/// candidates, so the result is always a valid *lower bound* on the sup
/// that matches it in practice but can settle short of it from a
/// far-off start — which is why the minimal-`n` search treats warm
/// probes as steering only and *accepts* candidates exclusively via the
/// reference scan.
pub fn worst_case_deviation_jump(
    n: u64,
    eps: f64,
    tail: Tail,
    hint: JumpHint,
    stop_above: Option<f64>,
) -> (f64, f64, JumpHint) {
    match tail {
        Tail::OneSided => worst_case_one_sided_jump(n, eps, hint, stop_above),
        Tail::TwoSided => crate::twosided::worst_case_two_sided_jump(n, eps, hint, stop_above),
    }
}

/// Breakpoint-exact worst-case search warm-started from a scalar
/// maximizer `p*` (the historical hint form; [`worst_case_deviation_jump`]
/// carries per-family jump indices instead and is what the minimal-`n`
/// search uses). The scalar hint seeds the upper family at
/// `j ≈ n(p* + ε)` and the lower family at `i ≈ n(p* − ε)`.
///
/// Returns `(worst, p_star)`; the `stop_above` contract is that of
/// [`worst_case_deviation_jump`].
pub fn worst_case_deviation_hinted(
    n: u64,
    eps: f64,
    tail: Tail,
    hint: f64,
    stop_above: Option<f64>,
) -> (f64, f64) {
    let jump = JumpHint {
        upper: Some(hint + eps),
        lower: Some(hint - eps),
    };
    let (worst, p_star, _) = worst_case_deviation_jump(n, eps, tail, jump, stop_above);
    (worst, p_star)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_pmf_brute(n: u64, p: f64, k: u64) -> f64 {
        // Direct product formulation for tiny n.
        let mut c = 1.0f64;
        for i in 0..k {
            c *= (n - i) as f64 / (i + 1) as f64;
        }
        c * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
    }

    fn tail_brute(n: u64, p: f64, k: u64) -> f64 {
        (k..=n).map(|i| exact_pmf_brute(n, p, i)).sum()
    }

    #[test]
    fn pmf_matches_brute_force() {
        for &(n, p) in &[(1u64, 0.3), (5, 0.5), (12, 0.9), (20, 0.01)] {
            for k in 0..=n {
                let got = ln_pmf(n, p, k).exp();
                let want = exact_pmf_brute(n, p, k);
                assert!(
                    (got - want).abs() < 1e-12 + want * 1e-10,
                    "n={n} p={p} k={k}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn pmf_degenerate_p() {
        assert_eq!(ln_pmf(10, 0.0, 0), 0.0);
        assert_eq!(ln_pmf(10, 0.0, 3), f64::NEG_INFINITY);
        assert_eq!(ln_pmf(10, 1.0, 10), 0.0);
        assert_eq!(ln_pmf(10, 1.0, 9), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(50u64, 0.5), (100, 0.02), (100, 0.98)] {
            let mut total = f64::NEG_INFINITY;
            for k in 0..=n {
                total = log_add_exp(total, ln_pmf(n, p, k));
            }
            assert!(total.abs() < 1e-10, "n={n} p={p}: sum = {}", total.exp());
        }
    }

    #[test]
    fn tails_match_brute_force_on_both_sides_of_mode() {
        // Boundaries below, at, and above the mode all go through the
        // correct direct/complement branch.
        for &(n, p) in &[(60u64, 0.3), (60, 0.5), (60, 0.9), (35, 0.04)] {
            for k in 0..=n {
                let got = ln_upper_tail(n, p, k).exp();
                let want = tail_brute(n, p, k);
                assert!(
                    (got - want).abs() < 1e-11,
                    "upper n={n} p={p} k={k}: {got} vs {want}"
                );
                if k < n {
                    let got_lo = ln_lower_tail(n, p, k).exp();
                    let want_lo = 1.0 - tail_brute(n, p, k + 1);
                    assert!(
                        (got_lo - want_lo).abs() < 1e-11,
                        "lower n={n} p={p} k={k}: {got_lo} vs {want_lo}"
                    );
                }
            }
        }
    }

    #[test]
    fn tails_complement() {
        for &(n, p, k) in &[(100u64, 0.3, 25u64), (100, 0.5, 50), (1000, 0.98, 985)] {
            let up = ln_upper_tail(n, p, k).exp();
            let low = ln_lower_tail(n, p, k - 1).exp();
            assert!(
                (up + low - 1.0).abs() < 1e-9,
                "n={n} p={p} k={k}: {up} + {low}"
            );
        }
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(ln_upper_tail(10, 0.5, 0), 0.0);
        assert_eq!(ln_upper_tail(10, 0.5, 11), f64::NEG_INFINITY);
        assert_eq!(ln_lower_tail(10, 0.5, 10), 0.0);
        assert_eq!(ln_upper_tail(10, 0.0, 1), f64::NEG_INFINITY);
        assert_eq!(ln_upper_tail(10, 1.0, 10), 0.0);
        assert_eq!(ln_lower_tail(10, 0.0, 3), 0.0);
        assert_eq!(ln_lower_tail(10, 1.0, 3), f64::NEG_INFINITY);
    }

    #[test]
    fn deviation_probability_sane() {
        // n=100, p=0.5: Pr[|X/n - 0.5| > 0.1] = 2 * Pr[X >= 61]
        let d = deviation_probability(100, 0.5, 0.1);
        let direct = 2.0 * ln_upper_tail(100, 0.5, 61).exp();
        assert!((d - direct).abs() < 1e-12);
    }

    #[test]
    fn deviation_shrinks_with_n() {
        let d_small = deviation_probability(100, 0.5, 0.05);
        let d_large = deviation_probability(10_000, 0.5, 0.05);
        assert!(d_large < d_small / 10.0);
    }

    #[test]
    fn deviation_hoeffding_dominates_exact() {
        // The exact deviation probability is always at most the Hoeffding
        // two-sided bound.
        for &n in &[50u64, 500, 5_000] {
            for &p in &[0.1, 0.5, 0.9] {
                for &eps in &[0.01, 0.05] {
                    let exact = deviation_probability(n, p, eps);
                    let hoeffding = 2.0 * (-2.0 * n as f64 * eps * eps).exp();
                    assert!(
                        exact <= hoeffding.min(1.0) + 1e-12,
                        "n={n} p={p} eps={eps}: {exact} > {hoeffding}"
                    );
                }
            }
        }
    }

    /// When `n(p+ε)` is mathematically an integer but floating-point
    /// arithmetic lands a few ulp below it, the naive `floor(x) + 1`
    /// cut-off includes the boundary outcome `X = n(p+ε)` — which does
    /// *not* satisfy the strict deviation `X/n > p+ε` — inflating the
    /// probability by a whole pmf term.
    #[test]
    fn cutoffs_snap_to_integers_at_the_boundary() {
        // 18 * (1/6 + 4/6) = 15 exactly, but the double-precision product
        // evaluates to 14.999999999999998: naive floor+1 admits X = 15,
        // whose deviation X/n = 5/6 equals p+ε and must be excluded.
        let n = 18u64;
        let p = 1.0 / 6.0;
        let eps = 4.0 / 6.0;
        assert!(
            (n as f64 * (p + eps)) < 15.0,
            "test premise: the product must land below the true integer"
        );
        let d = deviation_probability_one_sided(n, p, eps);
        // Strict inequality: only X >= 16 counts.
        let want = ln_upper_tail(n, p, 16).exp();
        assert!(
            (d - want).abs() < 1e-15,
            "cut-off failed to snap: got {d}, want {want} (X >= 16)"
        );
        // The wrong cut-off (X >= 15) is larger by pmf(15); make sure the
        // distinction is actually material at this scale.
        let wrong = ln_upper_tail(n, p, 15).exp();
        assert!(
            wrong > want * 1.5,
            "premise: boundary term must be material"
        );
    }

    /// Same hardening on the lower tail: 18 * (3/6 − 1/6) = 6 exactly,
    /// but evaluates to 6.000000000000001, so the naive `ceil − 1` admits
    /// the non-deviating outcome X = 6.
    #[test]
    fn lower_cutoff_snaps_at_the_boundary() {
        let n = 18u64;
        let p = 0.5;
        let eps = 1.0 / 6.0;
        let x = n as f64 * (p - eps);
        assert!(
            x > 6.0 && x - 6.0 < 1e-9,
            "premise: near-integer product, got {x}"
        );
        // Strict inequality X/n < p−ε admits only X <= 5.
        let d = deviation_probability(n, p, eps);
        let hi_cut = strict_upper_cutoff(n as f64 * (p + eps));
        let want = ln_upper_tail(n, p, hi_cut as u64).exp() + ln_lower_tail(n, p, 5).exp();
        assert!((d - want).abs() < 1e-15, "got {d}, want {want}");
        let wrong = ln_upper_tail(n, p, hi_cut as u64).exp() + ln_lower_tail(n, p, 6).exp();
        assert!(
            wrong > d,
            "premise: the extra boundary term must be material"
        );
    }

    /// An exactly representable integer product must behave identically
    /// to the snapped near-integer case.
    #[test]
    fn cutoffs_handle_exactly_representable_integers() {
        // n(p+eps) = 100 * 0.75 = 75 exactly in binary arithmetic.
        let d = deviation_probability_one_sided(100, 0.5, 0.25);
        let want = ln_upper_tail(100, 0.5, 76).exp();
        assert!((d - want).abs() < 1e-15);
    }

    #[test]
    fn worst_case_is_near_half() {
        let worst = worst_case_deviation(500, 0.05);
        let at_half = deviation_probability(500, 0.5, 0.05);
        assert!(worst >= at_half);
        assert!(worst <= at_half * 1.5, "worst={worst} at_half={at_half}");
    }

    #[test]
    fn hinted_search_matches_reference_scan() {
        for &n in &[200u64, 500, 1_371, 4_096] {
            for &eps in &[0.03, 0.05, 0.1] {
                for tail in [Tail::TwoSided, Tail::OneSided] {
                    let reference = worst_case_deviation_tail(n, eps, tail);
                    let (hinted, p_star) = worst_case_deviation_hinted(n, eps, tail, 0.5, None);
                    // Without early exit the hinted form runs the exact
                    // same breakpoint scan, so the values are identical.
                    assert_eq!(
                        hinted.to_bits(),
                        reference.to_bits(),
                        "n={n} eps={eps} {tail}: hinted {hinted} vs reference {reference}"
                    );
                    assert!((0.0..=1.0).contains(&p_star));
                }
            }
        }
    }

    /// The breakpoint scan dominates any grid scan (the grid samples the
    /// same function at a subset of points) and never exceeds the dense
    /// envelope by more than the teeth the grid provably missed.
    #[test]
    fn one_sided_exact_dominates_dense_grid() {
        for &n in &[37u64, 145, 500, 1_371, 4_096] {
            for &eps in &[0.03, 0.07, 0.1, 0.25] {
                let exact = worst_case_deviation_one_sided_exact(n, eps);
                // Dense reference: 8192 grid points of the actual
                // (snapped) one-sided deviation function.
                let grid = 8_192usize;
                let mut dense = 0.0f64;
                for i in 0..=grid {
                    let p = i as f64 / grid as f64;
                    dense = dense.max(deviation_probability_one_sided(n, p, eps));
                }
                assert!(
                    exact >= dense * (1.0 - 1e-12),
                    "n={n} eps={eps}: exact {exact} below dense grid {dense}"
                );
                assert!(
                    exact <= dense * 1.05 + 1e-15,
                    "n={n} eps={eps}: exact {exact} implausibly far above dense grid {dense}"
                );
            }
        }
    }

    /// The jump scan evaluated through the public reference entry point
    /// stays pinned to the seed's one-sided grid scan: same order of
    /// magnitude, never below it.
    #[test]
    fn one_sided_exact_pins_reference_grid_resolution() {
        for &(n, eps) in &[(143u64, 0.1), (600, 0.05), (2_000, 0.03)] {
            let exact = worst_case_deviation_tail(n, eps, Tail::OneSided);
            let mut grid64 = 0.0f64;
            for i in 0..=64 {
                let p = i as f64 / 64.0;
                grid64 = grid64.max(deviation_probability_one_sided(n, p, eps));
            }
            assert!(exact >= grid64 * (1.0 - 1e-12), "n={n} eps={eps}");
            assert!(
                exact <= grid64 * 1.10,
                "n={n} eps={eps}: {exact} vs {grid64}"
            );
        }
    }

    #[test]
    fn hinted_search_recovers_from_bad_hints() {
        let (from_left, _) = worst_case_deviation_hinted(700, 0.05, Tail::TwoSided, 0.05, None);
        let (from_right, _) = worst_case_deviation_hinted(700, 0.05, Tail::TwoSided, 0.95, None);
        let reference = worst_case_deviation_tail(700, 0.05, Tail::TwoSided);
        assert_eq!(from_left.to_bits(), reference.to_bits());
        assert_eq!(from_right.to_bits(), reference.to_bits());
    }

    #[test]
    fn hinted_search_early_exit_is_a_lower_bound() {
        let (full, _) = worst_case_deviation_hinted(300, 0.05, Tail::TwoSided, 0.5, None);
        let (bounded, _) =
            worst_case_deviation_hinted(300, 0.05, Tail::TwoSided, 0.5, Some(full / 10.0));
        assert!(
            bounded > full / 10.0,
            "early exit must certify the threshold crossing"
        );
        assert!(bounded <= full * (1.0 + 1e-12));
    }

    #[test]
    fn large_n_tail_is_fast_and_finite() {
        // 150K samples: the outward summation must terminate quickly and
        // produce a finite, tiny probability.
        let d = deviation_probability(150_000, 0.5, 0.01);
        assert!(d > 0.0 && d < 1e-8, "d = {d}");
    }
}

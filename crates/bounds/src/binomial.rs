//! Exact binomial distribution computations in log space.
//!
//! These underpin the "tight numerical bounds" of §4.3: instead of a
//! closed-form concentration inequality, compute the exact probability that
//! a `Binomial(n, p)/n` estimate deviates from `p` by more than `ε`, and
//! search for the smallest `n` that controls the worst case over `p`.
//!
//! All tail sums run outward from the deviation boundary and stop once the
//! next term can no longer affect the double-precision total, so a tail
//! evaluation costs `O(√n)` rather than `O(n)` in the common case.

use crate::numeric::{ln_choose, log_add_exp};

/// Natural log of the binomial probability mass `Pr[X = k]` for
/// `X ~ Binomial(n, p)`.
///
/// Handles the degenerate cases `p = 0` and `p = 1` exactly.
///
/// # Examples
///
/// ```
/// let ln_p = easeml_bounds::binomial::ln_pmf(10, 0.5, 5);
/// assert!((ln_p.exp() - 0.24609375).abs() < 1e-12);
/// ```
pub fn ln_pmf(n: u64, p: f64, k: u64) -> f64 {
    debug_assert!(k <= n);
    debug_assert!((0.0..=1.0).contains(&p));
    if p == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    // (-p).ln_1p() computes ln(1-p) without the cancellation that
    // (1.0 - p).ln() suffers for tiny p.
    ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (-p).ln_1p()
}

/// Log of the upper tail `Pr[X >= k]` for `X ~ Binomial(n, p)`.
///
/// Sums outward from `k` until additional terms are negligible.
pub fn ln_upper_tail(n: u64, p: f64, k: u64) -> f64 {
    if k == 0 {
        return 0.0; // Pr[X >= 0] = 1
    }
    if k > n {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY; // k >= 1 but X = 0 a.s.
    }
    if p == 1.0 {
        return 0.0; // X = n >= k a.s.
    }
    // pmf ratio: pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/(1-p)
    let ratio_log = |k: u64| ((n - k) as f64 / (k + 1) as f64).ln() + p.ln() - (-p).ln_1p();
    let mut term = ln_pmf(n, p, k);
    let mut total = term;
    let mut i = k;
    while i < n {
        term += ratio_log(i);
        let new_total = log_add_exp(total, term);
        // Terms decay geometrically past the mode; stop when converged.
        if new_total == total && term < total - 40.0 {
            break;
        }
        total = new_total;
        i += 1;
    }
    total.min(0.0)
}

/// Log of the lower tail `Pr[X <= k]` for `X ~ Binomial(n, p)`.
pub fn ln_lower_tail(n: u64, p: f64, k: u64) -> f64 {
    if k >= n {
        return 0.0;
    }
    // Pr[X <= k] = Pr[n - X >= n - k] with n - X ~ Binomial(n, 1-p).
    ln_upper_tail(n, 1.0 - p, n - k)
}

/// Exact two-sided deviation probability
/// `Pr[ |X/n − p| > ε ]` for `X ~ Binomial(n, p)`.
///
/// # Examples
///
/// ```
/// // With n = 100, p = 0.5, ε = 0.1: Pr[|X/100 - 0.5| > 0.1] ≈ 0.035
/// let pr = easeml_bounds::binomial::deviation_probability(100, 0.5, 0.1);
/// assert!(pr > 0.02 && pr < 0.06);
/// ```
pub fn deviation_probability(n: u64, p: f64, eps: f64) -> f64 {
    debug_assert!(n > 0);
    debug_assert!((0.0..=1.0).contains(&p));
    debug_assert!(eps > 0.0);
    let nf = n as f64;
    // Upper: X/n > p + eps  <=>  X >= floor(n(p+eps)) + 1
    let hi_cut = (nf * (p + eps)).floor() as i128 + 1;
    let upper = if hi_cut > n as i128 {
        f64::NEG_INFINITY
    } else {
        ln_upper_tail(n, p, hi_cut as u64)
    };
    // Lower: X/n < p - eps  <=>  X <= ceil(n(p-eps)) - 1
    let lo_cut = (nf * (p - eps)).ceil() as i128 - 1;
    let lower = if lo_cut < 0 {
        f64::NEG_INFINITY
    } else {
        ln_lower_tail(n, p, lo_cut as u64)
    };
    log_add_exp(upper, lower).exp().min(1.0)
}

/// One-sided deviation probability `Pr[X/n − p > ε]`.
pub fn deviation_probability_one_sided(n: u64, p: f64, eps: f64) -> f64 {
    let nf = n as f64;
    let hi_cut = (nf * (p + eps)).floor() as i128 + 1;
    if hi_cut > n as i128 {
        0.0
    } else {
        ln_upper_tail(n, p, hi_cut as u64).exp()
    }
}

/// Worst-case (over the unknown true mean `p`) two-sided deviation
/// probability for a given `n` and `ε`.
///
/// The deviation probability is maximized near `p = 1/2`; this scans a
/// coarse grid and refines around the best cell, which is robust to the
/// sawtooth behaviour introduced by the integer cut-offs.
pub fn worst_case_deviation(n: u64, eps: f64, grid: usize) -> f64 {
    let grid = grid.max(8);
    let mut best = 0.0f64;
    let mut best_p = 0.5;
    for i in 0..=grid {
        let p = i as f64 / grid as f64;
        let d = deviation_probability(n, p, eps);
        if d > best {
            best = d;
            best_p = p;
        }
    }
    // Refine around the best grid cell with a finer local scan.
    let lo = (best_p - 1.0 / grid as f64).max(0.0);
    let hi = (best_p + 1.0 / grid as f64).min(1.0);
    let fine = 64;
    for i in 0..=fine {
        let p = lo + (hi - lo) * i as f64 / fine as f64;
        let d = deviation_probability(n, p, eps);
        if d > best {
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_pmf_brute(n: u64, p: f64, k: u64) -> f64 {
        // Direct product formulation for tiny n.
        let mut c = 1.0f64;
        for i in 0..k {
            c *= (n - i) as f64 / (i + 1) as f64;
        }
        c * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
    }

    #[test]
    fn pmf_matches_brute_force() {
        for &(n, p) in &[(1u64, 0.3), (5, 0.5), (12, 0.9), (20, 0.01)] {
            for k in 0..=n {
                let got = ln_pmf(n, p, k).exp();
                let want = exact_pmf_brute(n, p, k);
                assert!(
                    (got - want).abs() < 1e-12 + want * 1e-10,
                    "n={n} p={p} k={k}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn pmf_degenerate_p() {
        assert_eq!(ln_pmf(10, 0.0, 0), 0.0);
        assert_eq!(ln_pmf(10, 0.0, 3), f64::NEG_INFINITY);
        assert_eq!(ln_pmf(10, 1.0, 10), 0.0);
        assert_eq!(ln_pmf(10, 1.0, 9), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(50u64, 0.5), (100, 0.02), (100, 0.98)] {
            let mut total = f64::NEG_INFINITY;
            for k in 0..=n {
                total = log_add_exp(total, ln_pmf(n, p, k));
            }
            assert!(total.abs() < 1e-10, "n={n} p={p}: sum = {}", total.exp());
        }
    }

    #[test]
    fn tails_complement() {
        for &(n, p, k) in &[(100u64, 0.3, 25u64), (100, 0.5, 50), (1000, 0.98, 985)] {
            let up = ln_upper_tail(n, p, k).exp();
            let low = ln_lower_tail(n, p, k - 1).exp();
            assert!((up + low - 1.0).abs() < 1e-9, "n={n} p={p} k={k}: {up} + {low}");
        }
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(ln_upper_tail(10, 0.5, 0), 0.0);
        assert_eq!(ln_upper_tail(10, 0.5, 11), f64::NEG_INFINITY);
        assert_eq!(ln_lower_tail(10, 0.5, 10), 0.0);
        assert_eq!(ln_upper_tail(10, 0.0, 1), f64::NEG_INFINITY);
        assert_eq!(ln_upper_tail(10, 1.0, 10), 0.0);
    }

    #[test]
    fn deviation_probability_sane() {
        // n=100, p=0.5: Pr[|X/n - 0.5| > 0.1] = 2 * Pr[X >= 61]
        let d = deviation_probability(100, 0.5, 0.1);
        let direct = 2.0 * ln_upper_tail(100, 0.5, 61).exp();
        assert!((d - direct).abs() < 1e-12);
    }

    #[test]
    fn deviation_shrinks_with_n() {
        let d_small = deviation_probability(100, 0.5, 0.05);
        let d_large = deviation_probability(10_000, 0.5, 0.05);
        assert!(d_large < d_small / 10.0);
    }

    #[test]
    fn deviation_hoeffding_dominates_exact() {
        // The exact deviation probability is always at most the Hoeffding
        // two-sided bound.
        for &n in &[50u64, 500, 5_000] {
            for &p in &[0.1, 0.5, 0.9] {
                for &eps in &[0.01, 0.05] {
                    let exact = deviation_probability(n, p, eps);
                    let hoeffding = 2.0 * (-2.0 * n as f64 * eps * eps).exp();
                    assert!(
                        exact <= hoeffding.min(1.0) + 1e-12,
                        "n={n} p={p} eps={eps}: {exact} > {hoeffding}"
                    );
                }
            }
        }
    }

    #[test]
    fn worst_case_is_near_half() {
        let worst = worst_case_deviation(500, 0.05, 50);
        let at_half = deviation_probability(500, 0.5, 0.05);
        assert!(worst >= at_half);
        assert!(worst <= at_half * 1.5, "worst={worst} at_half={at_half}");
    }

    #[test]
    fn large_n_tail_is_fast_and_finite() {
        // 150K samples: the outward summation must terminate quickly and
        // produce a finite, tiny probability.
        let d = deviation_probability(150_000, 0.5, 0.01);
        assert!(d > 0.0 && d < 1e-8, "d = {d}");
    }
}

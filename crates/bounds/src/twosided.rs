//! Breakpoint-exact two-sided worst-case deviation.
//!
//! The two-sided deviation probability at sample size `n` and tolerance
//! `ε` is `f(p) = Pr_p[X ≥ k(p)] + Pr_p[X ≤ m(p)]` with the strict
//! cut-offs `k(p) = min{k : k > n(p+ε)}` and `m(p) = max{m : m < n(p−ε)}`.
//! Between cut-off jumps both `k` and `m` are constant, and on such an
//! interval `f′(p)/n = pmf(n−1, p, k−1) − pmf(n−1, p, m)` changes sign at
//! most once, from negative to positive (the pmf ratio
//! `C·(p/(1−p))^{k−1−m}` is monotone and `k−1 ≥ m` whenever `ε > 0`), so
//! `f` is valley-shaped and its supremum over the interval sits at an
//! endpoint limit. The cut-offs jump exactly at the sawtooth breakpoints
//!
//! * `p_j = j/n − ε` — the **upper** tail loses the term `pmf(j)` as `p`
//!   crosses upward, so the relevant limit is from the **left**:
//!   `Pr_{p_j}[X ≥ j] + Pr_{p_j}[X ≤ m(p_j⁻)]`;
//! * `p_i = i/n + ε` — the **lower** tail gains the term `pmf(i)` as `p`
//!   crosses upward, so the relevant limit is from the **right**:
//!   `Pr_{p_i}[X ≥ k(p_i⁺)] + Pr_{p_i}[X ≤ i]`.
//!
//! The global supremum is therefore the maximum over these two finite
//! candidate families — no grid, no resolution error. Within a family the
//! *other* tail's cut-off shifts in lockstep with the family index
//! (`m(p_j⁻) = j − ⌈2nε⌉`-ish, constant offset), so each family's
//! candidate envelope inherits the same unimodal-up-to-sawtooth shape as
//! the one-sided envelope and is searched with the same hill-climb +
//! plateau sweep ([`crate::binomial::climb_envelope`]).
//!
//! This mirrors the one-sided treatment
//! ([`crate::binomial::worst_case_deviation_one_sided_exact`]) and
//! replaces the seed's 64-point grid scan (preserved in
//! [`crate::reference`]) in both the hinted bracketing probes and the
//! reference acceptance criterion of
//! [`crate::exact_binomial_sample_size`]. The exact supremum dominates
//! every grid sampling of the same function, so accepted sample sizes can
//! sit a few sawtooth teeth *above* the seed's — never below.

use crate::binomial::{
    climb_envelope, ln_lower_tail, ln_upper_tail, strict_lower_cutoff, strict_upper_cutoff,
    JumpHint, JUMP_PLATEAU,
};
use crate::numeric::log_add_exp;

/// Breakpoint-exact two-sided worst case: `sup_p Pr[|X/n − p| > ε]`.
pub fn worst_case_deviation_two_sided_exact(n: u64, eps: f64) -> f64 {
    worst_case_two_sided_jump(n, eps, JumpHint::cold(), None).0
}

/// Candidate at the upper-family breakpoint `p_j = j/n − ε`: the limit of
/// the deviation probability as `p → p_j` from the left, where the upper
/// cut-off is still `j` and the lower cut-off is the in-interval constant
/// `strict_lower_cutoff(n(p_j − ε))` (the snap convention resolves a
/// near-integer product to the left-limit cut-off, which is exactly the
/// convention this limit needs).
fn upper_family_candidate(n: u64, eps: f64, j: u64, p: f64) -> f64 {
    let upper = ln_upper_tail(n, p, j);
    let lo_cut = strict_lower_cutoff(n as f64 * (p - eps));
    let lower = if lo_cut < 0 {
        f64::NEG_INFINITY
    } else {
        ln_lower_tail(n, p, lo_cut as u64)
    };
    log_add_exp(upper, lower).exp().min(1.0)
}

/// Candidate at the lower-family breakpoint `p_i = i/n + ε`: the limit
/// from the right, where the lower cut-off has become `i` and the upper
/// cut-off is `strict_upper_cutoff(n(p_i + ε))` (the snap again resolves
/// a coincident breakpoint to the right-limit cut-off).
fn lower_family_candidate(n: u64, eps: f64, i: u64, p: f64) -> f64 {
    let lower = ln_lower_tail(n, p, i);
    let hi_cut = strict_upper_cutoff(n as f64 * (p + eps));
    let upper = if hi_cut > n as i128 {
        f64::NEG_INFINITY
    } else {
        ln_upper_tail(n, p, hi_cut as u64)
    };
    log_add_exp(upper, lower).exp().min(1.0)
}

/// Hinted, early-exiting breakpoint scan over both candidate families
/// (the two-sided backend of
/// [`crate::binomial::worst_case_deviation_jump`]). Returns
/// `(sup, p_star, next_hint)` where `p_star` is the maximizing
/// breakpoint and `next_hint` carries each family's own maximizing jump
/// index for the next probe — the losing family's argmax too, so its
/// next climb does not have to walk over from the winner's breakpoint.
/// When `stop_above` is set, returns as soon as any candidate exceeds
/// it (the result is then only a lower bound — exactly what a
/// `worst(n) > δ` bracketing decision needs).
pub(crate) fn worst_case_two_sided_jump(
    n: u64,
    eps: f64,
    hint: JumpHint,
    stop_above: Option<f64>,
) -> (f64, f64, JumpHint) {
    debug_assert!(n > 0);
    debug_assert!(eps > 0.0 && eps < 1.0);
    let nf = n as f64;
    let mut next = hint;

    // Upper family: j with 0 < p_j = j/n − ε (p_j ≤ 1 − ε < 1 always).
    let j_min = (strict_upper_cutoff(nf * eps).max(1) as u64).min(n);
    let p_upper = |j: u64| (j as f64 / nf - eps).clamp(f64::MIN_POSITIVE, 1.0);
    let j_start = JumpHint::start_index(hint.upper, nf, 0.5 + eps);
    let (mut best, best_j) = climb_envelope(j_min, n, j_start, JUMP_PLATEAU, stop_above, |j| {
        upper_family_candidate(n, eps, j, p_upper(j))
    });
    let mut best_p = p_upper(best_j);
    next.upper = Some(best_j as f64 / nf);
    if let Some(limit) = stop_above {
        if best > limit {
            return (best, best_p, next);
        }
    }

    // Lower family: i with p_i = i/n + ε < 1 (p_i ≥ ε > 0 always).
    let i_max = strict_lower_cutoff(nf * (1.0 - eps));
    if i_max >= 0 {
        let p_lower = |i: u64| (i as f64 / nf + eps).clamp(f64::MIN_POSITIVE, 1.0);
        let i_start = JumpHint::start_index(hint.lower, nf, 0.5 - eps);
        let (lo_best, lo_i) =
            climb_envelope(0, i_max as u64, i_start, JUMP_PLATEAU, stop_above, |i| {
                lower_family_candidate(n, eps, i, p_lower(i))
            });
        next.lower = Some(lo_i as f64 / nf);
        if lo_best > best {
            best = lo_best;
            best_p = p_lower(lo_i);
        }
    }
    (best, best_p, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::deviation_probability;

    /// The breakpoint scan dominates any grid sampling of the actual
    /// (snapped) deviation function — the exact sup is a limit value the
    /// grid can only approach — and never exceeds the dense envelope by
    /// more than the teeth the grid provably missed.
    #[test]
    fn two_sided_exact_dominates_dense_grid() {
        for &n in &[37u64, 145, 500, 1_371, 4_096] {
            for &eps in &[0.03, 0.07, 0.1, 0.25] {
                let exact = worst_case_deviation_two_sided_exact(n, eps);
                let grid = 8_192usize;
                let mut dense = 0.0f64;
                for i in 0..=grid {
                    let p = i as f64 / grid as f64;
                    dense = dense.max(deviation_probability(n, p, eps));
                }
                assert!(
                    exact >= dense * (1.0 - 1e-12),
                    "n={n} eps={eps}: exact {exact} below dense grid {dense}"
                );
                assert!(
                    exact <= dense * 1.05 + 1e-15,
                    "n={n} eps={eps}: exact {exact} implausibly far above dense grid {dense}"
                );
            }
        }
    }

    /// Both families matter: the sup must match a brute-force enumeration
    /// of every breakpoint candidate (no hill-climb, no plateau window),
    /// so the climb provably never stalls short of the true maximum.
    #[test]
    fn climb_matches_exhaustive_breakpoint_enumeration() {
        for &n in &[23u64, 100, 333, 1_024] {
            for &eps in &[0.02, 0.05, 0.11, 0.3] {
                let nf = n as f64;
                let mut brute = 0.0f64;
                let j_min = (strict_upper_cutoff(nf * eps).max(1) as u64).min(n);
                for j in j_min..=n {
                    let p = (j as f64 / nf - eps).clamp(f64::MIN_POSITIVE, 1.0);
                    brute = brute.max(upper_family_candidate(n, eps, j, p));
                }
                let i_max = strict_lower_cutoff(nf * (1.0 - eps));
                for i in 0..=i_max.max(0) as u64 {
                    let p = (i as f64 / nf + eps).clamp(f64::MIN_POSITIVE, 1.0);
                    brute = brute.max(lower_family_candidate(n, eps, i, p));
                }
                let climbed = worst_case_deviation_two_sided_exact(n, eps);
                assert!(
                    (climbed - brute).abs() <= brute * 1e-12,
                    "n={n} eps={eps}: climb {climbed} vs brute {brute}"
                );
            }
        }
    }

    /// The two families are mirror images under `p ↔ 1 − p`, so a badly
    /// off-centre hint must still recover the global sup.
    #[test]
    fn recovers_from_bad_hints() {
        for &frac in &[0.02, 0.5, 0.98] {
            let hint = JumpHint {
                upper: Some(frac),
                lower: Some(frac),
            };
            let (v, p_star, next) = worst_case_two_sided_jump(700, 0.05, hint, None);
            let want = worst_case_deviation_two_sided_exact(700, 0.05);
            assert!(
                (v - want).abs() <= want * 1e-12,
                "hint={frac}: {v} vs {want}"
            );
            assert!((0.0..=1.0).contains(&p_star));
            assert!(next.upper.is_some() && next.lower.is_some());
        }
    }

    /// Early exit certifies the threshold crossing with a lower bound.
    #[test]
    fn early_exit_is_a_lower_bound() {
        let (full, _, _) = worst_case_two_sided_jump(300, 0.05, JumpHint::cold(), None);
        let (bounded, _, _) =
            worst_case_two_sided_jump(300, 0.05, JumpHint::cold(), Some(full / 10.0));
        assert!(bounded > full / 10.0);
        assert!(bounded <= full * (1.0 + 1e-12));
    }
}

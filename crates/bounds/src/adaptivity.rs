//! Adaptivity accounting (§3.2–§3.4).
//!
//! Releasing a pass/fail bit to the developer leaks information about the
//! testset, so the per-test failure probability must be divided among every
//! *reachable interaction history*:
//!
//! * **non-adaptive** (`none`): `H` independent models → union bound over
//!   `H` states → test each at `δ/H`;
//! * **fully adaptive** (`full`): a deterministic developer branches on each
//!   released bit → `2^H` reachable histories → test at `δ/2^H` (the
//!   Ladder-style argument of §3.3);
//! * **hybrid** (`firstChange`): the testset is replaced as soon as a test
//!   passes, so the only reachable feedback stream is `Fail…Fail` → `H`
//!   states → `δ/H`, at the price of early testset retirement (§3.4).

use crate::error::{check_probability, BoundsError, Result};
use std::fmt;
use std::str::FromStr;

/// How much of the pass/fail signal the developer can observe, which
/// determines the union-bound multiplicity over interaction histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Adaptivity {
    /// `adaptivity: none` — results go to a third party; the developer
    /// learns nothing, models are independent.
    #[default]
    None,
    /// `adaptivity: full` — every pass/fail bit is released immediately.
    Full,
    /// `adaptivity: firstChange` — fully visible, but the testset retires
    /// the first time the signal changes (a commit passes).
    FirstChange,
}

impl Adaptivity {
    /// Natural log of the union-bound multiplicity for an `H`-step process:
    /// `ln H` for [`Adaptivity::None`] and [`Adaptivity::FirstChange`],
    /// `ln 2^H = H ln 2` for [`Adaptivity::Full`].
    ///
    /// Working in log space keeps `δ/2^H` representable for any `H`.
    #[must_use]
    pub fn ln_multiplicity(self, steps: u32) -> f64 {
        let h = steps.max(1);
        match self {
            Adaptivity::None | Adaptivity::FirstChange => (h as f64).ln(),
            Adaptivity::Full => h as f64 * std::f64::consts::LN_2,
        }
    }

    /// `ln(δ_effective) = ln δ − ln multiplicity`: the per-test failure
    /// budget after the union bound over interaction histories.
    ///
    /// # Errors
    ///
    /// Returns an error if `delta` is outside `(0, 1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use easeml_bounds::Adaptivity;
    ///
    /// # fn main() -> Result<(), easeml_bounds::BoundsError> {
    /// let ln_d = Adaptivity::Full.ln_effective_delta(0.0001, 32)?;
    /// // δ/2^32 ≈ 2.3e-14
    /// assert!((ln_d.exp() - 0.0001 / 4_294_967_296.0).abs() < 1e-20);
    /// # Ok(())
    /// # }
    /// ```
    pub fn ln_effective_delta(self, delta: f64, steps: u32) -> Result<f64> {
        check_probability("delta", delta)?;
        Ok(delta.ln() - self.ln_multiplicity(steps))
    }

    /// Linear-space effective delta; underflows to an error for extreme
    /// `H` under full adaptivity — prefer [`Self::ln_effective_delta`].
    ///
    /// # Errors
    ///
    /// Returns an error for invalid `delta` or if the result underflows.
    pub fn effective_delta(self, delta: f64, steps: u32) -> Result<f64> {
        let ln = self.ln_effective_delta(delta, steps)?;
        let v = ln.exp();
        if v > 0.0 {
            Ok(v)
        } else {
            Err(BoundsError::InvalidProbability {
                name: "effective_delta",
                value: v,
            })
        }
    }

    /// Whether the pass/fail signal is visible to the developer.
    #[must_use]
    pub fn releases_signal(self) -> bool {
        !matches!(self, Adaptivity::None)
    }

    /// Whether a *pass* retires the current testset (hybrid scenario).
    #[must_use]
    pub fn retires_on_pass(self) -> bool {
        matches!(self, Adaptivity::FirstChange)
    }
}

impl fmt::Display for Adaptivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Adaptivity::None => write!(f, "none"),
            Adaptivity::Full => write!(f, "full"),
            Adaptivity::FirstChange => write!(f, "firstChange"),
        }
    }
}

/// Error produced when parsing an [`Adaptivity`] from a script keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAdaptivityError {
    input: String,
}

impl fmt::Display for ParseAdaptivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown adaptivity `{}` (expected `none`, `full`, or `firstChange`)",
            self.input
        )
    }
}

impl std::error::Error for ParseAdaptivityError {}

impl FromStr for Adaptivity {
    type Err = ParseAdaptivityError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim() {
            "none" => Ok(Adaptivity::None),
            "full" => Ok(Adaptivity::Full),
            "firstChange" | "firstchange" | "first-change" => Ok(Adaptivity::FirstChange),
            other => Err(ParseAdaptivityError {
                input: other.to_owned(),
            }),
        }
    }
}

/// Total labels for the *trivial* fully-adaptive strategy that uses a fresh
/// testset of `n_per_step` samples for every one of `H` commits (§3.3's
/// `H · n(F, ε, δ/H)` baseline).
#[must_use]
pub fn trivial_strategy_total(n_per_step: u64, steps: u32) -> u64 {
    n_per_step.saturating_mul(u64::from(steps.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicities() {
        assert!((Adaptivity::None.ln_multiplicity(32) - 32f64.ln()).abs() < 1e-12);
        assert!(
            (Adaptivity::Full.ln_multiplicity(32) - 32.0 * std::f64::consts::LN_2).abs() < 1e-12
        );
        assert!((Adaptivity::FirstChange.ln_multiplicity(32) - 32f64.ln()).abs() < 1e-12);
        // steps = 0 is clamped to 1 rather than producing ln(0).
        assert_eq!(Adaptivity::None.ln_multiplicity(0), 0.0);
    }

    /// §3.4: the hybrid scenario has the same sample size as non-adaptive.
    #[test]
    fn hybrid_matches_non_adaptive() {
        for h in [1u32, 7, 32, 100] {
            assert_eq!(
                Adaptivity::FirstChange
                    .ln_effective_delta(0.001, h)
                    .unwrap(),
                Adaptivity::None.ln_effective_delta(0.001, h).unwrap()
            );
        }
    }

    #[test]
    fn full_is_strictly_more_expensive_beyond_trivial_h() {
        for h in [2u32, 7, 32] {
            let full = Adaptivity::Full.ln_effective_delta(0.001, h).unwrap();
            let none = Adaptivity::None.ln_effective_delta(0.001, h).unwrap();
            assert!(full < none, "h={h}");
        }
        // H = 1: 2^1 = 2 > 1, so full is still (slightly) more expensive.
        let full = Adaptivity::Full.ln_effective_delta(0.001, 1).unwrap();
        let none = Adaptivity::None.ln_effective_delta(0.001, 1).unwrap();
        assert!(full < none);
    }

    #[test]
    fn effective_delta_linear_space() {
        let d = Adaptivity::None.effective_delta(0.01, 32).unwrap();
        assert!((d - 0.0003125).abs() < 1e-12);
        // Extreme H underflows in linear space and reports an error.
        assert!(Adaptivity::Full.effective_delta(0.01, 10_000).is_err());
        // ... but stays usable in log space.
        assert!(Adaptivity::Full
            .ln_effective_delta(0.01, 10_000)
            .unwrap()
            .is_finite());
    }

    #[test]
    fn parsing_round_trip() {
        for a in [Adaptivity::None, Adaptivity::Full, Adaptivity::FirstChange] {
            let s = a.to_string();
            assert_eq!(s.parse::<Adaptivity>().unwrap(), a);
        }
        assert!("bogus".parse::<Adaptivity>().is_err());
        let err = "bogus".parse::<Adaptivity>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn signal_and_retirement_flags() {
        assert!(!Adaptivity::None.releases_signal());
        assert!(Adaptivity::Full.releases_signal());
        assert!(Adaptivity::FirstChange.releases_signal());
        assert!(!Adaptivity::None.retires_on_pass());
        assert!(!Adaptivity::Full.retires_on_pass());
        assert!(Adaptivity::FirstChange.retires_on_pass());
    }

    #[test]
    fn trivial_strategy() {
        assert_eq!(trivial_strategy_total(6_279, 32), 200_928);
        assert_eq!(trivial_strategy_total(10, 0), 10);
        assert_eq!(trivial_strategy_total(u64::MAX, 2), u64::MAX);
    }
}

//! Property-based tests for the bound implementations.

use easeml_bounds::{
    bennett_epsilon, bennett_h, bennett_h_inv, bennett_sample_size, bernstein_sample_size,
    binomial, exact_binomial_sample_size, exact_binomial_sample_size_batch_with_pool,
    hoeffding_delta, hoeffding_epsilon, hoeffding_sample_size, mcdiarmid_sample_size, numeric,
    reference, split_delta_weighted, Adaptivity, Tail,
};
use easeml_par::Pool;
use proptest::prelude::*;

fn eps_strategy() -> impl Strategy<Value = f64> {
    (0.005f64..0.3).prop_map(|x| x)
}

fn delta_strategy() -> impl Strategy<Value = f64> {
    (1e-6f64..0.2).prop_map(|x| x)
}

proptest! {
    /// Sample size decreases (weakly) as the tolerance grows.
    #[test]
    fn hoeffding_monotone_in_eps(delta in delta_strategy(), e1 in eps_strategy(), e2 in eps_strategy()) {
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let n_lo = hoeffding_sample_size(1.0, lo, delta, Tail::TwoSided).unwrap();
        let n_hi = hoeffding_sample_size(1.0, hi, delta, Tail::TwoSided).unwrap();
        prop_assert!(n_hi <= n_lo);
    }

    /// Sample size decreases (weakly) as the failure budget grows.
    #[test]
    fn hoeffding_monotone_in_delta(eps in eps_strategy(), d1 in delta_strategy(), d2 in delta_strategy()) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let n_lo = hoeffding_sample_size(1.0, eps, lo, Tail::TwoSided).unwrap();
        let n_hi = hoeffding_sample_size(1.0, eps, hi, Tail::TwoSided).unwrap();
        prop_assert!(n_hi <= n_lo);
    }

    /// The (ε, δ, n) triple is mutually consistent across the three solvers.
    #[test]
    fn hoeffding_roundtrip(eps in eps_strategy(), delta in delta_strategy()) {
        let n = hoeffding_sample_size(1.0, eps, delta, Tail::TwoSided).unwrap();
        let eps_back = hoeffding_epsilon(1.0, n, delta, Tail::TwoSided).unwrap();
        prop_assert!(eps_back <= eps + 1e-12);
        let delta_back = hoeffding_delta(1.0, n, eps, Tail::TwoSided).unwrap();
        prop_assert!(delta_back <= delta + 1e-12);
    }

    /// h is increasing and convex-ish: h(u)/u increasing.
    #[test]
    fn bennett_h_increasing(u1 in 1e-6f64..50.0, u2 in 1e-6f64..50.0) {
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(bennett_h(lo) <= bennett_h(hi) + 1e-15);
    }

    /// h_inv is a true inverse over a wide range.
    #[test]
    fn bennett_h_inv_roundtrip(u in 1e-6f64..100.0) {
        let y = bennett_h(u);
        let back = bennett_h_inv(y).unwrap();
        prop_assert!((back - u).abs() < 1e-6 * u.max(1.0), "u={u} back={back}");
    }

    /// Bennett with the worst-case second moment never beats Hoeffding by
    /// more than the slack of the inequality itself, and a small second
    /// moment always helps.
    #[test]
    fn bennett_monotone_in_variance(eps in 0.005f64..0.1, delta in delta_strategy(),
                                    p1 in 0.01f64..1.0, p2 in 0.01f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let n_lo = bennett_sample_size(lo, 1.0, eps, delta, Tail::TwoSided).unwrap();
        let n_hi = bennett_sample_size(hi, 1.0, eps, delta, Tail::TwoSided).unwrap();
        prop_assert!(n_lo <= n_hi, "p={lo}->{n_lo}, p={hi}->{n_hi}");
    }

    /// Bennett dominates Bernstein everywhere.
    #[test]
    fn bennett_dominates_bernstein(eps in 0.005f64..0.2, delta in delta_strategy(), p in 0.01f64..1.0) {
        let benn = bennett_sample_size(p, 1.0, eps, delta, Tail::TwoSided).unwrap();
        let bern = bernstein_sample_size(p, 1.0, eps, delta, Tail::TwoSided).unwrap();
        prop_assert!(benn <= bern);
    }

    /// Bennett's epsilon solver inverts its sample-size solver.
    #[test]
    fn bennett_roundtrip(eps in 0.005f64..0.1, delta in delta_strategy(), p in 0.02f64..1.0) {
        let n = bennett_sample_size(p, 1.0, eps, delta, Tail::TwoSided).unwrap();
        let back = bennett_epsilon(p, 1.0, n, delta, Tail::TwoSided).unwrap();
        prop_assert!(back <= eps + 1e-9, "eps={eps} back={back}");
    }

    /// McDiarmid with β=1 equals Hoeffding for every (ε, δ).
    #[test]
    fn mcdiarmid_beta1_is_hoeffding(eps in eps_strategy(), delta in delta_strategy()) {
        prop_assert_eq!(
            mcdiarmid_sample_size(1.0, eps, delta, Tail::TwoSided).unwrap(),
            hoeffding_sample_size(1.0, eps, delta, Tail::TwoSided).unwrap()
        );
    }

    /// Full adaptivity always requires at least the non-adaptive budget.
    #[test]
    fn adaptivity_ordering(delta in delta_strategy(), steps in 1u32..200) {
        let full = Adaptivity::Full.ln_effective_delta(delta, steps).unwrap();
        let none = Adaptivity::None.ln_effective_delta(delta, steps).unwrap();
        let hybrid = Adaptivity::FirstChange.ln_effective_delta(delta, steps).unwrap();
        prop_assert!(full <= none);
        prop_assert_eq!(none, hybrid);
    }

    /// Weighted delta splits always conserve the total budget.
    #[test]
    fn weighted_split_conserves(delta in delta_strategy(),
                                w in prop::collection::vec(0.01f64..10.0, 1..6)) {
        let parts = split_delta_weighted(delta, &w).unwrap();
        let total: f64 = parts.iter().map(|l| l.exp()).sum();
        prop_assert!((total - delta).abs() < 1e-9);
    }

    /// Binomial pmf is a valid log-probability and tails are proper.
    #[test]
    fn binomial_tail_bounds(n in 1u64..2_000, p in 0.0f64..=1.0, k in 0u64..2_000) {
        prop_assume!(k <= n);
        let pmf = binomial::ln_pmf(n, p, k);
        prop_assert!(pmf <= 1e-12, "pmf = {pmf}");
        let up = binomial::ln_upper_tail(n, p, k);
        prop_assert!(up <= 1e-9);
        prop_assert!(up >= pmf - 1e-9, "tail must contain the point mass");
    }

    /// The exact deviation probability is below the Hoeffding bound.
    #[test]
    fn exact_below_hoeffding(n in 10u64..5_000, p in 0.01f64..0.99, eps in 0.01f64..0.3) {
        let exact = binomial::deviation_probability(n, p, eps);
        let hoeff = (2.0 * (-2.0 * n as f64 * eps * eps).exp()).min(1.0);
        prop_assert!(exact <= hoeff + 1e-9, "exact={exact} hoeff={hoeff}");
    }

    /// The exact inversion never asks for more samples than Hoeffding,
    /// across randomized tolerances, budgets, and tail conventions.
    #[test]
    fn exact_inversion_at_most_hoeffding(eps in 0.03f64..0.25, delta in 1e-4f64..0.1,
                                         tail in prop_oneof![Just(Tail::OneSided), Just(Tail::TwoSided)]) {
        let exact = exact_binomial_sample_size(eps, delta, tail).unwrap();
        let hoeff = hoeffding_sample_size(1.0, eps, delta, tail).unwrap();
        prop_assert!(exact <= hoeff, "eps={eps} delta={delta} {tail}: {exact} > {hoeff}");
        // And the answer actually satisfies the constraint under the
        // breakpoint-exact worst case.
        let worst = binomial::worst_case_deviation_tail(exact, eps, tail);
        prop_assert!(worst <= delta * 1.0001, "eps={eps} delta={delta} {tail}: worst={worst}");
    }

    /// The shared log-factorial table agrees with the Lanczos ln_gamma
    /// evaluation everywhere, including across its growth boundaries and
    /// beyond its cap.
    #[test]
    fn ln_factorial_matches_ln_gamma(n in 0u64..2_000_000) {
        let table = numeric::ln_factorial(n);
        let gamma = numeric::ln_gamma(n as f64 + 1.0);
        prop_assert!(
            (table - gamma).abs() <= 1e-10 * gamma.abs().max(1.0),
            "n={n}: table={table} gamma={gamma}"
        );
    }

    /// The breakpoint-exact acceptance (both tail conventions) stays
    /// pinned to the seed's grid-scan inversion
    /// (`easeml_bounds::reference`): the two can differ only by the
    /// sawtooth teeth the 64-point grid missed.
    #[test]
    fn breakpoint_exact_inversion_pins_reference_grid_scan(
        eps in 0.04f64..0.25, delta in 1e-4f64..0.1,
        tail in prop_oneof![Just(Tail::OneSided), Just(Tail::TwoSided)],
    ) {
        let exact = exact_binomial_sample_size(eps, delta, tail).unwrap();
        let seed = reference::exact_binomial_sample_size(eps, delta, tail).unwrap();
        // The exact sup dominates the grid sup, so the exact answer can
        // only sit at or above the seed's — and never far above.
        prop_assert!(
            exact >= seed,
            "eps={eps} delta={delta} {tail}: exact {exact} below grid-accepted {seed}"
        );
        // Each missed tooth moves the accepted run by O(1/ε) samples;
        // 5% (or a handful of teeth) bounds the drift across this range.
        prop_assert!(
            exact.abs_diff(seed) as f64 <= (seed as f64 * 0.05).max(8.0),
            "eps={eps} delta={delta} {tail}: exact {exact} drifted from seed {seed}"
        );
    }

    /// The two-sided breakpoint scan dominates every grid sampling of
    /// the actual deviation function over random (n, ε) — the exact sup
    /// is a limit value a grid can only approach from below.
    #[test]
    fn two_sided_exact_dominates_grids(n in 20u64..3_000, eps in 0.02f64..0.3) {
        let exact = binomial::worst_case_deviation_two_sided_exact(n, eps);
        let mut grid_max = 0.0f64;
        for i in 0..=512 {
            let p = i as f64 / 512.0;
            grid_max = grid_max.max(binomial::deviation_probability(n, p, eps));
        }
        prop_assert!(
            exact >= grid_max * (1.0 - 1e-12),
            "n={n} eps={eps}: exact {exact} below grid {grid_max}"
        );
    }

    /// Batch inversion is bit-identical across thread counts and to the
    /// per-cell inversion, for random small grids.
    #[test]
    fn batch_inversion_deterministic_across_threads(
        epsilons in prop::collection::vec(0.04f64..0.3, 1..4),
        deltas in prop::collection::vec(1e-4f64..0.1, 1..4),
        tail in prop_oneof![Just(Tail::OneSided), Just(Tail::TwoSided)],
    ) {
        let one = exact_binomial_sample_size_batch_with_pool(&epsilons, &deltas, tail, &Pool::new(1)).unwrap();
        for threads in [2usize, 8] {
            let wide = exact_binomial_sample_size_batch_with_pool(&epsilons, &deltas, tail, &Pool::new(threads)).unwrap();
            prop_assert_eq!(&one, &wide, "threads={}", threads);
        }
        for (i, &eps) in epsilons.iter().enumerate() {
            for (j, &delta) in deltas.iter().enumerate() {
                prop_assert_eq!(
                    one[i][j],
                    exact_binomial_sample_size(eps, delta, tail).unwrap(),
                    "eps={} delta={}", eps, delta
                );
            }
        }
    }

    /// The per-family jump-index carry is pinned against the reference
    /// scan: a cold [`binomial::JumpHint`] reproduces the
    /// breakpoint-exact scan bit for bit (the carry changes only where
    /// climbs *start*, never the cold answer); an arbitrary warm start —
    /// wildly wrong carried fractions included — evaluates only genuine
    /// breakpoint candidates, so its result never exceeds the reference
    /// sup (it may undershoot from an adversarial start, which is why
    /// the minimal-`n` search only ever *accepts* candidates via the
    /// reference scan); and re-running from the returned hint (the warm
    /// path the search takes probe after probe) reproduces its own bits
    /// exactly.
    #[test]
    fn jump_hint_carry_is_pinned(
        n in 10u64..4_000, eps in 0.02f64..0.3,
        tail in prop_oneof![Just(Tail::OneSided), Just(Tail::TwoSided)],
        upper_frac in 0.0f64..=1.0, lower_frac in 0.0f64..=1.0, mask in 0u32..4,
    ) {
        let reference = binomial::worst_case_deviation_tail(n, eps, tail);
        let (cold, cold_p, _) =
            binomial::worst_case_deviation_jump(n, eps, tail, binomial::JumpHint::cold(), None);
        prop_assert_eq!(
            cold.to_bits(), reference.to_bits(),
            "n={} eps={} {}: cold {} vs reference {}", n, eps, tail, cold, reference
        );
        prop_assert!((0.0..=1.0).contains(&cold_p));

        let hint = binomial::JumpHint {
            upper: (mask & 1 != 0).then_some(upper_frac),
            lower: (mask & 2 != 0).then_some(lower_frac),
        };
        let (warm, p_star, next) = binomial::worst_case_deviation_jump(n, eps, tail, hint, None);
        prop_assert!(
            warm >= 0.0 && warm <= reference * (1.0 + 1e-12),
            "n={} eps={} {}: warm {} above reference {}", n, eps, tail, warm, reference
        );
        prop_assert!((0.0..=1.0).contains(&p_star));
        let (again, _, _) = binomial::worst_case_deviation_jump(n, eps, tail, next, None);
        prop_assert_eq!(again.to_bits(), warm.to_bits(), "n={} eps={} {}", n, eps, tail);
    }

    /// The acceptance reference scan carries its maximizing jump
    /// indices between probes at most 8 sizes apart (the
    /// `InversionContext::reference_worst` gate). Within that window
    /// the maximizer fraction drifts less than the climb's plateau
    /// sweep, so a warm-resumed scan must reproduce the cold
    /// breakpoint-exact scan **bit for bit** — the acceptance
    /// criterion is allowed to change cost, never bits.
    #[test]
    fn reference_scan_warm_carry_is_bit_identical(
        n0 in 16u64..4_000, eps in 0.02f64..0.3,
        tail in prop_oneof![Just(Tail::OneSided), Just(Tail::TwoSided)],
        steps in prop::collection::vec((0u64..=8, 0u32..2), 1..24),
    ) {
        let mut hint = binomial::JumpHint::cold();
        let mut n = n0;
        for &(step, up) in &steps {
            n = if up == 1 { n + step } else { n.saturating_sub(step).max(10) };
            let cold = binomial::worst_case_deviation_tail(n, eps, tail);
            let (warm, _, next) = binomial::worst_case_deviation_jump(n, eps, tail, hint, None);
            prop_assert_eq!(
                warm.to_bits(), cold.to_bits(),
                "n={} eps={} {}: warm {} vs cold {}", n, eps, tail, warm, cold
            );
            hint = next;
        }
    }

    /// ln_choose (table fast path) is symmetric and bounded by n·ln 2.
    #[test]
    fn ln_choose_symmetry(n in 1u64..100_000, t in 0.0f64..=1.0) {
        let k = ((n as f64) * t) as u64;
        let a = numeric::ln_choose(n, k);
        let b = numeric::ln_choose(n, n - k);
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "n={n} k={k}: {a} vs {b}");
        prop_assert!(a <= n as f64 * std::f64::consts::LN_2 + 1e-9);
        prop_assert!(a >= -1e-12);
    }
}

/// Deterministic spot check (outside proptest): tight bounds are between
/// half and all of the Hoeffding requirement across a realistic grid.
#[test]
fn exact_band_relative_to_hoeffding() {
    for (eps, delta) in [(0.1, 0.01), (0.05, 0.01), (0.05, 0.001)] {
        let exact = exact_binomial_sample_size(eps, delta, Tail::TwoSided).unwrap();
        let hoeff = hoeffding_sample_size(1.0, eps, delta, Tail::TwoSided).unwrap();
        assert!(exact <= hoeff);
        assert!(exact * 2 >= hoeff, "exact={exact} hoeff={hoeff}");
    }
}

//! Per-connection state machine for the event loop.
//!
//! A [`Conn`] owns a nonblocking socket plus the buffers that let it
//! make progress one readiness event at a time: an incremental
//! [`RequestParser`] on the read side, a serialized response with a
//! write offset on the write side. All socket I/O here is nonblocking
//! and bounded — the event thread never sleeps inside a connection.
//!
//! State transitions (driven by `net::mod`):
//!
//! ```text
//! KeepAliveIdle --first byte--> ReadingHead --blank line--> ReadingBody
//!       ^                                                       |
//!       |                       (no body goes straight through) |
//!       |                                                       v
//!       +-- response fully written <-- Writing <-- Dispatched --+
//!                                                   (pool job)
//! ```
//!
//! `Dispatched` turns read interest off: the connection is strictly
//! serial (one in-flight request), so bytes the peer sends early simply
//! wait in the kernel buffer — natural backpressure with no unbounded
//! buffering on our side.

use crate::http::{RequestParser, Response};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Cap on bytes read per readiness event, so one fire-hosing client
/// cannot starve the rest of the loop. Level-triggered polling re-reports
/// the descriptor immediately if more is pending.
const READ_BUDGET: usize = 64 << 10;

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Keep-alive, waiting for the next request's first byte.
    KeepAliveIdle,
    /// Part of a request head is buffered.
    ReadingHead,
    /// The head is parsed; `Content-Length` body bytes are awaited.
    ReadingBody,
    /// A request is on the worker pool; read interest is off.
    Dispatched,
    /// A response is queued and not yet fully written.
    Writing,
}

/// What one read pass produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fill {
    /// Bytes moved into the parser.
    pub bytes: usize,
    /// The peer closed its write side.
    pub eof: bool,
}

/// One connection owned by an event loop slab slot.
#[derive(Debug)]
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub state: ConnState,
    pub parser: RequestParser,
    /// Serialized response being written; drained from `written`.
    write_buf: Vec<u8>,
    written: usize,
    /// Close once `write_buf` drains (client `Connection: close`, parse
    /// error, or shutdown drain).
    pub close_after_write: bool,
    /// Monotonic per-dispatch counter; completions carry it so a late
    /// completion for an earlier (errored-out) dispatch is discarded.
    pub dispatch_gen: u64,
    /// Current timeout, if any (`None` while `Dispatched` — handler time
    /// is not the peer's fault).
    pub deadline: Option<Instant>,
    /// Earliest armed timer-wheel entry, tracked so re-arming only
    /// inserts when the deadline moved *earlier* (the wheel cancels
    /// lazily; stale entries re-arm themselves on fire).
    pub armed: Option<Instant>,
    /// Cached poller interest, to skip redundant `epoll_ctl`s.
    pub want_read: bool,
    pub want_write: bool,
    /// When the first byte of the in-progress request arrived (feeds the
    /// parse stage); taken at dispatch.
    pub request_recv: Option<Instant>,
    /// When the in-flight response was queued (feeds the response-write
    /// stage); taken when the last byte is written.
    pub write_start: Option<Instant>,
    /// Stage trace of the in-flight response, finalized when the write
    /// completes (slow-log + trace ring).
    pub trace: Option<Box<crate::obs::trace::TraceRec>>,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, now: Instant, idle_timeout: std::time::Duration) -> Conn {
        Conn {
            stream,
            state: ConnState::KeepAliveIdle,
            parser: RequestParser::new(),
            write_buf: Vec::new(),
            written: 0,
            close_after_write: false,
            dispatch_gen: 0,
            deadline: Some(now + idle_timeout),
            armed: None,
            want_read: true,
            want_write: false,
            request_recv: None,
            write_start: None,
            trace: None,
        }
    }

    /// Read whatever the socket has (bounded by [`READ_BUDGET`]) into
    /// the parser.
    ///
    /// # Errors
    ///
    /// Hard I/O failures (reset, etc.); the connection should be closed.
    pub(crate) fn fill(&mut self, scratch: &mut [u8]) -> io::Result<Fill> {
        let mut total = 0;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    return Ok(Fill {
                        bytes: total,
                        eof: true,
                    })
                }
                Ok(n) => {
                    self.parser.push(&scratch[..n]);
                    total += n;
                    if total >= READ_BUDGET {
                        return Ok(Fill {
                            bytes: total,
                            eof: false,
                        });
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(Fill {
                        bytes: total,
                        eof: false,
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Queue a response for writing. Call [`Conn::flush_write`] right
    /// after: most responses fit the socket buffer and complete without
    /// ever enabling write interest.
    pub(crate) fn queue_response(&mut self, response: &Response) {
        debug_assert!(!self.has_pending_write(), "one response at a time");
        self.write_buf = response.to_bytes();
        self.written = 0;
        self.close_after_write |= response.close;
        self.state = ConnState::Writing;
    }

    /// Push queued bytes into the socket until done or it would block.
    /// Returns `true` when the response is fully written.
    ///
    /// # Errors
    ///
    /// Hard I/O failures (peer gone); the connection should be closed.
    pub(crate) fn flush_write(&mut self) -> io::Result<bool> {
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "socket full")),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.write_buf = Vec::new();
        self.written = 0;
        Ok(true)
    }

    pub(crate) fn has_pending_write(&self) -> bool {
        self.written < self.write_buf.len()
    }

    /// Bytes of the queued response pushed into the socket so far.
    pub(crate) fn written(&self) -> usize {
        self.written
    }

    /// Sync `state` with how far the parser got while reading.
    pub(crate) fn note_read_progress(&mut self) {
        if matches!(
            self.state,
            ConnState::KeepAliveIdle | ConnState::ReadingHead | ConnState::ReadingBody
        ) {
            self.state = if !self.parser.in_request() {
                ConnState::KeepAliveIdle
            } else if self.parser.awaiting_body() {
                ConnState::ReadingBody
            } else {
                ConnState::ReadingHead
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn fill_reads_until_would_block_and_sees_eof() {
        let (server_side, client_side) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(server_side, now, std::time::Duration::from_secs(1));
        let mut scratch = vec![0u8; 4096];

        (&client_side).write_all(b"GET / HTTP/1.1\r\n").unwrap();
        // Nonblocking peer write lands quickly but not synchronously.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let mut fill = conn.fill(&mut scratch).unwrap();
        while fill.bytes == 0 && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
            fill = conn.fill(&mut scratch).unwrap();
        }
        assert_eq!(fill.bytes, 16);
        assert!(!fill.eof);

        drop(client_side);
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let mut fill = conn.fill(&mut scratch).unwrap();
        while !fill.eof && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
            fill = conn.fill(&mut scratch).unwrap();
        }
        assert!(fill.eof);
    }

    #[test]
    fn flush_write_reports_partial_progress() {
        let (server_side, client_side) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(server_side, now, std::time::Duration::from_secs(1));
        // A response far larger than any socket buffer pair.
        let big = Response {
            status: 200,
            body: vec![b'x'; 64 << 20],
            content_type: "text/plain",
            close: false,
            retry_after: None,
            trace: None,
            pending: None,
        };
        conn.queue_response(&big);
        let done = conn.flush_write().unwrap();
        assert!(!done, "64 MiB cannot fit kernel buffers");
        assert!(conn.has_pending_write());
        drop(client_side);
    }
}

//! Event-driven serving core: readiness loops that multiplex thousands
//! of keep-alive connections onto one or two threads.
//!
//! # Architecture
//!
//! ```text
//!                   ┌────────────────────────────────────────────┐
//!  clients ──TCP──▶ │ event loop 0: epoll/poll + timer wheel     │
//!                   │  listener ──▶ round-robin to loops         │
//!                   │  conns: read → RequestParser → dispatch ─┐ │
//!                   │  ▲ completions (wake pipe) ◀─────────────┼─┼── easeml-par
//!                   │  └─ write responses as sockets allow     │ │   pool workers
//!                   ├──────────────────────────────────────────┼─┤   (route/gate
//!                   │ event loop 1..N (--event-threads)        └─┼──▶ work)
//!                   └────────────────────────────────────────────┘
//! ```
//!
//! Event threads own the sockets and never block: nonblocking reads feed
//! the incremental parser, and complete requests go one of two ways,
//! chosen by [`Handler::inline`]. µs-scale requests (the overwhelming
//! majority: gate commits against a registered plan, status reads) run
//! *inline on the event thread* — zero cross-thread hops, the same
//! latency shape as a dedicated blocking thread. Expensive requests
//! (registration's plan search) are spawned onto the [`easeml_par`]
//! pool, and each worker hands its response back through a per-loop
//! completion queue plus a wake pipe (a nonblocking [`UnixStream`] pair
//! — the self-pipe trick without declaring any extra syscalls).
//! Responses are written opportunistically; what does not fit
//! the socket buffer finishes via writability events, so a slow reader
//! costs its own connection nothing but patience and other connections
//! nothing at all.
//!
//! Idle and in-request deadlines live on a per-loop timer wheel; the
//! loop sleeps in the poller exactly until the next deadline instead of
//! polling on a 50 ms clock.
//!
//! Durability ordering depends on the configured
//! [`crate::store::Durability`] mode, but the invariant the event core
//! enforces is the same in all of them: response bytes are only queued
//! once the completion is handed back. Under `strict` the journal
//! append inside the handler fsyncs before the handler returns. Under
//! `group` the handler returns immediately with a
//! [`crate::store::Waiter`] attached to the response
//! ([`Response::pending`]); the completion is deferred until the
//! group-commit flusher reports the batched fsync durable, and a failed
//! flush turns the acknowledgement into a 500 — a client never sees
//! success for state that could be lost. Under `relaxed` no waiter is
//! attached and the acknowledgement intentionally races the fsync.
//!
//! # Stale-event discipline
//!
//! Poller events carry plain slab tokens, so a token observed in the
//! current batch could outlive its connection (closed by an earlier
//! event in the same batch). Two rules make this safe: freed slots hold
//! `None` until after the batch (newly accepted sockets are adopted only
//! in the post-batch inbox sweep), and both timers and completions carry
//! the slot generation, bumped on every close.

mod conn;
mod sys;
mod timer;

use crate::http::{Request, Response};
use crate::obs::trace::{self, Stage};
use crate::obs::ServeObs;
use crate::server::{ServeStats, SHED_RETRY_AFTER_SECS};
use conn::{Conn, ConnState};
use easeml_par::PoolScope;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use sys::Poller;
use timer::TimerWheel;

/// Wire-level timing the event core hands to the handler alongside each
/// request, feeding the parse and queue stages of the request trace.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReqMeta {
    /// When the request's first byte arrived on the socket (`None` when
    /// the arrival was not observed, e.g. bytes that were already
    /// buffered behind the previous response of a pipelining peer).
    pub received: Option<Instant>,
    /// When the request was fully parsed and dispatched.
    pub parsed: Instant,
}

/// The serving layer's face to the event core: computes responses and
/// classifies requests for the inline fast path.
pub(crate) trait Handler: Sync {
    /// Compute the response for one fully parsed request.
    fn handle(&self, request: &Request, meta: &ReqMeta) -> Response;

    /// Whether `request` may run directly on the event thread instead of
    /// a pool worker. Inline execution skips the pool hand-off, the
    /// completion wake, and the scheduler hops in between — but it
    /// stalls every connection this loop owns for the handler's full
    /// duration, so only µs-scale requests should say yes.
    fn inline(&self, request: &Request) -> bool;
}

/// Reserved poller token: the wake pipe's read end.
const WAKE: usize = 0;
/// Reserved poller token: the listening socket (loop 0 only).
const LISTENER: usize = 1;
/// First token usable for connections (`slab index + TOKEN_BASE`).
const TOKEN_BASE: usize = 2;

/// Initial back-off before re-arming the listener after an accept
/// failure (typically fd exhaustion, EMFILE/ENFILE). The listener is
/// deregistered meanwhile so level-triggered readiness does not
/// busy-loop; the back-off doubles on consecutive failures up to
/// [`ACCEPT_BACKOFF_MAX`] and resets on the next successful accept.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(20);

/// Cap on the accept back-off: under sustained fd exhaustion the loop
/// retries once a second instead of spinning hotter and hotter.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// How long a stopping loop waits for dispatched/writing connections to
/// finish before abandoning them. Idle connections close immediately, so
/// shutdown latency is normally far below this.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Tunables handed down from [`crate::ServeConfig`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct NetConfig {
    /// Number of event loops (≥ 1). Loop 0 owns the listener and deals
    /// accepted connections round-robin.
    pub event_threads: usize,
    /// Close a keep-alive connection after this long without a request.
    pub idle_timeout: Duration,
    /// Budget from a request's first byte to its fully parsed form; also
    /// reused as the no-write-progress window for queued responses.
    pub request_timeout: Duration,
}

/// Wakes every event loop: used by [`crate::ServerHandle::stop`] and the
/// `/admin/shutdown` route. Writers are registered by [`serve`] as loops
/// start; waking before then is a no-op (covered by the connect poke).
#[derive(Debug, Default)]
pub(crate) struct WakeHub {
    writers: Mutex<Vec<UnixStream>>,
}

impl WakeHub {
    pub(crate) fn new() -> WakeHub {
        WakeHub::default()
    }

    fn register(&self, writer: UnixStream) {
        self.writers.lock().expect("wake hub poisoned").push(writer);
    }

    /// Write one byte to every loop's wake pipe. Errors (full pipe =
    /// wake already pending; closed pipe = loop already exited) are
    /// exactly the cases where no wake is needed.
    pub(crate) fn wake_all(&self) {
        for writer in self.writers.lock().expect("wake hub poisoned").iter() {
            let _ = (&*writer).write(&[1]);
        }
    }
}

/// A finished request: the worker's response, addressed back to the
/// connection that dispatched it. Generations make late completions for
/// a recycled slot or an abandoned dispatch harmless.
#[derive(Debug)]
struct Completion {
    token: usize,
    generation: u64,
    dispatch_gen: u64,
    response: Response,
}

/// The cross-thread face of one event loop: the completion queue workers
/// push onto, the inbox loop 0 deals accepted sockets into, and the
/// write end of the loop's wake pipe.
#[derive(Debug)]
struct LoopShared {
    completions: Mutex<Vec<Completion>>,
    inbox: Mutex<Vec<TcpStream>>,
    waker: UnixStream,
}

impl LoopShared {
    fn wake(&self) {
        // Nonblocking; a full pipe already guarantees a pending wake.
        let _ = (&self.waker).write(&[1]);
    }

    fn push_completion(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completions poisoned")
            .push(completion);
    }
}

/// Queue `response` for its connection once it is safe to release.
///
/// With nothing pending (strict/relaxed durability, reads, errors) the
/// completion is pushed immediately — `wake` says whether the caller is
/// off the event thread and must poke the wake pipe. With a group-commit
/// [`crate::store::Waiter`] attached, the push is deferred into the
/// waiter's completion callback: the flusher thread runs it once the
/// batched fsync covering this request's journal bytes has returned, and
/// a failed flush converts the acknowledgement into a 500 (feeding the
/// durable-failure streak) — the client must never see success for state
/// the disk did not accept.
fn release_when_durable(
    shared: Arc<LoopShared>,
    stats: Arc<ServeStats>,
    token: usize,
    generation: u64,
    dispatch_gen: u64,
    mut response: Response,
    wake: bool,
) {
    let Some(waiter) = response.pending.take() else {
        shared.push_completion(Completion {
            token,
            generation,
            dispatch_gen,
            response,
        });
        if wake {
            shared.wake();
        }
        return;
    };
    waiter.on_complete(move |result| {
        let response = match result {
            Ok(()) => response,
            Err(message) => {
                stats.note_durable_failure();
                let mut failed = Response::error_with_reason(500, "durable_write_failed", &message);
                failed.close = response.close;
                failed.trace = response.trace;
                if let Some(trace) = failed.trace.as_mut() {
                    trace.status = failed.status;
                }
                failed
            }
        };
        shared.push_completion(Completion {
            token,
            generation,
            dispatch_gen,
            response,
        });
        // Usually delivered from the flusher thread; when the waiter had
        // already resolved the callback ran inline on the caller and the
        // wake byte is merely redundant.
        shared.wake();
    });
}

/// One slab slot. `generation` increments when the slot is freed, so
/// timers and completions addressed to a previous occupant are ignored.
#[derive(Debug)]
struct Slot {
    generation: u64,
    conn: Option<Conn>,
}

/// Run the event-driven serving core until `stop` is set and the drain
/// completes. Called inside an [`easeml_par::Pool::scope`]; request
/// handling is spawned onto `scope` and `handler` computes the response.
///
/// # Errors
///
/// Fatal setup failures (poller or wake-pipe creation, listener
/// registration). Per-connection failures close that connection only.
#[allow(clippy::too_many_arguments)] // the event core's full wiring, called once
pub(crate) fn serve<'env>(
    listener: TcpListener,
    cfg: &NetConfig,
    scope: &PoolScope<'_, 'env>,
    stop: &'env AtomicBool,
    hub: &WakeHub,
    handler: &'env dyn Handler,
    stats: &Arc<ServeStats>,
    obs: &Arc<ServeObs>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let loops = cfg.event_threads.max(1);
    let mut shared = Vec::with_capacity(loops);
    let mut readers = Vec::with_capacity(loops);
    for _ in 0..loops {
        let (reader, writer) = UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        hub.register(writer.try_clone()?);
        shared.push(Arc::new(LoopShared {
            completions: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
            waker: writer,
        }));
        readers.push(reader);
    }
    let peers: Arc<[Arc<LoopShared>]> = shared.into();

    // Build every loop up front so all fallible setup (poller creation,
    // listener registration) happens before any thread exists — a setup
    // error can simply propagate without stranding running loops.
    let mut event_loops = Vec::with_capacity(loops);
    let mut listener = Some(listener);
    for (index, reader) in readers.into_iter().enumerate() {
        let own_listener = if index == 0 { listener.take() } else { None };
        event_loops.push(EventLoop::new(
            index,
            reader,
            own_listener,
            cfg,
            &peers,
            stats,
            obs,
        )?);
    }

    std::thread::scope(|ts| {
        let secondary: Vec<_> = event_loops
            .split_off(1)
            .into_iter()
            .map(|event_loop| ts.spawn(move || event_loop.run(scope, stop, handler)))
            .collect();
        let primary = event_loops.pop().expect("loop 0").run(scope, stop, handler);
        // However loop 0 exited, make sure the others stop too so the
        // thread scope's implicit join cannot hang.
        stop.store(true, Ordering::SeqCst);
        for peer in peers.iter() {
            peer.wake();
        }
        for join in secondary {
            if let Err(e) = join.join().expect("event loop panicked") {
                eprintln!("warning: event loop exited with error: {e}");
            }
        }
        primary
    })
}

/// One readiness loop: poller + timer wheel + connection slab.
struct EventLoop<'p> {
    index: usize,
    poller: Poller,
    wheel: TimerWheel,
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
    wake: UnixStream,
    listener: Option<TcpListener>,
    listener_paused: bool,
    cfg: NetConfig,
    peers: &'p [Arc<LoopShared>],
    /// Round-robin cursor for dealing accepted connections (loop 0).
    next_peer: usize,
    scratch: Vec<u8>,
    draining: bool,
    drain_deadline: Instant,
    stats: Arc<ServeStats>,
    obs: Arc<ServeObs>,
    /// Current accept back-off (exponential between [`ACCEPT_BACKOFF`]
    /// and [`ACCEPT_BACKOFF_MAX`]; reset by a successful accept).
    accept_backoff: Duration,
}

/// What a fired connection deadline calls for, decided under the slab
/// borrow and acted on after it.
enum TimeoutAction {
    Nothing,
    Rearm,
    CloseQuietly,
    FailTimedOut,
    ProbeWrite,
}

impl<'p> EventLoop<'p> {
    fn new(
        index: usize,
        wake: UnixStream,
        listener: Option<TcpListener>,
        cfg: &NetConfig,
        peers: &'p [Arc<LoopShared>],
        stats: &Arc<ServeStats>,
        obs: &Arc<ServeObs>,
    ) -> io::Result<EventLoop<'p>> {
        let mut poller = Poller::new()?;
        poller.register(wake.as_raw_fd(), WAKE, true, false)?;
        if let Some(listener) = &listener {
            poller.register(listener.as_raw_fd(), LISTENER, true, false)?;
        }
        let now = Instant::now();
        Ok(EventLoop {
            index,
            poller,
            wheel: TimerWheel::new(now),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            wake,
            listener,
            listener_paused: false,
            cfg: *cfg,
            peers,
            next_peer: 0,
            scratch: vec![0u8; 16 << 10],
            draining: false,
            drain_deadline: now,
            stats: Arc::clone(stats),
            obs: Arc::clone(obs),
            accept_backoff: ACCEPT_BACKOFF,
        })
    }

    fn run<'env>(
        mut self,
        scope: &PoolScope<'_, 'env>,
        stop: &'env AtomicBool,
        handler: &'env dyn Handler,
    ) -> io::Result<()> {
        let mut events = Vec::with_capacity(1024);
        let mut fired = Vec::new();
        loop {
            let now = Instant::now();
            if stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain(now);
            }
            if self.draining && (self.live == 0 || now >= self.drain_deadline) {
                return Ok(());
            }
            let mut timeout = self.wheel.next_deadline(now);
            if self.draining {
                let left = self.drain_deadline.saturating_duration_since(now);
                timeout = Some(timeout.map_or(left, |t| t.min(left)));
            }
            events.clear();
            self.poller.wait(&mut events, timeout)?;
            self.obs.metrics.loop_polls_total.inc();
            if !events.is_empty() {
                self.obs
                    .metrics
                    .loop_ready_events_total
                    .add(events.len() as u64);
                self.obs
                    .metrics
                    .loop_ready_batch
                    .record(events.len() as u64);
            }
            let now = Instant::now();
            for event in &events {
                match event.token {
                    WAKE => {
                        self.obs.metrics.loop_wakeups_total.inc();
                        self.drain_wake_pipe();
                    }
                    LISTENER => self.accept_ready(stop),
                    token => self.conn_event(
                        token - TOKEN_BASE,
                        event.readable,
                        event.writable,
                        event.hangup,
                        now,
                        scope,
                        handler,
                    ),
                }
            }
            fired.clear();
            self.wheel.expire(now, &mut fired);
            for f in fired.drain(..) {
                self.timer_fired(f, now, scope, handler);
            }
            self.apply_completions(now, scope, handler);
            self.adopt_inbox(now);
        }
    }

    /// Stop accepting, close idle connections, let in-flight requests
    /// and pending writes finish (bounded by [`DRAIN_GRACE`]).
    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline = now + DRAIN_GRACE;
        if let Some(listener) = self.listener.take() {
            if !self.listener_paused {
                let _ = self.poller.deregister(listener.as_raw_fd());
            }
        }
        for index in 0..self.slots.len() {
            let close_now = match self.slots[index].conn.as_mut() {
                None => false,
                Some(conn) => match conn.state {
                    ConnState::KeepAliveIdle | ConnState::ReadingHead | ConnState::ReadingBody => {
                        true
                    }
                    ConnState::Dispatched | ConnState::Writing => {
                        conn.close_after_write = true;
                        false
                    }
                },
            };
            if close_now {
                self.close(index);
            }
        }
    }

    fn drain_wake_pipe(&mut self) {
        loop {
            match self.wake.read(&mut self.scratch) {
                // EOF cannot occur while the hub holds writer clones;
                // treat it like "drained" if it ever does.
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Accept everything pending. Sockets go through the per-loop
    /// inboxes — including this loop's own — so slab slots freed during
    /// the current event batch are never refilled mid-batch (see the
    /// module docs on stale events).
    fn accept_ready(&mut self, stop: &AtomicBool) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF;
                    if stop.load(Ordering::SeqCst) {
                        continue; // accepted mid-shutdown: drop closes it
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.obs.metrics.connections_accepted_total.inc();
                    let target = self.next_peer % self.peers.len();
                    self.next_peer = self.next_peer.wrapping_add(1);
                    self.peers[target]
                        .inbox
                        .lock()
                        .expect("inbox poisoned")
                        .push(stream);
                    self.obs.metrics.loop_inbox_depth.add(1);
                    if target != self.index {
                        self.peers[target].wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // A connection that died in the backlog (ECONNABORTED /
                // reset-before-accept) says nothing about *our* health;
                // keep draining the queue.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted | io::ErrorKind::ConnectionReset
                    ) => {}
                Err(_) => {
                    self.obs.metrics.accept_errors_total.inc();
                    // Likely fd exhaustion (EMFILE/ENFILE). Unhook the
                    // listener so level-triggered readiness stops firing
                    // — the alternative is a busy-spin at 100% CPU — and
                    // let the timer wheel re-arm it once connections
                    // have freed descriptors. Consecutive failures back
                    // off exponentially up to [`ACCEPT_BACKOFF_MAX`].
                    if !self.listener_paused {
                        let fd = self.listener.as_ref().expect("checked above").as_raw_fd();
                        let _ = self.poller.deregister(fd);
                        self.listener_paused = true;
                    }
                    self.wheel
                        .insert(Instant::now() + self.accept_backoff, LISTENER, 0);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    return;
                }
            }
        }
    }

    /// Take ownership of an accepted connection: slab slot, poller
    /// registration, idle deadline.
    fn adopt(&mut self, stream: TcpStream, now: Instant) {
        if self.draining {
            return; // dropping the stream closes it
        }
        let index = self.free.pop().unwrap_or_else(|| {
            self.slots.push(Slot {
                generation: 0,
                conn: None,
            });
            self.slots.len() - 1
        });
        let fd = stream.as_raw_fd();
        if self
            .poller
            .register(fd, index + TOKEN_BASE, true, false)
            .is_err()
        {
            self.free.push(index);
            return;
        }
        self.slots[index].conn = Some(Conn::new(stream, now, self.cfg.idle_timeout));
        self.live += 1;
        self.obs.metrics.connections_open.add(1);
        self.arm_timer(index);
    }

    fn adopt_inbox(&mut self, now: Instant) {
        let streams = std::mem::take(&mut *self.shared().inbox.lock().expect("inbox poisoned"));
        if !streams.is_empty() {
            let n = streams.len() as u64;
            self.obs.metrics.loop_inbox_adopted_total.add(n);
            self.obs
                .metrics
                .loop_inbox_depth
                .add(-(streams.len() as i64));
        }
        for stream in streams {
            self.adopt(stream, now);
        }
    }

    fn shared(&self) -> &LoopShared {
        &self.peers[self.index]
    }

    fn shared_arc(&self) -> &Arc<LoopShared> {
        &self.peers[self.index]
    }

    /// Insert a wheel entry if the connection's deadline moved earlier
    /// than whatever is already armed. Stale entries cancel lazily.
    fn arm_timer(&mut self, index: usize) {
        let generation = self.slots[index].generation;
        let Some(conn) = self.slots[index].conn.as_mut() else {
            return;
        };
        let Some(deadline) = conn.deadline else {
            return;
        };
        if conn.armed.is_none_or(|armed| armed > deadline) {
            conn.armed = Some(deadline);
            self.wheel.insert(deadline, index + TOKEN_BASE, generation);
        }
    }

    fn timer_fired<'env>(
        &mut self,
        fired: timer::Fired,
        now: Instant,
        scope: &PoolScope<'_, 'env>,
        handler: &'env dyn Handler,
    ) {
        self.obs.metrics.loop_timer_fires_total.inc();
        if fired.token == LISTENER {
            self.resume_listener(now);
            return;
        }
        let index = fired.token - TOKEN_BASE;
        let action = {
            let Some(slot) = self.slots.get_mut(index) else {
                return;
            };
            if slot.generation != fired.generation {
                return;
            }
            let Some(conn) = slot.conn.as_mut() else {
                return;
            };
            conn.armed = None;
            match conn.deadline {
                None => TimeoutAction::Nothing,
                Some(deadline) if now < deadline => TimeoutAction::Rearm,
                Some(_) => match conn.state {
                    // Idle past the keep-alive window: close.
                    ConnState::KeepAliveIdle => TimeoutAction::CloseQuietly,
                    // A queued response with no *observed* progress for a
                    // whole window: probe before giving up on the peer.
                    ConnState::Writing => TimeoutAction::ProbeWrite,
                    ConnState::ReadingHead | ConnState::ReadingBody => TimeoutAction::FailTimedOut,
                    ConnState::Dispatched => TimeoutAction::Nothing,
                },
            }
        };
        match action {
            TimeoutAction::Nothing => {}
            TimeoutAction::Rearm => self.arm_timer(index),
            TimeoutAction::CloseQuietly => self.close(index),
            // Stalled mid-request past the full-request budget — the
            // same 400 the blocking server sent.
            TimeoutAction::FailTimedOut => {
                self.obs.metrics.request_timeouts_total.inc();
                self.fail_request(index, now, "request timed out");
            }
            TimeoutAction::ProbeWrite => self.probe_write(index, now, scope, handler),
        }
    }

    /// A `Writing` connection's progress window expired without a
    /// writable event. That alone does not condemn the peer: the poller
    /// reports writability only once a sizeable fraction of the kernel
    /// send buffer is free, so a slowly-but-steadily draining reader can
    /// go unseen for many seconds. Probe with an actual write — it
    /// succeeds with *any* free buffer space — and close only if nothing
    /// whatsoever drained over the whole window.
    fn probe_write<'env>(
        &mut self,
        index: usize,
        now: Instant,
        scope: &PoolScope<'_, 'env>,
        handler: &'env dyn Handler,
    ) {
        let request_timeout = self.cfg.request_timeout;
        let before = self.conn_mut(index).written();
        match self.conn_mut(index).flush_write() {
            Err(_) => self.close(index),
            Ok(true) => self.finish_response(index, now, scope, handler),
            Ok(false) => {
                if self.conn_mut(index).written() > before {
                    let conn = self.conn_mut(index);
                    conn.deadline = Some(now + request_timeout);
                    self.arm_timer(index);
                } else {
                    self.close(index);
                }
            }
        }
    }

    fn resume_listener(&mut self, now: Instant) {
        if !self.listener_paused || self.draining {
            return;
        }
        let Some(listener) = &self.listener else {
            return;
        };
        if self
            .poller
            .register(listener.as_raw_fd(), LISTENER, true, false)
            .is_ok()
        {
            self.listener_paused = false;
        } else {
            self.wheel.insert(now + self.accept_backoff, LISTENER, 0);
            self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn conn_event<'env>(
        &mut self,
        index: usize,
        readable: bool,
        writable: bool,
        hangup: bool,
        now: Instant,
        scope: &PoolScope<'_, 'env>,
        handler: &'env dyn Handler,
    ) {
        if self.state_of(index).is_none() {
            return; // closed earlier in this batch
        }
        if hangup && !readable && !writable {
            self.close(index);
            return;
        }
        if writable && self.state_of(index) == Some(ConnState::Writing) {
            match self.conn_mut(index).flush_write() {
                Err(_) => {
                    self.close(index);
                    return;
                }
                Ok(true) => self.finish_response(index, now, scope, handler),
                Ok(false) => {
                    // Progress was made; extend the write window.
                    self.conn_mut(index).deadline = Some(now + self.cfg.request_timeout);
                    self.arm_timer(index);
                }
            }
        }
        let Some(state) = self.state_of(index) else {
            return; // finish_response closed it
        };
        if readable && state != ConnState::Dispatched {
            let conn = self.slots[index].conn.as_mut().expect("state checked");
            let was_between_requests = !conn.parser.in_request();
            let fill = match conn.fill(&mut self.scratch) {
                Ok(fill) => fill,
                Err(_) => {
                    self.close(index);
                    return;
                }
            };
            if fill.bytes > 0 && was_between_requests {
                // First observed bytes of a new request start the parse
                // clock (taken by dispatch, feeds the parse stage).
                conn.request_recv = Some(now);
            }
            if fill.bytes > 0 || fill.eof {
                self.advance(index, now, fill.eof, was_between_requests, scope, handler);
            }
            if fill.eof {
                if let Some(conn) = self.slots[index].conn.as_mut() {
                    // EOF is permanently readable under level-triggered
                    // polling: drop read interest or spin. The response
                    // in flight (if any) can still be written.
                    conn.close_after_write = true;
                    let write = conn.has_pending_write();
                    self.set_interest(index, false, write);
                }
            }
        }
    }

    fn state_of(&self, index: usize) -> Option<ConnState> {
        self.slots.get(index)?.conn.as_ref().map(|c| c.state)
    }

    fn conn_mut(&mut self, index: usize) -> &mut Conn {
        self.slots[index].conn.as_mut().expect("live connection")
    }

    /// Drive the parser after new bytes (or EOF): dispatch a completed
    /// request, update the reading state and deadlines, or fail the
    /// connection on protocol errors / mid-request abandonment.
    fn advance<'env>(
        &mut self,
        index: usize,
        now: Instant,
        eof: bool,
        was_between_requests: bool,
        scope: &PoolScope<'_, 'env>,
        handler: &'env dyn Handler,
    ) {
        let conn = self.conn_mut(index);
        if matches!(conn.state, ConnState::Dispatched | ConnState::Writing) {
            // Strictly serial per connection: bytes for the next request
            // wait in the parser until the current response completes.
            return;
        }
        match conn.parser.next_request() {
            Err(e) => {
                let message = e.to_string();
                self.fail_request(index, now, &message);
            }
            Ok(Some(request)) => {
                self.dispatch(index, request, scope, handler);
            }
            Ok(None) => {
                if eof {
                    // Clean close between requests, or an abandoned
                    // partial request: either way the connection is done.
                    self.close(index);
                    return;
                }
                let request_timeout = self.cfg.request_timeout;
                let conn = self.conn_mut(index);
                conn.note_read_progress();
                if was_between_requests && conn.state != ConnState::KeepAliveIdle {
                    // First byte of a new request starts the request
                    // clock (idle clock was running until now).
                    conn.deadline = Some(now + request_timeout);
                    self.arm_timer(index);
                }
            }
        }
    }

    /// Hand a parsed request to the worker pool — or, when the handler
    /// classifies it as cheap, run it inline right here on the event
    /// thread. Read interest goes off until the response is done — the
    /// kernel socket buffer provides the backpressure, not an unbounded
    /// user-space queue.
    fn dispatch<'env>(
        &mut self,
        index: usize,
        request: Request,
        scope: &PoolScope<'_, 'env>,
        handler: &'env dyn Handler,
    ) {
        let generation = self.slots[index].generation;
        let token = index + TOKEN_BASE;
        let conn = self.conn_mut(index);
        conn.state = ConnState::Dispatched;
        conn.deadline = None;
        conn.dispatch_gen += 1;
        let dispatch_gen = conn.dispatch_gen;
        let close = request.close;
        let meta = ReqMeta {
            received: conn.request_recv.take(),
            parsed: Instant::now(),
        };
        self.set_interest(index, false, false);
        if handler.inline(&request) {
            self.obs.metrics.dispatch_inline_total.inc();
            // Inline fast path: a µs-scale request pays no pool
            // hand-off, no wake pipe, no scheduler hops. The completion
            // still goes through the queue — the run loop drains it
            // unconditionally after every event batch, and
            // `apply_completions` re-takes the batch after each apply,
            // so completions produced mid-sweep (the pipelining path)
            // drain in the same call. No wake byte is needed here: we
            // *are* the thread that drains — unless group-commit
            // durability defers the release to the flusher thread, in
            // which case the waiter callback wakes us.
            let mut response = handler.handle(&request, &meta);
            response.close = close;
            release_when_durable(
                Arc::clone(self.shared_arc()),
                Arc::clone(&self.stats),
                token,
                generation,
                dispatch_gen,
                response,
                false,
            );
            return;
        }
        // Bounded admission for pool-bound work: past `max_inflight`
        // concurrently admitted requests, shed with 503 + Retry-After
        // instead of queueing without bound. The connection stays open
        // (keep-alive) — the *request* is refused, not the client; a
        // well-behaved client backs off and lands in the next window.
        self.obs.metrics.dispatch_pool_total.inc();
        if !self.stats.try_admit() {
            let mut response = Response::error_with_reason(
                503,
                "shed",
                "server is at capacity (registration queue full); retry shortly",
            )
            .with_retry_after(SHED_RETRY_AFTER_SECS);
            response.close = close;
            self.shared()
                .completions
                .lock()
                .expect("completions poisoned")
                .push(Completion {
                    token,
                    generation,
                    dispatch_gen,
                    response,
                });
            return;
        }
        let shared = Arc::clone(&self.peers[self.index]);
        let stats = Arc::clone(&self.stats);
        // With a single-thread pool this runs inline, right here on the
        // event thread; the completion is applied in this same loop
        // iteration's `apply_completions` sweep.
        scope.spawn(move || {
            let mut response = handler.handle(&request, &meta);
            stats.release();
            response.close = close;
            release_when_durable(
                shared,
                stats,
                token,
                generation,
                dispatch_gen,
                response,
                true,
            );
        });
    }

    /// Apply responses handed back by workers. Loops because applying a
    /// completion can (on the inline single-thread pool) synchronously
    /// produce another one via the pipelining path.
    fn apply_completions<'env>(
        &mut self,
        now: Instant,
        scope: &PoolScope<'_, 'env>,
        handler: &'env dyn Handler,
    ) {
        loop {
            let batch = std::mem::take(
                &mut *self
                    .shared()
                    .completions
                    .lock()
                    .expect("completions poisoned"),
            );
            if batch.is_empty() {
                return;
            }
            for completion in batch {
                let index = completion.token - TOKEN_BASE;
                let ready = {
                    let Some(slot) = self.slots.get_mut(index) else {
                        continue;
                    };
                    slot.generation == completion.generation
                        && slot.conn.as_ref().is_some_and(|conn| {
                            conn.state == ConnState::Dispatched
                                && conn.dispatch_gen == completion.dispatch_gen
                        })
                };
                if !ready {
                    continue; // connection died while the worker ran
                }
                let request_timeout = self.cfg.request_timeout;
                let mut response = completion.response;
                let trace_rec = response.trace.take();
                let conn = self.conn_mut(index);
                conn.queue_response(&response);
                conn.trace = trace_rec;
                conn.write_start = Some(Instant::now());
                conn.deadline = Some(now + request_timeout);
                self.settle_response(index, now, scope, handler);
            }
        }
    }

    /// Push a freshly queued response out as far as the socket allows.
    fn settle_response<'env>(
        &mut self,
        index: usize,
        now: Instant,
        scope: &PoolScope<'_, 'env>,
        handler: &'env dyn Handler,
    ) {
        match self.conn_mut(index).flush_write() {
            Err(_) => self.close(index),
            Ok(true) => self.finish_response(index, now, scope, handler),
            Ok(false) => {
                // Finish via writability events. Keep reading: a
                // pipelining peer may already be sending the next
                // request, and ignoring readable would busy-loop.
                let read = !self.conn_mut(index).close_after_write;
                if self.set_interest(index, read, true) {
                    self.arm_timer(index);
                }
            }
        }
    }

    /// A response finished writing: close, or return to keep-alive and
    /// immediately serve any pipelined request already buffered.
    fn finish_response<'env>(
        &mut self,
        index: usize,
        now: Instant,
        scope: &PoolScope<'_, 'env>,
        handler: &'env dyn Handler,
    ) {
        self.note_response_written(index);
        if self.conn_mut(index).close_after_write || self.draining {
            self.close(index);
            return;
        }
        let idle_timeout = self.cfg.idle_timeout;
        let conn = self.conn_mut(index);
        conn.state = ConnState::KeepAliveIdle;
        conn.deadline = Some(now + idle_timeout);
        if !self.set_interest(index, true, false) {
            return;
        }
        self.arm_timer(index);
        // Pipelined bytes already in the parser generate no further
        // readiness events; parse them now.
        self.advance(index, now, false, true, scope, handler);
    }

    /// The queued response's last byte hit the socket: record the
    /// response-write stage and finalize the request's trace — feed the
    /// stage histogram, and when the traced total crosses the
    /// `--slow-request-ms` threshold, emit one structured slow-log line
    /// and push the trace onto the in-memory ring (`GET /admin/trace`).
    fn note_response_written(&mut self, index: usize) {
        let conn = self.conn_mut(index);
        let write_ns = conn
            .write_start
            .take()
            .map_or(0, |start| trace::ns(start.elapsed()));
        let Some(mut rec) = conn.trace.take() else {
            return;
        };
        rec.stages_ns[Stage::ResponseWrite.index()] = write_ns;
        if write_ns > 0 {
            self.obs
                .metrics
                .stage(Stage::ResponseWrite)
                .record(write_ns);
        }
        if rec.total_ns() >= self.obs.slow_ns() {
            self.obs.metrics.slow_requests_total.inc();
            eprintln!("{}", rec.slow_log_line());
            self.obs.ring.push(*rec);
        }
    }

    /// Protocol failure: queue the 400, close once it is written.
    fn fail_request(&mut self, index: usize, now: Instant, message: &str) {
        let mut response = Response::error(400, message);
        response.close = true;
        let request_timeout = self.cfg.request_timeout;
        let conn = self.conn_mut(index);
        conn.queue_response(&response);
        conn.deadline = Some(now + request_timeout);
        match self.conn_mut(index).flush_write() {
            Err(_) | Ok(true) => self.close(index),
            Ok(false) => {
                if self.set_interest(index, false, true) {
                    self.arm_timer(index);
                }
            }
        }
    }

    /// Reconcile poller interest with what the connection needs now.
    /// Returns `false` if the connection had to be closed.
    fn set_interest(&mut self, index: usize, read: bool, write: bool) -> bool {
        let token = index + TOKEN_BASE;
        let Some(conn) = self.slots[index].conn.as_mut() else {
            return false;
        };
        if conn.want_read == read && conn.want_write == write {
            return true;
        }
        conn.want_read = read;
        conn.want_write = write;
        let fd = conn.stream.as_raw_fd();
        if self.poller.modify(fd, token, read, write).is_ok() {
            true
        } else {
            self.close(index);
            false
        }
    }

    fn close(&mut self, index: usize) {
        let Some(conn) = self.slots[index].conn.take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.slots[index].generation += 1;
        self.free.push(index);
        self.live -= 1;
        self.obs.metrics.connections_closed_total.inc();
        self.obs.metrics.connections_open.add(-1);
    }
}

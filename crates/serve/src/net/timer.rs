//! Hashed timer wheel for connection deadlines.
//!
//! The old server enforced idle/request timeouts by waking every 50 ms
//! per connection and checking the clock — fine for eight connections,
//! pure overhead for a thousand. The event loop instead keeps one armed
//! wheel entry per connection and sleeps in `epoll_wait` exactly until
//! the earliest deadline.
//!
//! Design choices, all in service of cheap arming:
//!
//! * **Coarse ticks** (16 ms). Timeouts here are hundreds of
//!   milliseconds to tens of seconds; firing one tick late is harmless,
//!   and a coarse tick keeps the wheel small (256 slots ≈ 4 s horizon).
//! * **Lazy cancellation.** Entries carry the connection's slab
//!   generation; a stale entry (connection closed or its deadline
//!   re-armed) is dropped when its slot comes up instead of being
//!   searched for at cancel time. The caller re-checks the *actual*
//!   deadline on fire, so a premature fire (entry armed before the
//!   deadline was pushed out by new activity) just re-inserts.
//! * **Far deadlines park in the overflow list** and are re-hashed into
//!   the wheel as their slot horizon arrives.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Width of one wheel slot. Deadlines fire at most one tick late.
pub(crate) const TICK: Duration = Duration::from_millis(16);

const SLOTS: usize = 256;

#[derive(Debug, Clone, Copy)]
struct Entry {
    tick: u64,
    token: usize,
    generation: u64,
}

/// A fired deadline: the caller compares `generation` against the live
/// slab slot and ignores the fire if they disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fired {
    /// Token the deadline was armed under.
    pub token: usize,
    /// Slab generation at arming time.
    pub generation: u64,
}

/// Hashed wheel: 256 slots of [`TICK`] width plus an overflow list.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    origin: Instant,
    /// Tick currently being swept; every earlier tick is fully swept.
    /// Kept *on* (not past) the latest swept tick so a deadline armed
    /// mid-tick still lands in a sweepable slot.
    cursor: u64,
    slots: Vec<Vec<Entry>>,
    overflow: Vec<Entry>,
    /// Min-heap of the tick of every armed entry, so the next-deadline
    /// query is O(1) instead of a scan of every slot — the scan is what
    /// an event loop with thousands of parked idle connections would
    /// otherwise pay on *every* iteration. Ticks already swept are
    /// popped lazily at the end of [`TimerWheel::expire`].
    candidates: BinaryHeap<Reverse<u64>>,
    len: usize,
}

impl TimerWheel {
    pub(crate) fn new(origin: Instant) -> TimerWheel {
        TimerWheel {
            origin,
            cursor: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            candidates: BinaryHeap::new(),
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.origin).as_nanos() / TICK.as_nanos()) as u64
    }

    /// Arm a deadline. Deadlines already in the past land in the current
    /// tick and fire on the next [`TimerWheel::expire`] call.
    pub(crate) fn insert(&mut self, deadline: Instant, token: usize, generation: u64) {
        let tick = self.tick_of(deadline).max(self.cursor);
        let entry = Entry {
            tick,
            token,
            generation,
        };
        if tick >= self.cursor + SLOTS as u64 {
            self.overflow.push(entry);
        } else {
            self.slots[(tick % SLOTS as u64) as usize].push(entry);
        }
        self.candidates.push(Reverse(tick));
        self.len += 1;
    }

    /// Sweep every slot up to `now`, pushing fired entries into `out`.
    pub(crate) fn expire(&mut self, now: Instant, out: &mut Vec<Fired>) {
        let now_tick = self.tick_of(now);
        while self.cursor <= now_tick {
            let slot = (self.cursor % SLOTS as u64) as usize;
            let mut kept = 0;
            for i in 0..self.slots[slot].len() {
                let entry = self.slots[slot][i];
                if entry.tick <= now_tick {
                    out.push(Fired {
                        token: entry.token,
                        generation: entry.generation,
                    });
                    self.len -= 1;
                } else {
                    // A future lap of the wheel; keep in place.
                    self.slots[slot][kept] = entry;
                    kept += 1;
                }
            }
            self.slots[slot].truncate(kept);
            if self.cursor == now_tick {
                break; // stay on the current tick for late arms
            }
            self.cursor += 1;
            if self.cursor.is_multiple_of(SLOTS as u64) {
                self.rehash_overflow();
            }
        }
        // Every entry with a tick at or before `now_tick` just fired;
        // their next-deadline candidates are dead weight.
        while self
            .candidates
            .peek()
            .is_some_and(|&Reverse(t)| t <= now_tick)
        {
            self.candidates.pop();
        }
    }

    /// Pull overflow entries whose tick now fits inside the wheel
    /// horizon back into their slots.
    fn rehash_overflow(&mut self) {
        let horizon = self.cursor + SLOTS as u64;
        let mut kept = 0;
        for i in 0..self.overflow.len() {
            let entry = self.overflow[i];
            if entry.tick < horizon {
                self.slots[(entry.tick % SLOTS as u64) as usize].push(entry);
            } else {
                self.overflow[kept] = entry;
                kept += 1;
            }
        }
        self.overflow.truncate(kept);
    }

    /// How long the event loop may sleep before the next entry is due.
    /// `None` when the wheel is empty (sleep until I/O). The bound is
    /// conservative (slot-granular): sleeping exactly to it and calling
    /// [`TimerWheel::expire`] fires everything due.
    pub(crate) fn next_deadline(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        // The heap top is the earliest tick that may still hold a live
        // entry (swept ticks were popped by `expire`); a stale top only
        // costs one early wakeup, never a missed deadline.
        let Reverse(tick) = *self.candidates.peek()?;
        // End of the due tick, relative to `now`.
        let due = self.origin + TICK * (tick as u32 + 1);
        Some(due.saturating_duration_since(now))
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_order_and_only_once() {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin);
        wheel.insert(origin + Duration::from_millis(40), 1, 10);
        wheel.insert(origin + Duration::from_millis(200), 2, 20);

        let mut fired = Vec::new();
        wheel.expire(origin + Duration::from_millis(100), &mut fired);
        assert_eq!(
            fired,
            vec![Fired {
                token: 1,
                generation: 10
            }]
        );
        assert_eq!(wheel.len(), 1);

        fired.clear();
        wheel.expire(origin + Duration::from_millis(300), &mut fired);
        assert_eq!(
            fired,
            vec![Fired {
                token: 2,
                generation: 20
            }]
        );
        assert_eq!(wheel.len(), 0);

        fired.clear();
        wheel.expire(origin + Duration::from_secs(60), &mut fired);
        assert!(fired.is_empty());
    }

    #[test]
    fn far_deadlines_survive_the_overflow_list() {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin);
        // Far beyond the 256-slot horizon (~4 s at 16 ms ticks).
        wheel.insert(origin + Duration::from_secs(30), 9, 1);
        let mut fired = Vec::new();
        wheel.expire(origin + Duration::from_secs(29), &mut fired);
        assert!(fired.is_empty());
        wheel.expire(origin + Duration::from_secs(31), &mut fired);
        assert_eq!(
            fired,
            vec![Fired {
                token: 9,
                generation: 1
            }]
        );
    }

    #[test]
    fn next_deadline_bounds_the_sleep() {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin);
        assert_eq!(wheel.next_deadline(origin), None);
        wheel.insert(origin + Duration::from_millis(500), 4, 2);
        let sleep = wheel.next_deadline(origin).unwrap();
        // Sleeping the advertised bound must reach the deadline.
        assert!(sleep >= Duration::from_millis(500), "sleep {sleep:?}");
        // And not oversleep by more than a tick's slack.
        assert!(
            sleep <= Duration::from_millis(500) + 2 * TICK,
            "sleep {sleep:?}"
        );
        let mut fired = Vec::new();
        wheel.expire(origin + sleep, &mut fired);
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin);
        let now = origin + Duration::from_secs(1);
        let mut fired = Vec::new();
        wheel.expire(now, &mut fired); // advance cursor past origin
        wheel.insert(origin, 5, 3); // deadline already behind the cursor
        fired.clear();
        wheel.expire(now, &mut fired);
        assert_eq!(
            fired,
            vec![Fired {
                token: 5,
                generation: 3
            }]
        );
    }
}

//! Readiness notification on raw file descriptors, dependency-free.
//!
//! The workspace is offline, so instead of `mio` this module declares the
//! handful of libc symbols it needs directly (`std` already links libc on
//! every unix target) and wraps them in a minimal [`Poller`]:
//!
//! * on Linux, **epoll** — `epoll_create1`/`epoll_ctl`/`epoll_wait`,
//!   which scales to thousands of registered descriptors because the
//!   kernel returns only the ready ones;
//! * on every other unix, portable **`poll(2)`** over a maintained
//!   `pollfd` array — `O(fds)` per wait, fine at the scales a non-Linux
//!   dev machine runs.
//!
//! Both backends are level-triggered: a descriptor with unconsumed
//! readiness is reported again on the next wait, so the event loop never
//! needs edge-triggered draining discipline. Registration carries a
//! `usize` token that comes back verbatim in [`Event`]s; the caller owns
//! the token namespace (the event loop uses slab indices plus two
//! reserved values for the listener and the wake pipe).

use std::io;
use std::time::Duration;

/// One readiness report for a registered descriptor.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the descriptor was registered under.
    pub token: usize,
    /// Data (or EOF) can be read without blocking.
    pub readable: bool,
    /// The send buffer has room again.
    pub writable: bool,
    /// Error or hang-up: the connection is beyond use.
    pub hangup: bool,
}

/// Clamp an optional wait budget to the millisecond `int` both backends
/// take: `None` blocks, milliseconds bounded to `i32::MAX`, and nonzero
/// budgets round *up* to at least 1 ms so a due timer is never spun on.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) if t.is_zero() => 0,
        Some(t) => i32::try_from(t.as_millis())
            .unwrap_or(i32::MAX)
            .saturating_add(i32::from(t.subsec_nanos() % 1_000_000 != 0))
            .max(1),
    }
}

/// Retry a syscall while it reports `EINTR`.
fn retry_eintr(mut call: impl FnMut() -> i32) -> io::Result<i32> {
    loop {
        let rc = call();
        if rc >= 0 {
            return Ok(rc);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(target_os = "linux")]
mod backend {
    use super::{retry_eintr, timeout_ms, Event};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;
    use std::time::Duration;

    // x86/x86_64 define `struct epoll_event` packed; other architectures
    // use natural alignment. Getting this wrong corrupts the token.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Linux epoll instance. See the module docs for the contract.
    #[derive(Debug)]
    pub(crate) struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl std::fmt::Debug for EpollEvent {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("EpollEvent").finish_non_exhaustive()
        }
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(
            &self,
            op: c_int,
            fd: RawFd,
            token: usize,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            // RDHUP rides along with read interest only: a half-closed
            // peer must not generate events while the loop has reads
            // deliberately disabled (dispatch backpressure).
            let mut ev = EpollEvent {
                events: if read { EPOLLIN | EPOLLRDHUP } else { 0 }
                    | if write { EPOLLOUT } else { 0 },
                data: token as u64,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            retry_eintr(|| unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(drop)
        }

        pub(crate) fn register(
            &mut self,
            fd: RawFd,
            token: usize,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        pub(crate) fn modify(
            &mut self,
            fd: RawFd,
            token: usize,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        pub(crate) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        pub(crate) fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            // SAFETY: `buf` is a live, properly sized allocation.
            let n = retry_eintr(|| unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms(timeout),
                )
            })? as usize;
            for ev in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (events, data) = (ev.events, ev.data);
                out.push(Event {
                    token: data as usize,
                    readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            if n == self.buf.len() {
                // Saturated wait: more descriptors may be ready than the
                // buffer holds. Grow so heavy fan-in amortizes to one wait.
                self.buf
                    .resize(self.buf.len() * 2, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: the fd is owned by this struct and closed once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod backend {
    use super::{retry_eintr, timeout_ms, Event};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::time::Duration;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x1;
    const POLLOUT: c_short = 0x4;
    const POLLERR: c_short = 0x8;
    const POLLHUP: c_short = 0x10;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Portable `poll(2)` fallback: a maintained `pollfd` array plus a
    /// parallel token array. `O(fds)` per wait — the non-Linux builds are
    /// dev machines, not the load-bearing deployment target.
    #[derive(Debug)]
    pub(crate) struct Poller {
        fds: Vec<PollFd>,
        tokens: Vec<usize>,
        index: HashMap<RawFd, usize>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
                index: HashMap::new(),
            })
        }

        fn events_mask(read: bool, write: bool) -> c_short {
            (if read { POLLIN } else { 0 }) | (if write { POLLOUT } else { 0 })
        }

        pub(crate) fn register(
            &mut self,
            fd: RawFd,
            token: usize,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            if self.index.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd registered",
                ));
            }
            self.index.insert(fd, self.fds.len());
            self.fds.push(PollFd {
                fd,
                events: Self::events_mask(read, write),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub(crate) fn modify(
            &mut self,
            fd: RawFd,
            token: usize,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            let &i = self
                .index
                .get(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[i].events = Self::events_mask(read, write);
            self.tokens[i] = token;
            Ok(())
        }

        pub(crate) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self
                .index
                .remove(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            if i < self.fds.len() {
                self.index.insert(self.fds[i].fd, i);
            }
            Ok(())
        }

        pub(crate) fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            for fd in &mut self.fds {
                fd.revents = 0;
            }
            // SAFETY: the array is live and its length is exact.
            retry_eintr(|| unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as c_ulong,
                    timeout_ms(timeout),
                )
            })?;
            for (fd, &token) in self.fds.iter().zip(&self.tokens) {
                if fd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: fd.revents & (POLLIN | POLLHUP) != 0,
                    writable: fd.revents & POLLOUT != 0,
                    hangup: fd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

pub(crate) use backend::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn poller_reports_readability_and_timeout() {
        let mut poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.register(a.as_raw_fd(), 7, true, false).unwrap();

        // Nothing pending: the wait honours its timeout.
        let mut events = Vec::new();
        let t = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(t.elapsed() >= Duration::from_millis(25));

        // A byte arrives: readable, with the registered token.
        (&b).write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        poller.deregister(a.as_raw_fd()).unwrap();
        poller
            .wait(&mut events.split_off(0), Some(Duration::from_millis(1)))
            .unwrap();
    }

    #[test]
    fn poller_reports_writability_only_when_asked() {
        let mut poller = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.register(a.as_raw_fd(), 3, true, false).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.iter().all(|e| !e.writable));

        // An empty send buffer is immediately writable once registered.
        poller.modify(a.as_raw_fd(), 3, true, true).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
    }
}

//! Per-request stage tracing.
//!
//! Each request is assigned an id and accumulates per-stage durations
//! as it moves through the serving core: parse (first byte → complete
//! head+body), queue (parsed → handler start, i.e. dispatch/pool wait),
//! gate compute, measurement, journal append, fsync, snapshot, the
//! handler total, and response write. The deep layers (`store.rs`,
//! `registry.rs`, the metered [`crate::vfs::Vfs`] wrapper) report into a
//! thread-local slot rather than threading a context argument through
//! every signature — this works because a request's handler runs on
//! exactly one thread (the event loop for inline routes, one pool
//! worker otherwise). Outside a request (boot-time journal replay,
//! shutdown snapshots) the slot is inactive and reporting is a no-op.
//!
//! Completed stage vectors feed the per-stage histograms in
//! [`super::ServeMetrics`]; requests whose total exceeds the configured
//! `--slow-request-ms` threshold additionally emit one structured
//! slow-log line on stderr and an entry in a fixed-size [`TraceRing`]
//! served by `GET /admin/trace`.

use crate::json::Value;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of traced stages.
pub const STAGE_COUNT: usize = 9;

/// Capacity of the in-memory slow-request ring served by
/// `GET /admin/trace`.
pub const TRACE_RING_CAP: usize = 256;

/// One stage of a request's lifecycle. Stages are disjoint except that
/// `Handler` spans `Gate..=Snapshot`, and an fsync issued inside a
/// snapshot write is counted under both `Fsync` and `Snapshot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// First byte of the request on the wire → head+body fully parsed.
    Parse,
    /// Parsed → handler start (event-loop dispatch and pool queueing).
    Queue,
    /// Statistical gate evaluation (`submit` / budget accounting).
    Gate,
    /// Server-side measurement of an uploaded prediction vector.
    Measure,
    /// Journal record append (buffer build + write).
    JournalAppend,
    /// `sync_data` calls issued by the request.
    Fsync,
    /// Snapshot serialization + atomic write (every Nth commit).
    Snapshot,
    /// Total time inside the route handler.
    Handler,
    /// Response queued → last byte written to the socket.
    ResponseWrite,
}

/// Every stage, in recording order.
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::Parse,
    Stage::Queue,
    Stage::Gate,
    Stage::Measure,
    Stage::JournalAppend,
    Stage::Fsync,
    Stage::Snapshot,
    Stage::Handler,
    Stage::ResponseWrite,
];

impl Stage {
    /// Stable snake_case name used in metric labels, slow-log lines,
    /// and the `/admin/trace` dump.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Queue => "queue",
            Stage::Gate => "gate",
            Stage::Measure => "measure",
            Stage::JournalAppend => "journal_append",
            Stage::Fsync => "fsync",
            Stage::Snapshot => "snapshot",
            Stage::Handler => "handler",
            Stage::ResponseWrite => "response_write",
        }
    }

    /// Index into a stage vector.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SLOT: RefCell<[u64; STAGE_COUNT]> = const { RefCell::new([0; STAGE_COUNT]) };
}

/// Arm this thread's trace slot for a new request, clearing any
/// previous durations.
pub(crate) fn begin() {
    SLOT.with(|s| *s.borrow_mut() = [0; STAGE_COUNT]);
    ACTIVE.with(|a| a.set(true));
}

/// Add a duration to `stage` on the active trace; no-op when no request
/// is being traced on this thread.
pub(crate) fn add(stage: Stage, dur: Duration) {
    if ACTIVE.with(Cell::get) {
        SLOT.with(|s| {
            let slot = &mut s.borrow_mut()[stage.index()];
            *slot = slot.saturating_add(ns(dur));
        });
    }
}

/// Run `f`, attributing its wall time to `stage` when a trace is
/// active. When inactive (boot replay, shutdown), `f` runs unmeasured —
/// not even the `Instant` reads are paid.
pub(crate) fn time<T>(stage: Stage, f: impl FnOnce() -> T) -> T {
    if !ACTIVE.with(Cell::get) {
        return f();
    }
    let start = Instant::now();
    let out = f();
    add(stage, start.elapsed());
    out
}

/// Disarm the slot and return the accumulated stage durations.
pub(crate) fn finish() -> [u64; STAGE_COUNT] {
    ACTIVE.with(|a| a.set(false));
    SLOT.with(|s| *s.borrow())
}

/// Saturating `Duration` → nanoseconds.
#[must_use]
pub fn ns(dur: Duration) -> u64 {
    u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX)
}

/// A completed request trace: id, route, status, and per-stage
/// durations in nanoseconds (indexed by [`Stage::index`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRec {
    /// Process-wide request id (monotonic from 1).
    pub id: u64,
    /// Normalized route name (`"commit"`, `"register"`, …).
    pub route: &'static str,
    /// HTTP status of the response.
    pub status: u16,
    /// Per-stage durations in nanoseconds.
    pub stages_ns: [u64; STAGE_COUNT],
}

impl TraceRec {
    /// End-to-end time attributed to this request: wire stages plus the
    /// handler total (whose sub-stages are not double-counted).
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.stages_ns[Stage::Parse.index()]
            + self.stages_ns[Stage::Queue.index()]
            + self.stages_ns[Stage::Handler.index()]
            + self.stages_ns[Stage::ResponseWrite.index()]
    }

    /// The `/admin/trace` JSON shape: id/route/status/total plus one
    /// `<stage>_us` field per non-zero stage.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("id".to_string(), Value::from(self.id)),
            ("route".to_string(), Value::from(self.route)),
            ("status".to_string(), Value::from(u64::from(self.status))),
            ("total_us".to_string(), Value::from(self.total_ns() / 1_000)),
        ];
        for stage in STAGES {
            let stage_ns = self.stages_ns[stage.index()];
            if stage_ns > 0 {
                pairs.push((
                    format!("{}_us", stage.name()),
                    Value::from(stage_ns / 1_000),
                ));
            }
        }
        Value::object(pairs)
    }

    /// One structured slow-log line (key=value, microsecond units), the
    /// format documented in the README's Observability section.
    #[must_use]
    pub fn slow_log_line(&self) -> String {
        let mut line = format!(
            "slow-request id={} route={} status={} total_us={}",
            self.id,
            self.route,
            self.status,
            self.total_ns() / 1_000
        );
        for stage in STAGES {
            let stage_ns = self.stages_ns[stage.index()];
            if stage_ns > 0 {
                line.push_str(&format!(" {}_us={}", stage.name(), stage_ns / 1_000));
            }
        }
        line
    }
}

/// Fixed-size ring of recent slow-request traces, newest last.
#[derive(Debug, Default)]
pub struct TraceRing {
    entries: Mutex<VecDeque<TraceRec>>,
}

impl TraceRing {
    /// An empty ring with capacity [`TRACE_RING_CAP`].
    #[must_use]
    pub fn new() -> TraceRing {
        TraceRing::default()
    }

    /// Append a trace, evicting the oldest entry once full.
    pub fn push(&self, rec: TraceRec) {
        let mut entries = self.entries.lock().expect("trace ring poisoned");
        if entries.len() == TRACE_RING_CAP {
            entries.pop_front();
        }
        entries.push_back(rec);
    }

    /// Snapshot the ring contents, oldest first.
    #[must_use]
    pub fn entries(&self) -> Vec<TraceRec> {
        self.entries
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> TraceRec {
        let mut stages_ns = [0; STAGE_COUNT];
        stages_ns[Stage::Parse.index()] = 2_000;
        stages_ns[Stage::Queue.index()] = 1_000;
        stages_ns[Stage::Gate.index()] = 5_000;
        stages_ns[Stage::Handler.index()] = 40_000;
        stages_ns[Stage::ResponseWrite.index()] = 3_000;
        TraceRec {
            id,
            route: "commit",
            status: 200,
            stages_ns,
        }
    }

    #[test]
    fn total_counts_wire_stages_and_handler_once() {
        // Gate is inside Handler and must not be double-counted.
        assert_eq!(rec(1).total_ns(), 2_000 + 1_000 + 40_000 + 3_000);
    }

    #[test]
    fn slow_log_line_is_structured_and_skips_zero_stages() {
        let line = rec(7).slow_log_line();
        assert!(line.starts_with("slow-request id=7 route=commit status=200 total_us=46"));
        assert!(line.contains(" gate_us=5"));
        assert!(!line.contains("snapshot_us"), "zero stages omitted: {line}");
    }

    #[test]
    fn thread_local_slot_accumulates_only_while_active() {
        add(Stage::Gate, Duration::from_micros(5));
        begin();
        add(Stage::Gate, Duration::from_micros(2));
        add(Stage::Gate, Duration::from_micros(3));
        let out = time(Stage::Measure, || 42);
        assert_eq!(out, 42);
        let stages = finish();
        assert_eq!(stages[Stage::Gate.index()], 5_000);
        // After finish, reporting is a no-op again.
        add(Stage::Gate, Duration::from_micros(9));
        begin();
        assert_eq!(finish()[Stage::Gate.index()], 0, "begin clears the slot");
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let ring = TraceRing::new();
        for id in 0..(TRACE_RING_CAP as u64 + 10) {
            ring.push(rec(id));
        }
        let entries = ring.entries();
        assert_eq!(entries.len(), TRACE_RING_CAP);
        assert_eq!(entries.first().unwrap().id, 10);
        assert_eq!(entries.last().unwrap().id, TRACE_RING_CAP as u64 + 9);
    }
}

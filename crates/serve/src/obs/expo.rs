//! Parser for the Prometheus-style text exposition served at
//! `GET /metrics`.
//!
//! This is the consumer side of [`super::Metrics::render`]: the
//! exposition golden test parses every line through it to assert
//! well-formedness, and `repro_serve_load` uses it to pull stage
//! histograms out of a live scrape for the `stage_breakdown` bench
//! section. It accepts the subset of the Prometheus text format the
//! renderer emits (`# HELP` / `# TYPE` comments and
//! `name{labels} value` samples) and rejects malformed names, labels,
//! and values with a line-numbered error.

use std::collections::HashMap;

/// One sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms, includes the `_bucket` / `_sum` /
    /// `_count` suffix).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// Parsed sample value.
    pub value: f64,
}

impl Sample {
    /// Look up a label value by name.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: declared metadata plus every sample.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `# TYPE` declarations, by metric family name.
    pub types: HashMap<String, String>,
    /// `# HELP` declarations, by metric family name.
    pub help: HashMap<String, String>,
    /// All samples, in exposition order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// All samples with the given name.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Sample> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// The value of the sample matching `name` and every label in
    /// `labels` (the sample may carry more labels than listed).
    #[must_use]
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(v)))
            .map(|s| s.value)
    }

    /// Number of distinct series: unique (name, label-set) pairs, with
    /// histogram `_bucket`/`_sum`/`_count` samples folded into one
    /// series per label-set (the `le` label excluded).
    #[must_use]
    pub fn series_count(&self) -> usize {
        let mut seen: Vec<String> = Vec::new();
        for sample in &self.samples {
            let base = sample
                .name
                .strip_suffix("_bucket")
                .or_else(|| sample.name.strip_suffix("_sum"))
                .or_else(|| sample.name.strip_suffix("_count"))
                .filter(|b| self.types.get(*b).is_some_and(|t| t == "histogram"))
                .unwrap_or(&sample.name);
            let mut key = base.to_string();
            for (k, v) in &sample.labels {
                if k != "le" {
                    key.push_str(&format!("|{k}={v}"));
                }
            }
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen.len()
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// Parse label pairs from the text between `{` and `}`.
fn parse_labels(body: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without '='"))?;
        let key = &rest[..eq];
        if !valid_label_name(key) {
            return Err(format!("line {lineno}: bad label name {key:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {lineno}: label value must be quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let after_quote = loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
            match c {
                '"' => break i + 1,
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| format!("line {lineno}: dangling escape"))?;
                    value.push(match esc {
                        'n' => '\n',
                        other => other,
                    });
                }
                other => value.push(other),
            }
        };
        labels.push((key.to_string(), value));
        rest = &rest[after_quote..];
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail;
        } else if !rest.is_empty() {
            return Err(format!("line {lineno}: expected ',' between labels"));
        }
    }
    Ok(labels)
}

/// Parse a full text exposition. Every line must be empty, a
/// `# HELP` / `# TYPE` comment, or a well-formed sample; anything else
/// is an error naming the offending line.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: comment missing metric name"))?;
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: bad metric name {name:?}"));
            }
            let tail = parts.next().unwrap_or_default().to_string();
            match keyword {
                "HELP" => {
                    out.help.insert(name.to_string(), tail);
                }
                "TYPE" => {
                    if !["counter", "gauge", "histogram"].contains(&tail.as_str()) {
                        return Err(format!("line {lineno}: unknown type {tail:?}"));
                    }
                    out.types.insert(name.to_string(), tail);
                }
                other => return Err(format!("line {lineno}: unknown comment {other:?}")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (
                    &line[..brace],
                    (&line[brace + 1..close], &line[close + 1..]),
                )
            }
            None => {
                let space = line
                    .find(' ')
                    .ok_or_else(|| format!("line {lineno}: sample missing value"))?;
                (&line[..space], ("", &line[space..]))
            }
        };
        if !valid_metric_name(name_part) {
            return Err(format!("line {lineno}: bad metric name {name_part:?}"));
        }
        let (label_body, value_part) = rest;
        let labels = parse_labels(label_body, lineno)?;
        let value = parse_value(value_part.trim())
            .ok_or_else(|| format!("line {lineno}: bad value {:?}", value_part.trim()))?;
        out.samples.push(Sample {
            name: name_part.to_string(),
            labels,
            value,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_labels_and_values() {
        let text = "# HELP easeml_requests_total Requests by route.\n\
                    # TYPE easeml_requests_total counter\n\
                    easeml_requests_total{route=\"commit\"} 12\n\
                    easeml_requests_total{route=\"healthz\"} 3\n\
                    # TYPE easeml_inflight gauge\n\
                    easeml_inflight 0\n";
        let expo = parse(text).unwrap();
        assert_eq!(expo.types["easeml_requests_total"], "counter");
        assert_eq!(
            expo.value("easeml_requests_total", &[("route", "commit")]),
            Some(12.0)
        );
        assert_eq!(expo.value("easeml_inflight", &[]), Some(0.0));
        assert_eq!(expo.series_count(), 3);
    }

    #[test]
    fn histogram_samples_fold_into_one_series() {
        let text = "# TYPE easeml_stage_seconds histogram\n\
                    easeml_stage_seconds_bucket{stage=\"gate\",le=\"0.000001\"} 1\n\
                    easeml_stage_seconds_bucket{stage=\"gate\",le=\"+Inf\"} 2\n\
                    easeml_stage_seconds_sum{stage=\"gate\"} 0.5\n\
                    easeml_stage_seconds_count{stage=\"gate\"} 2\n";
        let expo = parse(text).unwrap();
        assert_eq!(expo.series_count(), 1);
        assert_eq!(
            expo.value(
                "easeml_stage_seconds_bucket",
                &[("stage", "gate"), ("le", "+Inf")]
            ),
            Some(2.0)
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("1bad_name 3\n").is_err());
        assert!(parse("name{le=0.1} 3\n").is_err(), "unquoted label value");
        assert!(parse("name{le=\"0.1\"} nope\n").is_err(), "bad value");
        assert!(parse("# TYPE name summary\n").is_err(), "unknown type");
        assert!(parse("name{le=\"0.1\" 3\n").is_err(), "unterminated labels");
    }

    #[test]
    fn unescapes_label_values() {
        let expo = parse("m{k=\"a\\\"b\\\\c\\nd\"} 1\n").unwrap();
        assert_eq!(expo.samples[0].label("k"), Some("a\"b\\c\nd"));
    }
}

//! First-class observability for the serving core: a dependency-free
//! metrics registry with Prometheus-style text exposition, sharded
//! atomic counters and log-bucketed histograms, and per-request stage
//! tracing.
//!
//! The registry ([`Metrics`]) holds metric *families* (name + type +
//! help) each containing labeled *series*. Hot paths never touch the
//! registry lock: they hold pre-created [`Counter`] / [`Gauge`] /
//! [`Histogram`] handles (bundled in [`ServeMetrics`]) and record
//! through sharded atomics. Derived values that already live elsewhere
//! (inflight admission count, cache hit counters, project count) are
//! registered as closure-backed series evaluated at render time, so
//! `/healthz`, `/cache/stats`, and `/metrics` all read one source of
//! truth. `GET /metrics` renders the whole registry as deterministic
//! Prometheus text (fixed bucket edges, label-sorted series);
//! [`expo`] parses it back for tests and the bench harness.

pub mod expo;
pub mod hist;
pub mod trace;

use hist::{shard_index, Edges, Histogram, Unit, SHARDS};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use trace::{Stage, TraceRing, STAGES, STAGE_COUNT};

/// One cache-line-aligned counter cell, so shards don't false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PadCell(AtomicU64);

/// A monotonically increasing counter, sharded across cache lines so
/// concurrent increments from the event loops and pool workers don't
/// contend.
#[derive(Debug)]
pub struct Counter {
    shards: [PadCell; SHARDS],
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Counter {
        Counter {
            shards: std::array::from_fn(|_| PadCell::default()),
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::SeqCst);
    }

    /// Sum across shards.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::SeqCst)).sum()
    }
}

/// A settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::SeqCst);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::SeqCst);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::SeqCst)
    }
}

/// Metric family type, driving the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One labeled series inside a family.
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// Closure-backed value read at render time (for numbers whose
    /// source of truth lives elsewhere, e.g. cache stats).
    Func(Box<dyn Fn() -> f64 + Send + Sync>),
}

impl fmt::Debug for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Series::Counter(c) => f.debug_tuple("Counter").field(&c.get()).finish(),
            Series::Gauge(g) => f.debug_tuple("Gauge").field(&g.get()).finish(),
            Series::Histogram(_) => f.write_str("Histogram(..)"),
            Series::Func(_) => f.write_str("Func(..)"),
        }
    }
}

#[derive(Debug)]
struct Family {
    name: &'static str,
    help: &'static str,
    kind: Kind,
    series: Vec<(Vec<(String, String)>, Series)>,
}

#[derive(Debug, Default)]
struct Inner {
    families: Vec<Family>,
    index: HashMap<&'static str, usize>,
}

/// The metrics registry: families of labeled series, rendered as
/// Prometheus text by [`Metrics::render`]. Handle creation takes a
/// write lock; recording through returned handles is lock-free.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: RwLock<Inner>,
}

/// Escape a label value per the Prometheus text format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render an f64 without a trailing `.0` for whole numbers.
fn fmt_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn with_series<T>(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
        extract: impl Fn(&Series) -> Option<T>,
    ) -> T {
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        if let Some(found) = {
            let inner = self.inner.read().expect("metrics registry poisoned");
            inner.index.get(name).and_then(|&fi| {
                let family = &inner.families[fi];
                assert_eq!(
                    family.kind, kind,
                    "metric {name} re-registered as a different type"
                );
                family
                    .series
                    .iter()
                    .find(|(l, _)| *l == owned)
                    .map(|(_, s)| extract(s).expect("series type matches family kind"))
            })
        } {
            return found;
        }
        let mut inner = self.inner.write().expect("metrics registry poisoned");
        let fi = match inner.index.get(name) {
            Some(&fi) => fi,
            None => {
                let fi = inner.families.len();
                inner.families.push(Family {
                    name,
                    help,
                    kind,
                    series: Vec::new(),
                });
                inner.index.insert(name, fi);
                fi
            }
        };
        let family = &mut inner.families[fi];
        assert_eq!(
            family.kind, kind,
            "metric {name} re-registered as a different type"
        );
        if let Some((_, existing)) = family.series.iter().find(|(l, _)| *l == owned) {
            return extract(existing).expect("series type matches family kind");
        }
        let series = make();
        let out = extract(&series).expect("freshly made series matches kind");
        family.series.push((owned, series));
        out
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get or create a labeled counter.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        self.with_series(
            name,
            help,
            Kind::Counter,
            labels,
            || Series::Counter(Arc::new(Counter::new())),
            |s| match s {
                Series::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get or create an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get or create a labeled gauge.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        self.with_series(
            name,
            help,
            Kind::Gauge,
            labels,
            || Series::Gauge(Arc::new(Gauge::default())),
            |s| match s {
                Series::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get or create a labeled histogram over `edges`.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        edges: Edges,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.with_series(
            name,
            help,
            Kind::Histogram,
            labels,
            move || Series::Histogram(Arc::new(Histogram::new(edges))),
            |s| match s {
                Series::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Register a closure-backed series rendered under a counter
    /// family. Registering the same (name, labels) again replaces the
    /// closure.
    pub fn func_counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.register_func(name, help, Kind::Counter, labels, Box::new(f));
    }

    /// Register a closure-backed series rendered under a gauge family.
    /// Registering the same (name, labels) again replaces the closure.
    pub fn func_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.register_func(name, help, Kind::Gauge, labels, Box::new(f));
    }

    fn register_func(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        labels: &[(&str, &str)],
        f: Box<dyn Fn() -> f64 + Send + Sync>,
    ) {
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        let mut inner = self.inner.write().expect("metrics registry poisoned");
        let fi = match inner.index.get(name) {
            Some(&fi) => fi,
            None => {
                let fi = inner.families.len();
                inner.families.push(Family {
                    name,
                    help,
                    kind,
                    series: Vec::new(),
                });
                inner.index.insert(name, fi);
                fi
            }
        };
        let family = &mut inner.families[fi];
        assert_eq!(
            family.kind, kind,
            "metric {name} re-registered as a different type"
        );
        if let Some(slot) = family.series.iter_mut().find(|(l, _)| *l == owned) {
            slot.1 = Series::Func(f);
        } else {
            family.series.push((owned, Series::Func(f)));
        }
    }

    /// Render the whole registry as Prometheus text. Output is
    /// deterministic: families in registration order, series sorted by
    /// label values, bucket edges fixed by [`Edges`].
    #[must_use]
    pub fn render(&self) -> String {
        let inner = self.inner.read().expect("metrics registry poisoned");
        let mut out = String::with_capacity(16 * 1024);
        for family in &inner.families {
            if family.series.is_empty() {
                continue;
            }
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind.name()));
            let mut order: Vec<usize> = (0..family.series.len()).collect();
            order.sort_by(|&a, &b| family.series[a].0.cmp(&family.series[b].0));
            for i in order {
                let (labels, series) = &family.series[i];
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(labels, None),
                            c.get()
                        ));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(labels, None),
                            g.get()
                        ));
                    }
                    Series::Func(f) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(labels, None),
                            fmt_value(f())
                        ));
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (bucket, &n) in snap.counts.iter().enumerate() {
                            cumulative += n;
                            let le = match snap.edges.get(bucket) {
                                Some(&edge) => match snap.unit {
                                    Unit::Nanos => hist::fmt_seconds(edge),
                                    Unit::Count => format!("{edge}"),
                                },
                                None => "+Inf".to_string(),
                            };
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                family.name,
                                render_labels(labels, Some(("le", &le))),
                                cumulative
                            ));
                        }
                        let sum = match snap.unit {
                            Unit::Nanos => fmt_value(snap.sum as f64 / 1e9),
                            Unit::Count => format!("{}", snap.sum),
                        };
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            family.name,
                            render_labels(labels, None),
                            sum
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            family.name,
                            render_labels(labels, None),
                            snap.count
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Pre-created request counters for one normalized route.
#[derive(Debug)]
pub struct RouteSlot {
    /// Requests dispatched to this route.
    pub requests_total: Arc<Counter>,
    /// Handler wall time for this route (nanoseconds recorded, seconds
    /// exposed).
    pub duration: Arc<Histogram>,
}

/// Vfs operation kinds counted by the metered wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfsOp {
    /// `VfsFile::write_all`.
    Write,
    /// `VfsFile::sync_data`.
    Sync,
    /// `VfsFile::set_len` (journal truncation on failed appends).
    SetLen,
    /// `Vfs::create`.
    Create,
    /// `Vfs::open_append`.
    OpenAppend,
    /// `Vfs::read_to_string`.
    Read,
    /// `Vfs::rename` (atomic snapshot installs).
    Rename,
    /// `Vfs::remove_file`.
    Remove,
    /// `Vfs::create_dir_all`.
    Mkdir,
    /// Metadata reads: `list_dir`, `is_dir`, `exists`, `VfsFile::len`.
    Stat,
}

/// Every [`VfsOp`], for iteration during registration.
const VFS_OPS: [VfsOp; 10] = [
    VfsOp::Write,
    VfsOp::Sync,
    VfsOp::SetLen,
    VfsOp::Create,
    VfsOp::OpenAppend,
    VfsOp::Read,
    VfsOp::Rename,
    VfsOp::Remove,
    VfsOp::Mkdir,
    VfsOp::Stat,
];

impl VfsOp {
    /// Stable label value for `easeml_vfs_ops_total{op=...}`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VfsOp::Write => "write",
            VfsOp::Sync => "sync",
            VfsOp::SetLen => "set_len",
            VfsOp::Create => "create",
            VfsOp::OpenAppend => "open_append",
            VfsOp::Read => "read",
            VfsOp::Rename => "rename",
            VfsOp::Remove => "remove",
            VfsOp::Mkdir => "mkdir",
            VfsOp::Stat => "stat",
        }
    }

    fn index(self) -> usize {
        VFS_OPS
            .iter()
            .position(|&op| op == self)
            .expect("listed op")
    }
}

/// Handles for the metered [`crate::vfs::Vfs`] wrapper: per-op counts,
/// byte totals, per-op latency for the expensive ops, and
/// journal/snapshot-specific rollups.
#[derive(Debug, Clone)]
pub struct VfsMetrics {
    ops: [Arc<Counter>; 10],
    write_latency: Arc<Histogram>,
    sync_latency: Arc<Histogram>,
    /// Bytes written through the facade.
    pub write_bytes_total: Arc<Counter>,
    /// Journal record appends (writes to `journal.log`).
    pub journal_appends_total: Arc<Counter>,
    /// Bytes appended to journals.
    pub journal_bytes_total: Arc<Counter>,
    /// `sync_data` calls on journal files.
    pub journal_fsyncs_total: Arc<Counter>,
    /// Atomic snapshot installs (renames landing on `snapshot.json`).
    pub snapshot_writes_total: Arc<Counter>,
}

impl VfsMetrics {
    fn new(registry: &Metrics) -> VfsMetrics {
        VfsMetrics {
            ops: std::array::from_fn(|i| {
                registry.counter_with(
                    "easeml_vfs_ops_total",
                    "Vfs facade operations by kind.",
                    &[("op", VFS_OPS[i].name())],
                )
            }),
            write_latency: registry.histogram_with(
                "easeml_vfs_op_seconds",
                "Latency of expensive Vfs operations.",
                Edges::time(),
                &[("op", "write")],
            ),
            sync_latency: registry.histogram_with(
                "easeml_vfs_op_seconds",
                "Latency of expensive Vfs operations.",
                Edges::time(),
                &[("op", "sync")],
            ),
            write_bytes_total: registry.counter(
                "easeml_vfs_write_bytes_total",
                "Bytes written through the Vfs facade.",
            ),
            journal_appends_total: registry.counter(
                "easeml_journal_appends_total",
                "Write calls landing on a project journal.",
            ),
            journal_bytes_total: registry.counter(
                "easeml_journal_bytes_total",
                "Bytes appended to project journals.",
            ),
            journal_fsyncs_total: registry.counter(
                "easeml_journal_fsyncs_total",
                "sync_data calls on project journals.",
            ),
            snapshot_writes_total: registry.counter(
                "easeml_snapshot_writes_total",
                "Atomic snapshot installs (renames onto snapshot.json).",
            ),
        }
    }

    /// Count one operation of the given kind.
    pub fn op(&self, op: VfsOp) {
        self.ops[op.index()].inc();
    }

    /// Record a write's latency (nanoseconds).
    pub fn write_latency(&self, dur_ns: u64) {
        self.write_latency.record(dur_ns);
    }

    /// Record an fsync's latency (nanoseconds).
    pub fn sync_latency(&self, dur_ns: u64) {
        self.sync_latency.record(dur_ns);
    }
}

/// Status classes for `easeml_responses_total{class=...}`.
const STATUS_CLASSES: [&str; 5] = ["1xx", "2xx", "3xx", "4xx", "5xx"];

/// Pre-created handles for every always-on serving metric. Hot paths
/// record through these without touching the registry lock; only the
/// per-project gate-outcome counters go through a (read-mostly)
/// registry lookup.
#[derive(Debug)]
pub struct ServeMetrics {
    /// The backing registry (rendered by `GET /metrics`).
    pub registry: Metrics,
    next_request_id: AtomicU64,
    routes: HashMap<&'static str, RouteSlot>,
    fallback_route: RouteSlot,
    stage_hist: [Arc<Histogram>; STAGE_COUNT],
    status_classes: [Arc<Counter>; 5],
    /// Requests whose traced total exceeded `--slow-request-ms`.
    pub slow_requests_total: Arc<Counter>,
    /// Poller wait calls per event loop.
    pub loop_polls_total: Arc<Counter>,
    /// Wake-pipe firings observed by event loops.
    pub loop_wakeups_total: Arc<Counter>,
    /// Readiness events delivered by the poller.
    pub loop_ready_events_total: Arc<Counter>,
    /// Ready-batch size distribution per poller wait.
    pub loop_ready_batch: Arc<Histogram>,
    /// Deadline timers fired.
    pub loop_timer_fires_total: Arc<Counter>,
    /// Connections adopted from cross-loop inbox handoff.
    pub loop_inbox_adopted_total: Arc<Counter>,
    /// Connections currently parked in inboxes awaiting adoption.
    pub loop_inbox_depth: Arc<Gauge>,
    /// Requests handled inline on the event thread.
    pub dispatch_inline_total: Arc<Counter>,
    /// Requests dispatched to the worker pool.
    pub dispatch_pool_total: Arc<Counter>,
    /// Accepted connections.
    pub connections_accepted_total: Arc<Counter>,
    /// Closed connections.
    pub connections_closed_total: Arc<Counter>,
    /// Currently open connections.
    pub connections_open: Arc<Gauge>,
    /// accept() failures that triggered backoff.
    pub accept_errors_total: Arc<Counter>,
    /// Requests failed by the request-deadline timer.
    pub request_timeouts_total: Arc<Counter>,
    /// Requests shed by admission control (503 + Retry-After).
    pub shed_total: Arc<Counter>,
    /// Journal append failures (drives degraded mode).
    pub journal_append_failures_total: Arc<Counter>,
    /// Vfs facade handles.
    pub vfs: VfsMetrics,
}

impl ServeMetrics {
    /// Build the full always-on catalog, pre-creating one
    /// requests/duration pair per route in `routes`.
    #[must_use]
    pub fn new(routes: &[&'static str]) -> ServeMetrics {
        let registry = Metrics::new();
        let route_slot = |name: &'static str| RouteSlot {
            requests_total: registry.counter_with(
                "easeml_requests_total",
                "Requests dispatched, by normalized route.",
                &[("route", name)],
            ),
            duration: registry.histogram_with(
                "easeml_request_duration_seconds",
                "Route handler wall time.",
                Edges::time(),
                &[("route", name)],
            ),
        };
        let routes_map: HashMap<&'static str, RouteSlot> = routes
            .iter()
            .map(|&name| (name, route_slot(name)))
            .collect();
        let fallback_route = route_slot("other");
        let stage_hist = std::array::from_fn(|i| {
            registry.histogram_with(
                "easeml_request_stage_seconds",
                "Per-request stage durations.",
                Edges::time(),
                &[("stage", STAGES[i].name())],
            )
        });
        let status_classes = std::array::from_fn(|i| {
            registry.counter_with(
                "easeml_responses_total",
                "Responses by status class.",
                &[("class", STATUS_CLASSES[i])],
            )
        });
        let vfs = VfsMetrics::new(&registry);
        ServeMetrics {
            next_request_id: AtomicU64::new(1),
            routes: routes_map,
            fallback_route,
            stage_hist,
            status_classes,
            slow_requests_total: registry.counter(
                "easeml_slow_requests_total",
                "Requests exceeding the --slow-request-ms threshold.",
            ),
            loop_polls_total: registry.counter(
                "easeml_loop_polls_total",
                "Poller wait calls across event loops.",
            ),
            loop_wakeups_total: registry.counter(
                "easeml_loop_wakeups_total",
                "Wake-pipe firings observed by event loops.",
            ),
            loop_ready_events_total: registry.counter(
                "easeml_loop_ready_events_total",
                "Readiness events delivered by the poller.",
            ),
            loop_ready_batch: registry.histogram_with(
                "easeml_loop_ready_batch",
                "Ready-event batch size per poller wait.",
                Edges::pow2(10),
                &[],
            ),
            loop_timer_fires_total: registry.counter(
                "easeml_loop_timer_fires_total",
                "Deadline timers fired by the timer wheel.",
            ),
            loop_inbox_adopted_total: registry.counter(
                "easeml_loop_inbox_adopted_total",
                "Connections adopted from cross-loop inbox handoff.",
            ),
            loop_inbox_depth: registry.gauge(
                "easeml_loop_inbox_depth",
                "Connections parked in event-loop inboxes awaiting adoption.",
            ),
            dispatch_inline_total: registry.counter(
                "easeml_dispatch_inline_total",
                "Requests handled inline on the event thread.",
            ),
            dispatch_pool_total: registry.counter(
                "easeml_dispatch_pool_total",
                "Requests dispatched to the worker pool.",
            ),
            connections_accepted_total: registry
                .counter("easeml_connections_accepted_total", "Accepted connections."),
            connections_closed_total: registry
                .counter("easeml_connections_closed_total", "Closed connections."),
            connections_open: registry
                .gauge("easeml_connections_open", "Currently open connections."),
            accept_errors_total: registry.counter(
                "easeml_accept_errors_total",
                "accept() failures that triggered listener backoff.",
            ),
            request_timeouts_total: registry.counter(
                "easeml_request_timeouts_total",
                "Requests failed by the request-deadline timer.",
            ),
            shed_total: registry.counter(
                "easeml_shed_total",
                "Requests shed by admission control (503 + Retry-After).",
            ),
            journal_append_failures_total: registry.counter(
                "easeml_journal_append_failures_total",
                "Journal append failures (drives degraded mode).",
            ),
            vfs,
            registry,
        }
    }

    /// Allocate the next process-wide request id (monotonic from 1).
    #[must_use]
    pub fn next_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The pre-created slot for a normalized route name (falls back to
    /// the `"other"` slot for unknown names).
    #[must_use]
    pub fn route(&self, name: &'static str) -> &RouteSlot {
        self.routes.get(name).unwrap_or(&self.fallback_route)
    }

    /// The per-stage latency histogram.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stage_hist[stage.index()]
    }

    /// Feed a completed stage vector into the per-stage histograms
    /// (zero stages are skipped — they didn't run).
    pub fn observe_stages(&self, stages_ns: &[u64; STAGE_COUNT]) {
        for stage in STAGES {
            let stage_ns = stages_ns[stage.index()];
            if stage_ns > 0 {
                self.stage_hist[stage.index()].record(stage_ns);
            }
        }
    }

    /// Count a response under its status class.
    pub fn count_status(&self, status: u16) {
        let class = (usize::from(status) / 100).clamp(1, 5) - 1;
        self.status_classes[class].inc();
    }

    /// Count a gate decision for a project: outcome is `pass`, `fail`,
    /// or `budget_exhausted`.
    pub fn gate_outcome(&self, project: &str, outcome: &str) {
        self.registry
            .counter_with(
                "easeml_gate_outcomes_total",
                "Gate decisions by project and outcome.",
                &[("project", project), ("outcome", outcome)],
            )
            .inc();
    }

    /// Count a rejected submission (never reached a gate decision) by
    /// error kind.
    pub fn gate_rejection(&self, kind: &str) {
        self.registry
            .counter_with(
                "easeml_gate_rejections_total",
                "Submissions rejected before a gate decision, by error kind.",
                &[("kind", kind)],
            )
            .inc();
    }
}

/// Everything the serving stack shares for observability: the metric
/// handles, the slow-request ring, and the slow threshold.
#[derive(Debug)]
pub struct ServeObs {
    /// Metric handle bundle + registry.
    pub metrics: ServeMetrics,
    /// Recent slow-request traces (`GET /admin/trace`).
    pub ring: TraceRing,
    /// Threshold above which a request is slow-logged, in milliseconds.
    pub slow_request_ms: u64,
}

impl ServeObs {
    /// Build the bundle for the given route names and slow threshold.
    #[must_use]
    pub fn new(routes: &[&'static str], slow_request_ms: u64) -> ServeObs {
        ServeObs {
            metrics: ServeMetrics::new(routes),
            ring: TraceRing::new(),
            slow_request_ms,
        }
    }

    /// The slow threshold in nanoseconds.
    #[must_use]
    pub fn slow_ns(&self) -> u64 {
        self.slow_request_ms.saturating_mul(1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip_through_render() {
        let metrics = Metrics::new();
        let c = metrics.counter_with("test_total", "A counter.", &[("k", "v")]);
        c.add(41);
        c.inc();
        let g = metrics.gauge("test_depth", "A gauge.");
        g.set(5);
        g.add(-2);
        metrics.func_gauge("test_func", "A func gauge.", &[], || 2.5);
        let text = metrics.render();
        let expo = expo::parse(&text).expect("own render parses");
        assert_eq!(expo.value("test_total", &[("k", "v")]), Some(42.0));
        assert_eq!(expo.value("test_depth", &[]), Some(3.0));
        assert_eq!(expo.value("test_func", &[]), Some(2.5));
        assert_eq!(expo.types["test_total"], "counter");
        assert_eq!(expo.types["test_depth"], "gauge");
    }

    #[test]
    fn handle_creation_is_idempotent() {
        let metrics = Metrics::new();
        let a = metrics.counter("dup_total", "help");
        let b = metrics.counter("dup_total", "help");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same underlying counter");
        let h1 = metrics.histogram_with("h_seconds", "h", Edges::time(), &[("r", "x")]);
        let h2 = metrics.histogram_with("h_seconds", "h", Edges::time(), &[("r", "x")]);
        h1.record(1);
        assert_eq!(h2.snapshot().count, 1);
    }

    #[test]
    fn histogram_renders_cumulative_buckets_and_inf() {
        let metrics = Metrics::new();
        let h = metrics.histogram_with("lat_seconds", "Latency.", Edges::time(), &[]);
        h.record(500); // <= 1000 ns bucket
        h.record(1_200); // <= 1414 ns bucket
        h.record(u64::MAX); // overflow
        let expo = expo::parse(&metrics.render()).unwrap();
        assert_eq!(
            expo.value("lat_seconds_bucket", &[("le", "0.000001")]),
            Some(1.0)
        );
        assert_eq!(
            expo.value("lat_seconds_bucket", &[("le", "0.000001414")]),
            Some(2.0)
        );
        assert_eq!(
            expo.value("lat_seconds_bucket", &[("le", "+Inf")]),
            Some(3.0)
        );
        assert_eq!(expo.value("lat_seconds_count", &[]), Some(3.0));
    }

    #[test]
    fn render_is_deterministically_ordered() {
        let build = || {
            let metrics = Metrics::new();
            // Insert series in shuffled order; render must sort them.
            for route in ["zeta", "alpha", "mid"] {
                metrics
                    .counter_with("r_total", "By route.", &[("route", route)])
                    .inc();
            }
            metrics.render()
        };
        assert_eq!(build(), build());
        let text = build();
        let alpha = text.find("route=\"alpha\"").unwrap();
        let zeta = text.find("route=\"zeta\"").unwrap();
        assert!(alpha < zeta, "series sorted by labels");
    }

    #[test]
    fn serve_metrics_routes_and_status_classes() {
        let metrics = ServeMetrics::new(&["commit", "healthz"]);
        metrics.route("commit").requests_total.inc();
        metrics.route("unknown-route").requests_total.inc();
        metrics.count_status(200);
        metrics.count_status(503);
        metrics.gate_outcome("demo", "pass");
        metrics.gate_rejection("conflict");
        assert_eq!(metrics.next_request_id(), 1);
        assert_eq!(metrics.next_request_id(), 2);
        let expo = expo::parse(&metrics.registry.render()).unwrap();
        assert_eq!(
            expo.value("easeml_requests_total", &[("route", "commit")]),
            Some(1.0)
        );
        assert_eq!(
            expo.value("easeml_requests_total", &[("route", "other")]),
            Some(1.0)
        );
        assert_eq!(
            expo.value("easeml_responses_total", &[("class", "2xx")]),
            Some(1.0)
        );
        assert_eq!(
            expo.value("easeml_responses_total", &[("class", "5xx")]),
            Some(1.0)
        );
        assert_eq!(
            expo.value(
                "easeml_gate_outcomes_total",
                &[("project", "demo"), ("outcome", "pass")]
            ),
            Some(1.0)
        );
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_mismatch_is_a_registration_bug() {
        let metrics = Metrics::new();
        let _ = metrics.counter("clash", "help");
        let _ = metrics.gauge("clash", "help");
    }
}

//! Sharded, log-bucketed histograms with fixed deterministic bucket
//! edges.
//!
//! The time edges place ~2 buckets per octave from 1 µs to beyond 10 s
//! using exact integer mantissas — per octave `o` the edges are
//! `1000 << o` and `1414 << o` nanoseconds (1414 ≈ 1000·√2) — so the
//! bucket layout is bit-identical on every platform and every run, and
//! the exposition's `le` labels never drift. Recording is lock-free:
//! each histogram holds a small fixed set of shards, a thread picks its
//! shard by a cheap thread-local index, and a snapshot merges the
//! shards. Merging is a plain per-bucket sum, so a merged snapshot is
//! *exactly* what sequential recording of the same values would have
//! produced (property-tested in `tests/observability.rs`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of shards per histogram (and per sharded counter). Eight
/// covers the serving core's thread count (event loops + pool workers)
/// without measurable contention; threads hash onto shards by a
/// process-wide thread index.
pub const SHARDS: usize = 8;

/// Octaves covered by the time edges: `1000 << 23` ns ≈ 8.4 s, and the
/// final `1414 << 23` ≈ 11.9 s edge caps the requested 10 s range.
const TIME_OCTAVES: u32 = 24;

/// The per-thread shard index: threads are numbered in creation order
/// and wrap onto [`SHARDS`].
pub(crate) fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    INDEX.with(|i| *i)
}

/// What a histogram's recorded values measure, which controls how the
/// exposition renders bucket edges and sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Durations in nanoseconds; rendered as seconds (`le="0.000001"`).
    Nanos,
    /// Dimensionless counts (batch sizes); rendered as plain integers.
    Count,
}

/// A bucket-edge layout shared by every histogram in a family.
#[derive(Debug, Clone)]
pub struct Edges {
    bounds: Arc<[u64]>,
    unit: Unit,
}

impl Edges {
    /// The fixed time layout: ~2 buckets/octave from 1 µs to ~11.9 s
    /// (48 finite edges plus the implicit overflow bucket). Edges are
    /// exact integers — `1000 << o` and `1414 << o` ns per octave `o` —
    /// so the layout is deterministic across platforms and runs.
    #[must_use]
    pub fn time() -> Edges {
        static CACHE: OnceLock<Arc<[u64]>> = OnceLock::new();
        let bounds = CACHE.get_or_init(|| {
            (0..TIME_OCTAVES)
                .flat_map(|o| [1000u64 << o, 1414u64 << o])
                .collect()
        });
        Edges {
            bounds: Arc::clone(bounds),
            unit: Unit::Nanos,
        }
    }

    /// Power-of-two count edges `1, 2, 4, …, 2^max_pow` (for batch-size
    /// distributions).
    #[must_use]
    pub fn pow2(max_pow: u32) -> Edges {
        Edges {
            bounds: (0..=max_pow).map(|p| 1u64 << p).collect(),
            unit: Unit::Count,
        }
    }

    /// The finite upper bounds, ascending.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// The unit recorded values are in.
    #[must_use]
    pub fn unit(&self) -> Unit {
        self.unit
    }
}

/// One shard's buckets. The 64-byte alignment keeps the hot `sum` /
/// `count` pair of different shards off each other's cache line.
#[derive(Debug)]
#[repr(align(64))]
struct Shard {
    /// Per-bucket (non-cumulative) counts; the last slot is the
    /// overflow bucket (`> last edge`).
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A sharded log-bucketed histogram. `record` is lock-free and
/// wait-free; `snapshot` merges the shards into exact totals.
#[derive(Debug)]
pub struct Histogram {
    edges: Edges,
    shards: Box<[Shard]>,
}

impl Histogram {
    /// An empty histogram over `edges`.
    #[must_use]
    pub fn new(edges: Edges) -> Histogram {
        let buckets = edges.bounds.len() + 1;
        let shards = (0..SHARDS)
            .map(|_| Shard {
                counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })
            .collect();
        Histogram { edges, shards }
    }

    /// Record one value (nanoseconds for [`Unit::Nanos`] layouts). A
    /// value lands in the first bucket whose edge is `>= value`; values
    /// beyond the last edge land in the overflow bucket.
    pub fn record(&self, value: u64) {
        let bucket = self.edges.bounds.partition_point(|&e| e < value);
        let shard = &self.shards[shard_index()];
        shard.counts[bucket].fetch_add(1, Ordering::SeqCst);
        shard.sum.fetch_add(value, Ordering::SeqCst);
        shard.count.fetch_add(1, Ordering::SeqCst);
    }

    /// The bucket layout.
    #[must_use]
    pub fn edges(&self) -> &Edges {
        &self.edges
    }

    /// Merge every shard into exact totals.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.edges.bounds.len() + 1;
        let mut counts = vec![0u64; buckets];
        let mut sum = 0u64;
        let mut count = 0u64;
        for shard in &self.shards {
            for (total, cell) in counts.iter_mut().zip(shard.counts.iter()) {
                *total += cell.load(Ordering::SeqCst);
            }
            sum = sum.saturating_add(shard.sum.load(Ordering::SeqCst));
            count += shard.count.load(Ordering::SeqCst);
        }
        HistogramSnapshot {
            edges: Arc::clone(&self.edges.bounds),
            unit: self.edges.unit,
            counts,
            sum,
            count,
        }
    }
}

/// A merged, point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Finite bucket edges, ascending.
    pub edges: Arc<[u64]>,
    /// The unit recorded values were in.
    pub unit: Unit,
    /// Per-bucket (non-cumulative) counts; one extra overflow slot.
    pub counts: Vec<u64>,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket holding the target rank. Returns `None` for an
    /// empty histogram. The overflow bucket clamps to the last edge.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = seen + n;
            if (next as f64) >= rank {
                let Some(&upper) = self.edges.get(i) else {
                    // Overflow bucket: no finite upper edge to
                    // interpolate toward; clamp to the last edge.
                    return Some(*self.edges.last().expect("non-empty edges") as f64);
                };
                let lower = if i == 0 { 0 } else { self.edges[i - 1] };
                let into = (rank - seen as f64) / n as f64;
                return Some(lower as f64 + (upper - lower) as f64 * into);
            }
            seen = next;
        }
        Some(*self.edges.last().expect("non-empty edges") as f64)
    }
}

/// Format a nanosecond edge as an exact decimal in seconds
/// (`1414 → "0.000001414"`), the form the exposition's `le` labels use.
#[must_use]
pub fn fmt_seconds(ns: u64) -> String {
    let secs = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    if frac == 0 {
        format!("{secs}")
    } else {
        let mut digits = format!("{frac:09}");
        while digits.ends_with('0') {
            digits.pop();
        }
        format!("{secs}.{digits}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_edges_are_the_documented_integer_ladder() {
        let edges = Edges::time();
        let bounds = edges.bounds();
        assert_eq!(bounds.len(), 48, "2 buckets/octave over 24 octaves");
        assert_eq!(&bounds[..6], &[1000, 1414, 2000, 2828, 4000, 5656]);
        assert_eq!(*bounds.last().unwrap(), 1414u64 << 23);
        assert!(*bounds.last().unwrap() >= 10_000_000_000, ">= 10 s");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        // Deterministic: a second construction is bit-identical.
        assert_eq!(bounds, Edges::time().bounds());
    }

    #[test]
    fn values_land_in_the_first_bucket_with_edge_at_least_value() {
        let hist = Histogram::new(Edges::time());
        for value in [0, 1, 999, 1000, 1001, 1414, 1415, 5656, 1414u64 << 23] {
            let snap_before = hist.snapshot();
            hist.record(value);
            let snap = hist.snapshot();
            let bucket = (0..snap.counts.len())
                .find(|&i| snap.counts[i] != snap_before.counts[i])
                .expect("one bucket incremented");
            if bucket > 0 {
                assert!(snap.edges[bucket - 1] < value, "{value}");
            }
            if bucket < snap.edges.len() {
                assert!(value <= snap.edges[bucket], "{value}");
            }
        }
        // Beyond the last edge: overflow bucket.
        hist.record(u64::MAX);
        let snap = hist.snapshot();
        assert_eq!(snap.counts[snap.edges.len()], 1);
    }

    #[test]
    fn snapshot_totals_are_exact() {
        let hist = Histogram::new(Edges::pow2(4));
        for v in [1u64, 2, 3, 8, 16, 17, 40] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 87);
        assert_eq!(snap.counts.iter().sum::<u64>(), 7);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let hist = Histogram::new(Edges::pow2(3)); // edges 1,2,4,8
        assert_eq!(hist.snapshot().quantile(0.5), None);
        for v in [1u64, 2, 2, 4] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let p50 = snap.quantile(0.5).unwrap();
        assert!((1.0..=2.0).contains(&p50), "{p50}");
        let p100 = snap.quantile(1.0).unwrap();
        assert!(p100 <= 4.0, "{p100}");
        hist.record(u64::MAX);
        assert_eq!(hist.snapshot().quantile(1.0), Some(8.0), "overflow clamps");
    }

    #[test]
    fn fmt_seconds_is_exact_decimal() {
        assert_eq!(fmt_seconds(1000), "0.000001");
        assert_eq!(fmt_seconds(1414), "0.000001414");
        assert_eq!(fmt_seconds(1_000_000_000), "1");
        assert_eq!(fmt_seconds(8_388_608_000), "8.388608");
        assert_eq!(fmt_seconds(1414u64 << 23), "11.861491712");
    }
}

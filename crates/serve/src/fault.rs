//! Crash-consistency matrix: enumerate every kill point of a fixed
//! serving schedule, reboot after each, and check the durability
//! contract.
//!
//! The harness drives a [`Registry`] directly (no HTTP — the store is
//! the durability boundary) through a deterministic two-project
//! schedule: `alpha` gates on client-measured counts (commits, a
//! snapshot, a fresh-testset era bump), `beta` gates on server-measured
//! prediction vectors over a lazily labelled testset (predictions, a
//! snapshot, a testset install). A recording [`FaultVfs`] first runs
//! the schedule fault-free to log every counted I/O operation; the
//! matrix then re-runs the schedule once per (operation, fault) pair —
//! process kill, power cut, torn write, `ENOSPC` — reboots from the
//! surviving disk image, and asserts:
//!
//! * **reboot never bricks** — [`Registry::open_with`] succeeds on
//!   every survivor (only genuine tamper may refuse);
//! * **no phantom** — the rebooted history is consistent with the ack
//!   order, and any *unacked* survivor is an operation the client
//!   actually attempted (an errored request may legitimately land —
//!   at-least-once semantics — but an id the client never sent, or a
//!   reorder, is corruption);
//! * **no acked loss** — a process kill or `ENOSPC` never loses an
//!   acked commit; a power cut or torn write never loses one acked
//!   after its covering fsync (in `strict`/`group` durability every
//!   ack is fsync-covered, so *no* acked commit may be lost — in
//!   `strict` the fsync is inline, in `group` it is the flusher's
//!   batched sync the response waited on);
//! * **byte-faithful history** — for halting faults the survivor's
//!   journal, after torn-tail repair, is byte-for-byte a prefix of the
//!   fault-free baseline journal (journal lines carry no timestamps);
//! * **post-reboot liveness** — a probe submission to each surviving
//!   project is answered by the gate (any verdict but
//!   [`ServeError::Corrupt`] / [`ServeError::Io`]).
//!
//! The per-project action streams run as one [`Pool`] task each, so
//! per-scope operation order — the fault-plan address space — is
//! deterministic for any pool width; `journal_bytes_after_run` exposes
//! that determinism for the property test in
//! `tests/crash_matrix.rs`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use easeml_par::{splitmix64, Pool};

use crate::error::ServeError;
use crate::json::Value;
use crate::registry::{
    serving_estimator, CommitSubmission, EvalCounts, PredictionsSubmission, TestsetSpec,
};
use crate::store::{group, Durability, Registry};
use crate::vfs::{Fault, FaultKind, FaultPlan, FaultVfs, MemVfs, OpRecord, Vfs};

/// Virtual data-directory root the matrix schedule runs under (a
/// [`MemVfs`] path — nothing touches the real filesystem).
pub const FAULT_ROOT: &str = "/easeml-fault";

/// Testset size for the server-measured project (both eras).
const TESTSET_SIZE: usize = 60;

const COUNTS_SCRIPT: &str = "ml:\n  - condition  : n > 0.6 +/- 0.2\n  - reliability: 0.99\n  - mode       : fp-free\n  - adaptivity : full\n  - steps      : 3\n";
const PREDICTIONS_SCRIPT: &str = "ml:\n  - condition  : n - o > 0.0 +/- 0.2\n  - reliability: 0.99\n  - mode       : fp-free\n  - adaptivity : full\n  - steps      : 3\n";
const F1_SCRIPT: &str = "ml:\n  - condition  : f1(n) - f1(o) > -0.1 +/- 0.2\n  - reliability: 0.99\n  - mode       : fp-free\n  - adaptivity : full\n  - steps      : 3\n";

/// Options for [`run_matrix`].
#[derive(Debug, Clone, Copy)]
pub struct MatrixOptions {
    /// Sample every third operation instead of every one (CI mode).
    pub quick: bool,
    /// Seed for the schedule's evaluation counts and vectors.
    pub seed: u64,
    /// Durability mode the schedule (and every reboot) runs under.
    pub durability: Durability,
}

impl Default for MatrixOptions {
    fn default() -> MatrixOptions {
        MatrixOptions {
            quick: false,
            seed: 7,
            durability: Durability::Strict,
        }
    }
}

/// Outcome of one (operation, fault) cell of the matrix.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Fault-plan scope the fault was injected in.
    pub scope: String,
    /// Operation index within the scope.
    pub index: u64,
    /// Operation kind at the injection point (`write`, `sync`, …).
    pub op: &'static str,
    /// Fault injected: `kill`, `power_cut`, `torn`, or `enospc`.
    pub fault: &'static str,
    /// Commits acked across both projects during the faulted run.
    pub acked_commits: usize,
    /// Commits present in the rebooted histories.
    pub surviving_commits: usize,
    /// First violated invariant, if any.
    pub failure: Option<String>,
}

/// Full matrix outcome: one [`CaseResult`] per enumerated cell.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Schedule seed the matrix ran with.
    pub seed: u64,
    /// Whether quick (strided) sampling was used.
    pub quick: bool,
    /// Pool width the schedules ran on.
    pub threads: usize,
    /// Counted operations in the fault-free baseline run.
    pub ops_enumerated: usize,
    /// Per-cell outcomes.
    pub cases: Vec<CaseResult>,
}

impl MatrixReport {
    /// Whether every cell held its invariants.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.cases.iter().all(|c| c.failure.is_none())
    }

    /// The cells that violated an invariant.
    #[must_use]
    pub fn failures(&self) -> Vec<&CaseResult> {
        self.cases.iter().filter(|c| c.failure.is_some()).collect()
    }

    /// JSON summary (the shape `repro_faults` writes to
    /// `results/BENCH_faults.json`).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut per_fault: BTreeMap<&'static str, u64> = BTreeMap::new();
        for case in &self.cases {
            *per_fault.entry(case.fault).or_insert(0) += 1;
        }
        let failures: Vec<Value> = self
            .failures()
            .iter()
            .map(|c| {
                Value::object([
                    ("scope", Value::from(c.scope.as_str())),
                    ("index", Value::from(c.index)),
                    ("op", Value::from(c.op)),
                    ("fault", Value::from(c.fault)),
                    (
                        "failure",
                        Value::from(c.failure.as_deref().unwrap_or_default()),
                    ),
                ])
            })
            .collect();
        Value::object([
            ("seed", Value::from(self.seed)),
            ("quick", Value::from(self.quick)),
            ("threads", Value::from(self.threads)),
            ("ops_enumerated", Value::from(self.ops_enumerated)),
            ("cases", Value::from(self.cases.len())),
            (
                "cases_per_fault",
                Value::object(
                    per_fault
                        .into_iter()
                        .map(|(k, v)| (k, Value::from(v)))
                        .collect::<Vec<_>>(),
                ),
            ),
            ("passed", Value::from(self.passed())),
            ("failures", Value::array(failures)),
        ])
    }
}

/// Run the crash-consistency matrix on the global pool.
#[must_use]
pub fn run_matrix(options: &MatrixOptions) -> MatrixReport {
    run_matrix_on(Pool::global(), options)
}

/// Run the crash-consistency matrix on a caller-supplied pool.
#[must_use]
pub fn run_matrix_on(pool: &Pool, options: &MatrixOptions) -> MatrixReport {
    let root = Path::new(FAULT_ROOT);
    let baseline_vfs = FaultVfs::new(root, FaultPlan::new());
    baseline_vfs.start_recording();
    let vfs: Arc<dyn Vfs> = Arc::new(baseline_vfs.clone());
    let baseline = match run_schedule(&vfs, pool, options.seed, options.durability) {
        Ok(logs) => logs,
        Err(e) => {
            return MatrixReport {
                seed: options.seed,
                quick: options.quick,
                threads: pool.threads(),
                ops_enumerated: 0,
                cases: vec![CaseResult {
                    scope: String::new(),
                    index: 0,
                    op: "open",
                    fault: "none",
                    acked_commits: 0,
                    surviving_commits: 0,
                    failure: Some(format!("fault-free baseline run failed: {e}")),
                }],
            };
        }
    };
    let oplog = baseline_vfs.take_oplog();
    let disk = baseline_vfs.disk();
    let mut baseline_journals: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for name in baseline.keys() {
        if let Some(bytes) = disk.file_bytes(&journal_path(name)) {
            baseline_journals.insert(name.clone(), bytes);
        }
    }

    let stride = if options.quick { 3 } else { 1 };
    let mut cases = Vec::new();
    for (i, rec) in oplog.iter().enumerate() {
        if i % stride != 0 {
            continue;
        }
        let mut faults: Vec<(&'static str, Fault)> =
            vec![("kill", Fault::Kill), ("power_cut", Fault::PowerCut)];
        if rec.kind == "write" && rec.len >= 2 {
            // keep < len: a torn write must stay torn (a full-length
            // "tear" would land a complete, replayable line).
            faults.push(("torn", Fault::Torn { keep: rec.len / 2 }));
        }
        if is_mutating(rec.kind) {
            faults.push(("enospc", Fault::Fail(FaultKind::Enospc)));
        }
        for (name, fault) in faults {
            cases.push(run_case(
                pool,
                options.seed,
                rec,
                fault,
                name,
                &baseline_journals,
                options.durability,
            ));
        }
    }
    MatrixReport {
        seed: options.seed,
        quick: options.quick,
        threads: pool.threads(),
        ops_enumerated: oplog.len(),
        cases,
    }
}

/// Run the schedule under `plan` and return each project's final
/// journal bytes (durable *and* pending — the process image).
///
/// Two runs with the same seed and plan must return identical maps for
/// any pool width: per-project operation streams are single tasks, so
/// per-scope fault addresses and journal contents cannot depend on
/// cross-project interleaving. `tests/crash_matrix.rs` holds the
/// property test. (Halting faults are excluded from that property: a
/// halt freezes the *other* project mid-stream at a point that does
/// depend on thread timing.)
#[must_use]
pub fn journal_bytes_after_run(
    pool: &Pool,
    seed: u64,
    plan: FaultPlan,
    durability: Durability,
) -> BTreeMap<String, Vec<u8>> {
    let fvfs = FaultVfs::new(Path::new(FAULT_ROOT), plan);
    let vfs: Arc<dyn Vfs> = Arc::new(fvfs.clone());
    let _ = run_schedule(&vfs, pool, seed, durability);
    let disk = fvfs.disk();
    schedule(seed)
        .into_iter()
        .map(|(name, _)| {
            let bytes = disk.file_bytes(&journal_path(&name)).unwrap_or_default();
            (name, bytes)
        })
        .collect()
}

fn journal_path(project: &str) -> PathBuf {
    Path::new(FAULT_ROOT)
        .join("projects")
        .join(project)
        .join("journal.log")
}

/// Whether `needle` appears in `haystack` in order (not necessarily
/// contiguously).
fn is_ordered_subsequence(needle: &[&str], haystack: &[String]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

fn is_mutating(kind: &str) -> bool {
    matches!(
        kind,
        "create_dir"
            | "remove"
            | "rename"
            | "create"
            | "open_append"
            | "write"
            | "sync"
            | "set_len"
    )
}

// ---------------------------------------------------------------------
// The deterministic schedule
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Action {
    Register {
        script: &'static str,
        testset: Option<TestsetSpec>,
    },
    Commit(CommitSubmission),
    Predictions(PredictionsSubmission),
    FreshTestset,
    InstallTestset(TestsetSpec),
    Snapshot,
}

fn commit(id: &str, new_correct: u64) -> Action {
    Action::Commit(CommitSubmission {
        commit_id: id.to_owned(),
        counts: EvalCounts {
            samples: 100,
            new_correct,
            old_correct: 50,
            changed: 30,
            labels: 100,
            per_class: None,
        },
    })
}

/// Prediction vector that is correct on the first `correct` items of an
/// all-zeros truth (wrong answers say class 1).
fn vector(correct: usize) -> Vec<u32> {
    (0..TESTSET_SIZE).map(|i| u32::from(i >= correct)).collect()
}

fn predictions(id: &str, new_correct: usize) -> Action {
    Action::Predictions(PredictionsSubmission {
        commit_id: id.to_owned(),
        old: vector(30),
        new: vector(new_correct),
    })
}

fn lazy_zeros() -> TestsetSpec {
    TestsetSpec {
        truth: vec![0; TESTSET_SIZE],
        classes: 2,
        lazy: true,
    }
}

fn lazy_alternating() -> TestsetSpec {
    TestsetSpec {
        truth: (0..TESTSET_SIZE as u32).map(|i| i % 2).collect(),
        classes: 2,
        lazy: true,
    }
}

fn full_alternating() -> TestsetSpec {
    TestsetSpec {
        truth: (0..TESTSET_SIZE as u32).map(|i| i % 2).collect(),
        classes: 2,
        lazy: false,
    }
}

/// The fixed two-project schedule. Counts and vectors are seeded but
/// consecutive draws are forced distinct so the store's
/// redelivery-dedup path (which matches the most recent evaluation)
/// never swallows a scheduled submission.
fn schedule(seed: u64) -> Vec<(String, Vec<Action>)> {
    let mut prev = u64::MAX;
    let mut draw = |k: u64, modulus: u64| {
        let mut v = splitmix64(seed, k) % modulus;
        if v == prev {
            v = (v + 1) % modulus;
        }
        prev = v;
        v
    };

    let alpha = vec![
        Action::Register {
            script: COUNTS_SCRIPT,
            testset: None,
        },
        commit("a1", 20 + draw(1, 61)),
        commit("a2", 20 + draw(2, 61)),
        Action::Snapshot,
        commit("a3", 20 + draw(3, 61)),
        Action::FreshTestset,
        commit("a4", 20 + draw(4, 61)),
        Action::Snapshot,
    ];

    let size = TESTSET_SIZE as u64;
    let beta = vec![
        Action::Register {
            script: PREDICTIONS_SCRIPT,
            testset: Some(lazy_zeros()),
        },
        predictions("b1", draw(101, size + 1) as usize),
        predictions("b2", draw(102, size + 1) as usize),
        Action::Snapshot,
        predictions("b3", draw(103, size + 1) as usize),
        Action::InstallTestset(lazy_alternating()),
        predictions("b4", draw(104, size + 1) as usize),
        Action::Snapshot,
    ];

    // F1 gating over a fully-labelled alternating testset: journal ops
    // and snapshots carry per-class confusion counts, and every reboot
    // re-measures them through the packed per-class lane.
    let gamma = vec![
        Action::Register {
            script: F1_SCRIPT,
            testset: Some(full_alternating()),
        },
        predictions("g1", draw(201, size + 1) as usize),
        predictions("g2", draw(202, size + 1) as usize),
        Action::Snapshot,
        predictions("g3", draw(203, size + 1) as usize),
        Action::InstallTestset(full_alternating()),
        predictions("g4", draw(204, size + 1) as usize),
        Action::Snapshot,
    ];

    vec![
        ("alpha".to_owned(), alpha),
        ("beta".to_owned(), beta),
        ("gamma".to_owned(), gamma),
    ]
}

// ---------------------------------------------------------------------
// Running a schedule and recording acks
// ---------------------------------------------------------------------

/// What one project's driver observed: every commit id *attempted* (in
/// schedule order), labels for every *acked* (successfully returned)
/// action, and the number of commits known fsync-covered at ack time —
/// the power-cut durability watermark. Under `strict`/`group` every
/// ack is fsync-covered; under other modes only a completed snapshot
/// raises the watermark.
#[derive(Debug, Default, Clone)]
struct ProjectLog {
    attempted: Vec<String>,
    acked: Vec<String>,
    synced_commits: usize,
}

impl ProjectLog {
    fn commits(&self) -> Vec<&str> {
        self.acked
            .iter()
            .filter_map(|l| l.strip_prefix("commit:"))
            .collect()
    }

    fn registered(&self) -> bool {
        self.acked.iter().any(|l| l == "registered")
    }
}

/// Drive one action and — under group durability — wait for its
/// deferred durable ack, exactly as the route layer holds the HTTP
/// response until the waiter resolves. The waiter is drained
/// unconditionally so no thread-local state leaks across actions.
fn apply(registry: &Registry, name: &str, action: &Action) -> Result<String, ServeError> {
    let result = apply_inner(registry, name, action);
    match group::take_pending() {
        Some(waiter) if result.is_ok() => {
            waiter.wait().map_err(ServeError::Unavailable).and(result)
        }
        _ => result,
    }
}

fn apply_inner(registry: &Registry, name: &str, action: &Action) -> Result<String, ServeError> {
    if let Action::Register { script, testset } = action {
        return registry
            .register(name, script, testset.clone())
            .map(|_| "registered".to_owned());
    }
    let slot = registry
        .get(name)
        .ok_or_else(|| ServeError::NotFound(format!("project `{name}`")))?;
    let mut slot = slot.lock().expect("slot poisoned");
    match action {
        Action::Register { .. } => unreachable!("handled above"),
        Action::Commit(sub) => slot
            .submit(sub)
            .map(|_| format!("commit:{}", sub.commit_id)),
        Action::Predictions(sub) => slot
            .submit_predictions(sub)
            .map(|_| format!("commit:{}", sub.commit_id)),
        Action::FreshTestset => slot.fresh_testset().map(|era| format!("era:{era}")),
        Action::InstallTestset(spec) => slot
            .install_testset(spec.clone())
            .map(|era| format!("era:{era}")),
        Action::Snapshot => slot.snapshot().map(|()| "snapshot".to_owned()),
    }
}

/// Open a registry on `vfs` and drive the schedule, one pool task per
/// project. Action failures (injected faults, post-halt errors, gate
/// rejections) are simply not acked; the stream continues — exactly a
/// client whose request errored.
fn run_schedule(
    vfs: &Arc<dyn Vfs>,
    pool: &Pool,
    seed: u64,
    durability: Durability,
) -> Result<BTreeMap<String, ProjectLog>, ServeError> {
    let registry = Registry::open_with_durability(
        Path::new(FAULT_ROOT),
        serving_estimator(),
        Arc::clone(vfs),
        durability,
        None,
    )?;
    // Every ack in strict/group mode is fsync-covered, so the power-cut
    // watermark advances per acked commit; otherwise only a completed
    // snapshot (which fsyncs the journal first) advances it.
    let ack_is_synced = matches!(durability, Durability::Strict | Durability::Group);
    let streams = schedule(seed);
    let logs: Mutex<BTreeMap<String, ProjectLog>> = Mutex::new(BTreeMap::new());
    pool.scope(|scope| {
        for (name, actions) in &streams {
            let registry = &registry;
            let logs = &logs;
            scope.spawn(move || {
                let mut log = ProjectLog::default();
                for action in actions {
                    match action {
                        Action::Commit(sub) => log.attempted.push(sub.commit_id.clone()),
                        Action::Predictions(sub) => log.attempted.push(sub.commit_id.clone()),
                        _ => {}
                    }
                    if let Ok(label) = apply(registry, name, action) {
                        let snapshot = label == "snapshot";
                        let commit = label.starts_with("commit:");
                        log.acked.push(label);
                        if snapshot || (commit && ack_is_synced) {
                            log.synced_commits = log.commits().len();
                        }
                    }
                }
                logs.lock()
                    .expect("logs poisoned")
                    .insert(name.clone(), log);
            });
        }
    });
    Ok(logs.into_inner().expect("logs poisoned"))
}

// ---------------------------------------------------------------------
// One matrix cell
// ---------------------------------------------------------------------

#[allow(clippy::too_many_lines)]
fn run_case(
    pool: &Pool,
    seed: u64,
    rec: &OpRecord,
    fault: Fault,
    fault_name: &'static str,
    baseline_journals: &BTreeMap<String, Vec<u8>>,
    durability: Durability,
) -> CaseResult {
    let root = Path::new(FAULT_ROOT);
    let plan = FaultPlan::new().at(&rec.scope, rec.index, fault);
    let fvfs = FaultVfs::new(root, plan);
    let vfs: Arc<dyn Vfs> = Arc::new(fvfs.clone());
    // An open()-time fault legitimately fails the whole run: nothing
    // acked, so the invariants below hold vacuously on the survivor.
    let acked = run_schedule(&vfs, pool, seed, durability).unwrap_or_default();
    let halting = fvfs.halted();
    let survivor: MemVfs = if halting {
        fvfs.captured_disk()
            .unwrap_or_else(|| fvfs.disk().kill_view())
    } else {
        fvfs.disk().kill_view()
    };

    let mut result = CaseResult {
        scope: rec.scope.clone(),
        index: rec.index,
        op: rec.kind,
        fault: fault_name,
        acked_commits: acked.values().map(|l| l.commits().len()).sum(),
        surviving_commits: 0,
        failure: None,
    };

    let reboot: Arc<dyn Vfs> = Arc::new(survivor.clone());
    let registry =
        match Registry::open_with_durability(root, serving_estimator(), reboot, durability, None) {
            Ok(r) => r,
            Err(e) => {
                result.failure = Some(format!("reboot bricked: {e}"));
                return result;
            }
        };

    for (name, log) in &acked {
        let slot = registry.get(name);
        if log.registered() && slot.is_none() {
            result.failure = Some(format!("{name}: acked registration lost on reboot"));
            return result;
        }
        let Some(slot) = slot else { continue };
        let surviving: Vec<String> = {
            let guard = slot.lock().expect("slot poisoned");
            guard
                .project
                .history()
                .entries()
                .iter()
                .map(|e| e.commit_id.clone())
                .collect()
        };
        result.surviving_commits += surviving.len();
        let acked_ids = log.commits();

        // Ack-order consistency: where the survivor and the ack log
        // overlap, they must agree exactly — a reorder or a swapped-in
        // foreign id is corruption regardless of fault timing.
        let overlap = surviving.len().min(acked_ids.len());
        if surviving
            .iter()
            .take(overlap)
            .zip(&acked_ids)
            .any(|(s, a)| s != a)
        {
            result.failure = Some(format!(
                "{name}: surviving history {surviving:?} diverges from ack order {acked_ids:?}"
            ));
            return result;
        }
        // Unacked survivors: an op whose request *errored* may still
        // have landed (its record was written before the fault stopped
        // the ack) — legitimate at-least-once ambiguity — but every
        // such record must be an actually attempted id, in attempt
        // order. A one-shot injected failure in strict mode must leave
        // no trace at all: the inline rollback truncates the record.
        if surviving.len() > acked_ids.len() {
            let extras: Vec<&str> = surviving[acked_ids.len()..]
                .iter()
                .map(String::as_str)
                .collect();
            if !is_ordered_subsequence(&extras, &log.attempted) {
                result.failure = Some(format!(
                    "{name}: phantom commits {extras:?} survived that were never attempted \
                     (attempted {:?})",
                    log.attempted
                ));
                return result;
            }
            if durability == Durability::Strict && matches!(fault, Fault::Fail(_)) {
                result.failure = Some(format!(
                    "{name}: rolled-back op left a journal record under strict durability \
                     ({} acked, {} survived)",
                    acked_ids.len(),
                    surviving.len()
                ));
                return result;
            }
        }
        match fault {
            // The full process image survives a kill or a plain I/O
            // failure: no acked commit may be missing.
            Fault::Kill | Fault::Fail(_) | Fault::FailFrom(_) => {
                if surviving.len() < acked_ids.len() {
                    result.failure = Some(format!(
                        "{name}: acked commit lost without a power cut \
                         ({} acked, {} survived)",
                        acked_ids.len(),
                        surviving.len()
                    ));
                    return result;
                }
            }
            // A power cut (and a torn write, which halts with the
            // durable image) may drop unsynced acks, but never one the
            // durability mode had fsync-covered at ack time.
            Fault::PowerCut | Fault::Torn { .. } => {
                if surviving.len() < log.synced_commits {
                    result.failure = Some(format!(
                        "{name}: fsync-covered acked commit lost \
                         ({} survived < {} covered)",
                        surviving.len(),
                        log.synced_commits
                    ));
                    return result;
                }
            }
        }

        // Byte-faithful history: after reboot (which repairs a torn
        // tail), the survivor's journal must be a byte prefix of the
        // fault-free baseline's. Skipped for ENOSPC: a rolled-back
        // append legitimately makes later journal offsets diverge.
        if halting {
            let bytes = survivor.file_bytes(&journal_path(name)).unwrap_or_default();
            let base = baseline_journals
                .get(name)
                .map(Vec::as_slice)
                .unwrap_or_default();
            if !base.starts_with(&bytes) {
                result.failure = Some(format!(
                    "{name}: survivor journal ({} bytes) diverges from the \
                     fault-free baseline ({} bytes)",
                    bytes.len(),
                    base.len()
                ));
                return result;
            }
        }
    }

    // Liveness probe: the rebooted instance must answer a submission
    // with a gate verdict, not corruption or I/O failure — in
    // particular a repaired torn tail must accept appends again.
    for name in registry.names() {
        if let Err(failure) = probe(&registry, &name) {
            result.failure = Some(failure);
            return result;
        }
    }
    result
}

fn probe(registry: &Registry, name: &str) -> Result<(), String> {
    let Some(slot) = registry.get(name) else {
        return Ok(());
    };
    let mut slot = slot.lock().expect("slot poisoned");
    let outcome = probe_submit(&mut slot);
    // Drain (and honour) the group-mode waiter: a probe on a healthy
    // survivor must also reach durability.
    let outcome = match group::take_pending() {
        Some(waiter) if outcome.is_ok() => {
            waiter.wait().map_err(ServeError::Unavailable).and(outcome)
        }
        _ => outcome,
    };
    match outcome {
        Err(e @ (ServeError::Corrupt { .. } | ServeError::Io(_))) => {
            Err(format!("{name}: post-reboot probe failed hard: {e}"))
        }
        // Gone / Conflict / a pass-fail verdict are all live answers.
        _ => Ok(()),
    }
}

fn probe_submit(slot: &mut crate::store::ProjectSlot) -> Result<(), ServeError> {
    if slot.project.measured().is_some() {
        slot.submit_predictions(&PredictionsSubmission {
            commit_id: "probe".to_owned(),
            old: vector(30),
            new: vector(31),
        })
        .map(|_| ())
    } else {
        slot.submit(&CommitSubmission {
            commit_id: "probe".to_owned(),
            counts: EvalCounts {
                samples: 100,
                new_correct: 61,
                old_correct: 50,
                changed: 30,
                labels: 100,
                per_class: None,
            },
        })
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One cell end-to-end: kill at the very first journal append of
    /// `alpha` — registration acked, every commit unacked and absent.
    #[test]
    fn single_kill_cell_holds_invariants() {
        let report = run_matrix_on(
            &Pool::new(2),
            &MatrixOptions {
                quick: true,
                seed: 3,
                durability: Durability::Strict,
            },
        );
        assert!(
            report.ops_enumerated > 20,
            "oplog too small: {}",
            report.ops_enumerated
        );
        assert!(!report.cases.is_empty());
        if let Some(case) = report.failures().first() {
            panic!(
                "matrix cell failed: {}/{} {} {} — {}",
                case.scope,
                case.index,
                case.op,
                case.fault,
                case.failure.as_deref().unwrap_or_default()
            );
        }
    }

    /// The same cell sweep under group-commit durability: every fault
    /// address now also lands at the flusher's deferred sync and at the
    /// staged-registration install, and the invariants must still hold
    /// — in particular no acked (fsync-covered) commit may be lost even
    /// to a power cut.
    #[test]
    fn group_mode_matrix_holds_invariants() {
        let report = run_matrix_on(
            &Pool::new(2),
            &MatrixOptions {
                quick: true,
                seed: 3,
                durability: Durability::Group,
            },
        );
        assert!(
            report.ops_enumerated > 20,
            "oplog too small: {}",
            report.ops_enumerated
        );
        assert!(!report.cases.is_empty());
        if let Some(case) = report.failures().first() {
            panic!(
                "group matrix cell failed: {}/{} {} {} — {}",
                case.scope,
                case.index,
                case.op,
                case.fault,
                case.failure.as_deref().unwrap_or_default()
            );
        }
    }

    /// Tamper (flipping a byte inside a *complete* journal line) must
    /// still brick the boot — torn-tail repair must not have widened
    /// into accepting corruption.
    #[test]
    fn tampered_complete_line_still_bricks() {
        let fvfs = FaultVfs::new(Path::new(FAULT_ROOT), FaultPlan::new());
        let vfs: Arc<dyn Vfs> = Arc::new(fvfs.clone());
        let pool = Pool::new(1);
        run_schedule(&vfs, &pool, 7, Durability::Strict).expect("baseline");
        let disk = fvfs.disk().kill_view();
        // The schedule ends in a snapshot, whose covered journal prefix
        // is skipped (not re-parsed) at boot; drop it so the journal
        // replays in full and the tamper is in validated territory.
        let snapshot = Path::new(FAULT_ROOT)
            .join("projects")
            .join("alpha")
            .join("snapshot.json");
        disk.remove_file(&snapshot).expect("remove snapshot");
        let path = journal_path("alpha");
        let mut bytes = disk.file_bytes(&path).expect("journal");
        let second_line = bytes.iter().position(|&b| b == b'\n').expect("newline") + 1;
        assert_eq!(bytes[second_line], b'{');
        bytes[second_line] = b'#';
        // Rewrite the tampered image through the vfs interface.
        disk.remove_file(&path).expect("remove");
        {
            let mut file = disk.create(&path).expect("create");
            file.write_all(&bytes).expect("write");
            file.sync_data().expect("sync");
        }
        let reboot: Arc<dyn Vfs> = Arc::new(disk);
        let err = Registry::open_with(Path::new(FAULT_ROOT), serving_estimator(), reboot)
            .expect_err("tampered journal must refuse to boot");
        assert!(
            matches!(err, ServeError::Corrupt { .. }),
            "expected Corrupt, got {err:?}"
        );
    }
}
